"""Probe/response exchange simulation.

One probing round:

1. Alice transmits a probe; Bob's radio samples its RSSI register once per
   symbol over the packet airtime.
2. Bob turns the link around after his host's processing delay and
   transmits the response; Alice samples likewise.
3. The next round starts after Alice's processing delay plus an optional
   pacing gap (duty-cycle budget).

Because the airtime of the paper's SF12 configuration is three orders of
magnitude larger than the propagation delay, propagation is ignored
(Sec. II-A makes the same argument).  Any eavesdroppers receive both
transmissions through their *own* channels, sampled at exactly the same
instants as the legitimate receivers.

Two execution paths produce the same trace:

- :meth:`ProbingProtocol.run_loop` is the frozen per-round loop -- the
  correctness baseline, and the only path that supports ARQ fault
  injection (retransmission timing depends on which packets were lost,
  so the timeline cannot be precomputed).
- The vectorized fast path (taken automatically by
  :meth:`ProbingProtocol.run` on a fault-free link) exploits that
  without faults every round's start time is a deterministic affine
  function of the round index: it precomputes the full
  ``[n_rounds, n_samples]`` timestamp grid, evaluates the channel stack
  once per direction over the whole grid, and draws all measurement
  noise in bulk from the same per-party seed streams -- reproducing the
  loop path bit-for-bit (``tests/test_probing_vectorized.py`` pins
  this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.channel.fading import SpatialJakesFading, batched_spatial_gain_db
from repro.channel.interference import combine_power_dbm
from repro.channel.reciprocity import ReciprocalChannel
from repro.faults.adversary import ActiveAdversary
from repro.faults.link import LinkFaultModel
from repro.faults.retry import RetryPolicy
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.link_budget import LinkBudget
from repro.lora.radio import TransceiverModel
from repro.lora.rssi import RegisterRssiSampler, quantize_packet_rssi
from repro.probing.trace import EveTrace, ProbeTrace
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class EavesdropperSetup:
    """An eavesdropper's receive channels from each legitimate node.

    Attributes:
        label: Name used to key this attacker's trace.
        device: Eve's transceiver.
        channel_from_alice: Channel Eve hears Alice's transmissions through.
        channel_from_bob: Channel Eve hears Bob's transmissions through.
    """

    label: str
    device: TransceiverModel
    channel_from_alice: ReciprocalChannel
    channel_from_bob: ReciprocalChannel


class ProbingProtocol:
    """Runs probing rounds over a reciprocal channel.

    Args:
        channel: The Alice<->Bob reciprocal channel.
        phy: LoRa configuration for the probe packets.
        alice_device: Alice's transceiver model.
        bob_device: Bob's transceiver model.
        link_budget: Shared link budget (TX powers are symmetric in the
            paper's setup).
        inter_round_gap_s: Extra pacing between rounds, e.g. for regional
            duty-cycle compliance.  Zero by default: the paper probes
            back-to-back.
        interference: Optional interference sources; each receiver picks
            them up through its own position, so the corruption is
            asymmetric between the endpoints (paper Sec. II-A, effect 4).
        fault_model: Optional seeded link-fault injector.  When present,
            :meth:`run` switches to ARQ semantics: every probe carries a
            sequence number, the response doubles as its acknowledgment,
            and lost transmissions are retried under ``retry_policy``.
            ``None`` reproduces the ideal link bit-for-bit.
        retry_policy: Retransmission budget/backoff used with a fault
            model (defaults to :class:`~repro.faults.retry.RetryPolicy`).
        adversary: Optional seeded active attacker.  When present,
            :meth:`run` uses the same ARQ/sequence-number semantics as a
            fault model, the attacker's jamming / replayed / injected
            probes are woven into each attempt, and the trace records
            which rounds were poisoned (``injected``) and how many stale
            replays the window check rejected (``replays_rejected``).
            All attacker randomness comes from dedicated ``adversary-*``
            seed streams, so ``None`` (or a null plan) reproduces the
            unattacked run bit-for-bit.
        fast_path: Allow :meth:`run` to take the vectorized fault-free
            path (the default).  ``False`` forces the frozen per-round
            loop, e.g. for before/after benchmarking; results are
            bit-identical either way.
    """

    def __init__(
        self,
        channel: ReciprocalChannel,
        phy: LoRaPHYConfig,
        alice_device: TransceiverModel,
        bob_device: TransceiverModel,
        link_budget: Optional[LinkBudget] = None,
        inter_round_gap_s: float = 0.0,
        interference: Sequence = (),
        fault_model: Optional[LinkFaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        adversary: Optional[ActiveAdversary] = None,
        fast_path: bool = True,
    ):
        require(inter_round_gap_s >= 0, "inter_round_gap_s must be >= 0")
        self.channel = channel
        self.phy = phy
        self.alice_device = alice_device
        self.bob_device = bob_device
        self.link_budget = link_budget if link_budget is not None else LinkBudget()
        self.inter_round_gap_s = float(inter_round_gap_s)
        self.interference = list(interference)
        self.fault_model = fault_model
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.adversary = adversary
        self.fast_path = bool(fast_path)

    def round_period_s(self) -> float:
        """Duration of one complete probe/response round."""
        return (
            2.0 * self.phy.airtime_s
            + self.bob_device.processing_delay_s
            + self.alice_device.processing_delay_s
            + self.inter_round_gap_s
        )

    def run(
        self,
        n_rounds: int,
        seeds: SeedSequenceFactory,
        eavesdroppers: Sequence[EavesdropperSetup] = (),
        start_time_s: float = 0.0,
    ) -> ProbeTrace:
        """Execute ``n_rounds`` probe/response rounds.

        Dispatches to the vectorized fast path when the link is
        fault-free (and ``fast_path`` was not disabled); otherwise runs
        the per-round loop.  Both paths produce bit-identical traces, so
        callers never need to care which one executed.

        Args:
            n_rounds: Rounds to attempt.
            seeds: Seed factory; measurement-noise streams are drawn from
                the ``alice-rssi-noise``, ``bob-rssi-noise`` and
                ``eve-<label>-rssi-noise`` streams.
            eavesdroppers: Attackers overhearing the exchange.
            start_time_s: Protocol start time on the channel's clock.

        Returns:
            The complete :class:`ProbeTrace`, including per-round validity
            (both directions above sensitivity) and eavesdropper traces.
            With a fault model attached the trace also carries per-round
            ``retries``/``dropped`` ARQ accounting.

        ARQ semantics (fault model attached): each probe carries the round
        index as its sequence number and Bob's response acknowledges it.
        When either transmission is lost, Alice times out and retransmits
        the *same* sequence number after the policy's backoff, so Bob
        replaces his measurement for that round rather than advancing --
        a lost probe or response can therefore never silently pair
        Alice's round ``k`` with Bob's round ``k+1``.  A round whose
        retry budget runs out is discarded (``valid=False``,
        ``dropped=True``) instead of desynchronizing the trace.
        """
        if (
            self.fast_path
            and self.fault_model is None
            and self.adversary is None
        ):
            return self._run_vectorized(n_rounds, seeds, eavesdroppers, start_time_s)
        return self.run_loop(n_rounds, seeds, eavesdroppers, start_time_s)

    def run_loop(
        self,
        n_rounds: int,
        seeds: SeedSequenceFactory,
        eavesdroppers: Sequence[EavesdropperSetup] = (),
        start_time_s: float = 0.0,
    ) -> ProbeTrace:
        """Per-round reference implementation of :meth:`run`.

        This is the frozen correctness baseline: one probe/response
        attempt at a time, measuring each reception as it happens.  It is
        the only path that supports ARQ fault injection (retransmission
        timing depends on which packets were lost, so the timeline cannot
        be precomputed) and the oracle the vectorized fast path is pinned
        against.  Arguments and return value are exactly those of
        :meth:`run`.
        """
        require_positive(n_rounds, "n_rounds")
        airtime = self.phy.airtime_s

        alice_sampler = RegisterRssiSampler(self.phy, self.alice_device)
        bob_sampler = RegisterRssiSampler(self.phy, self.bob_device)
        eve_samplers = {
            setup.label: RegisterRssiSampler(self.phy, setup.device)
            for setup in eavesdroppers
        }
        alice_noise = seeds.generator("alice-rssi-noise")
        bob_noise = seeds.generator("bob-rssi-noise")
        eve_noise = {
            setup.label: seeds.generator(f"eve-{setup.label}-rssi-noise")
            for setup in eavesdroppers
        }

        n_samples = alice_sampler.n_samples
        alice_rssi = np.empty((n_rounds, n_samples))
        bob_rssi = np.empty((n_rounds, n_samples))
        alice_prssi = np.empty(n_rounds)
        bob_prssi = np.empty(n_rounds)
        round_start = np.empty(n_rounds)
        valid = np.ones(n_rounds, dtype=bool)
        retries = np.zeros(n_rounds, dtype=np.int32)
        dropped = np.zeros(n_rounds, dtype=bool)
        injected = np.zeros(n_rounds, dtype=bool)
        replays_rejected = np.zeros(n_rounds, dtype=np.int32)
        backoff_time = np.zeros(n_rounds, dtype=float)
        eve_of_alice: Dict[str, np.ndarray] = {
            s.label: np.empty((n_rounds, n_samples)) for s in eavesdroppers
        }
        eve_of_bob: Dict[str, np.ndarray] = {
            s.label: np.empty((n_rounds, n_samples)) for s in eavesdroppers
        }

        alice_power = self._receiver_power(self.channel.motion.trajectory_a)
        bob_power = self._receiver_power(self.channel.motion.trajectory_b)
        faults = self.fault_model
        policy = self.retry_policy
        adversary = self.adversary
        # Backoff jitter draws from its own named session stream, keeping
        # runs reproducible without perturbing the measurement streams.
        backoff_rng = seeds.generator("arq-backoff")
        sf = self.phy.spreading_factor

        def attempt(k: int, attempt_start: float):
            """One probe/response attempt's physical measurements.

            Fills round ``k``'s slots (overwriting any earlier attempt of
            the same round: ARQ retransmissions reuse the sequence
            number) and returns ``(probe_ok, response_ok,
            response_start)``.  The measurement-noise draw order matches
            the pre-ARQ protocol exactly, so runs without a fault model
            are bit-identical to the seed behaviour.  Adversary hooks run
            *after* every legitimate draw of the attempt's direction, in
            a fixed order (jam a2b, replay, inject, jam b2a), from the
            attacker's own seed streams.
            """
            injected[k] = False  # a retransmission replaces any poisoned row
            # --- Alice's probe, received by Bob (and overheard by Eve).
            bob_rssi[k] = bob_sampler.sample(bob_power, attempt_start, seed=bob_noise)
            if faults is not None:
                bob_rssi[k] = faults.corrupt_register(
                    bob_rssi[k], self.bob_device.rssi_floor_dbm
                )
            bob_prssi[k] = self._packet_rssi(
                bob_rssi[k], self.bob_device, bob_noise
            )
            for setup in eavesdroppers:
                power = self._eve_power(setup.channel_from_alice)
                eve_of_alice[setup.label][k] = eve_samplers[setup.label].sample(
                    power, attempt_start, seed=eve_noise[setup.label]
                )
            mid_probe = attempt_start + airtime / 2.0
            probe_gain = self.channel.path_gain_db(mid_probe)
            probe_ok = self.link_budget.is_decodable(probe_gain, self.phy)
            if faults is not None and probe_ok:
                probe_ok = not faults.packet_lost(
                    "a2b", self.link_budget.snr_db(probe_gain, self.phy), sf
                )
            if adversary is not None:
                if adversary.jams("a2b"):
                    # Reactive jamming burst over the probe slot.
                    probe_ok = False
                if adversary.replays_probe():
                    # A stale captured probe carries an out-of-window
                    # sequence number: Bob's window check rejects it (a
                    # detected attack), and the on-air collision costs
                    # the legitimate probe the slot.
                    replays_rejected[k] += 1
                    probe_ok = False
                if adversary.injects_probe():
                    # A forged probe with the *current* sequence number at
                    # attacker-chosen power: Bob accepts it, poisoning his
                    # measurement for this round.  Reciprocity breaks, so
                    # the MAC/confirmation layers must catch the damage.
                    bob_rssi[k] = adversary.injected_register_samples(n_samples)
                    bob_prssi[k] = quantize_packet_rssi(
                        float(np.mean(bob_rssi[k])),
                        self.bob_device.rssi_resolution_db,
                    )
                    injected[k] = True
                    probe_ok = True

            # --- Bob's response after his turnaround delay.
            response_start = (
                attempt_start + airtime + self.bob_device.processing_delay_s
            )
            alice_rssi[k] = alice_sampler.sample(
                alice_power, response_start, seed=alice_noise
            )
            if faults is not None:
                alice_rssi[k] = faults.corrupt_register(
                    alice_rssi[k], self.alice_device.rssi_floor_dbm
                )
            alice_prssi[k] = self._packet_rssi(
                alice_rssi[k], self.alice_device, alice_noise
            )
            for setup in eavesdroppers:
                power = self._eve_power(setup.channel_from_bob)
                eve_of_bob[setup.label][k] = eve_samplers[setup.label].sample(
                    power, response_start, seed=eve_noise[setup.label]
                )
            mid_response = response_start + airtime / 2.0
            response_gain = self.channel.path_gain_db(mid_response)
            response_ok = self.link_budget.is_decodable(response_gain, self.phy)
            if faults is not None and response_ok:
                response_ok = not faults.packet_lost(
                    "b2a", self.link_budget.snr_db(response_gain, self.phy), sf
                )
            if adversary is not None and adversary.jams("b2a"):
                response_ok = False
            return probe_ok, response_ok, response_start

        cursor = float(start_time_s)
        for k in range(n_rounds):
            round_start[k] = cursor
            if faults is None and adversary is None:
                probe_ok, response_ok, response_start = attempt(k, cursor)
                valid[k] = probe_ok and response_ok
                cursor = (
                    response_start
                    + airtime
                    + self.alice_device.processing_delay_s
                    + self.inter_round_gap_s
                )
                continue

            # --- ARQ: retransmit round k's probe until the acknowledging
            # response arrives or the retry budget runs out.
            attempt_start = cursor
            n_retries = 0
            while True:
                probe_ok, response_ok, response_start = attempt(k, attempt_start)
                if probe_ok and response_ok:
                    valid[k] = True
                    next_free = (
                        response_start
                        + airtime
                        + self.alice_device.processing_delay_s
                    )
                    break
                if probe_ok:
                    # Bob measured round k but his response was lost;
                    # Alice times out.  Her retransmission reuses round
                    # k's sequence number, so Bob replaces his
                    # measurement instead of pairing it with round k+1.
                    attempt_end = response_start + airtime
                else:
                    # Probe lost: Bob never turned the link around.
                    attempt_end = attempt_start + airtime
                if n_retries >= policy.max_retries:
                    valid[k] = False
                    dropped[k] = True
                    backoff_time[k] += policy.timeout_s
                    next_free = (
                        attempt_end
                        + policy.timeout_s
                        + self.alice_device.processing_delay_s
                    )
                    break
                delay = policy.retry_delay_s(n_retries, airtime, rng=backoff_rng)
                backoff_time[k] += delay
                n_retries += 1
                attempt_start = attempt_end + delay
            retries[k] = n_retries
            cursor = next_free + self.inter_round_gap_s

        eve_traces = {
            label: EveTrace(of_alice_rssi=eve_of_alice[label], of_bob_rssi=eve_of_bob[label])
            for label in eve_of_alice
        }
        return ProbeTrace(
            phy=self.phy,
            alice_rssi=alice_rssi,
            bob_rssi=bob_rssi,
            round_start_s=round_start,
            valid=valid,
            eve=eve_traces,
            alice_prssi=alice_prssi,
            bob_prssi=bob_prssi,
            retries=retries,
            dropped=dropped,
            injected=injected,
            replays_rejected=replays_rejected,
            backoff_time_s=backoff_time,
            retry_limit=(
                policy.max_retries
                if (faults is not None or adversary is not None)
                else None
            ),
        )

    def _receiver_power(self, trajectory):
        """Receiver-side power-vs-time function for one endpoint.

        Combines the reciprocal channel's path gain with any interference
        picked up at the receiver's own position.  Shared by the loop and
        vectorized paths so both evaluate the identical channel stack.
        """

        def power(times: np.ndarray) -> np.ndarray:
            total = self.link_budget.received_power_dbm(
                self.channel.path_gain_db(times)
            )
            if self.interference:
                positions = trajectory.position_m(times)
                for source in self.interference:
                    total = combine_power_dbm(
                        total, source.power_dbm(times, positions)
                    )
            return total

        return power

    def _run_vectorized(
        self,
        n_rounds: int,
        seeds: SeedSequenceFactory,
        eavesdroppers: Sequence[EavesdropperSetup] = (),
        start_time_s: float = 0.0,
    ) -> ProbeTrace:
        """Grid-based fast path for fault-free probing.

        Without faults the round timeline is deterministic, so the full
        ``[n_rounds, n_samples]`` reception-time grid is known up front:
        the channel stack is evaluated once per direction over the whole
        grid and all measurement noise is drawn in bulk from the same
        per-party streams the loop consumes round by round.  Every
        arithmetic step mirrors :meth:`run_loop` exactly (timestamp
        association order included), so the returned trace is
        bit-identical to the loop's -- ``tests/test_probing_vectorized.py``
        pins this.
        """
        require_positive(n_rounds, "n_rounds")
        airtime = self.phy.airtime_s

        alice_sampler = RegisterRssiSampler(self.phy, self.alice_device)
        bob_sampler = RegisterRssiSampler(self.phy, self.bob_device)
        alice_noise = seeds.generator("alice-rssi-noise")
        bob_noise = seeds.generator("bob-rssi-noise")
        n_samples = alice_sampler.n_samples

        # Round timeline.  The start times are affine in the round index,
        # but we reproduce the loop's running-cursor additions (same
        # association order) rather than closing the form, so the
        # timestamps -- and everything downstream -- match bit-for-bit.
        probe_starts = np.empty(n_rounds)
        response_starts = np.empty(n_rounds)
        cursor = float(start_time_s)
        for k in range(n_rounds):
            probe_starts[k] = cursor
            response_start = cursor + airtime + self.bob_device.processing_delay_s
            response_starts[k] = response_start
            cursor = (
                response_start
                + airtime
                + self.alice_device.processing_delay_s
                + self.inter_round_gap_s
            )

        alice_power = self._receiver_power(self.channel.motion.trajectory_a)
        bob_power = self._receiver_power(self.channel.motion.trajectory_b)

        # Each round consumes n_samples register-noise draws plus one
        # packet-RSSI draw per party, in that order; a single row-major
        # bulk draw therefore replays the loop's stream exactly.
        z_bob = bob_noise.standard_normal((n_rounds, n_samples + 1))
        z_alice = alice_noise.standard_normal((n_rounds, n_samples + 1))

        bob_rssi = bob_sampler.sample_many(
            bob_power, probe_starts, z_bob[:, :n_samples]
        )
        bob_prssi = quantize_packet_rssi(
            bob_rssi.mean(axis=1)
            + self.bob_device.packet_rssi_noise_std_db * z_bob[:, n_samples],
            self.bob_device.rssi_resolution_db,
        )
        alice_rssi = alice_sampler.sample_many(
            alice_power, response_starts, z_alice[:, :n_samples]
        )
        alice_prssi = quantize_packet_rssi(
            alice_rssi.mean(axis=1)
            + self.alice_device.packet_rssi_noise_std_db * z_alice[:, n_samples],
            self.alice_device.rssi_resolution_db,
        )

        eve_traces: Dict[str, EveTrace] = {}
        for setup in eavesdroppers:
            sampler = RegisterRssiSampler(self.phy, setup.device)
            gen = seeds.generator(f"eve-{setup.label}-rssi-noise")
            # Per round the loop draws n_samples for the probe overhear,
            # then n_samples for the response overhear.
            z_eve = gen.standard_normal((n_rounds, 2 * n_samples))
            of_alice = sampler.sample_many(
                self._eve_power(setup.channel_from_alice),
                probe_starts,
                z_eve[:, :n_samples],
            )
            of_bob = sampler.sample_many(
                self._eve_power(setup.channel_from_bob),
                response_starts,
                z_eve[:, n_samples:],
            )
            eve_traces[setup.label] = EveTrace(
                of_alice_rssi=of_alice, of_bob_rssi=of_bob
            )

        probe_gain = self.channel.path_gain_db(probe_starts + airtime / 2.0)
        response_gain = self.channel.path_gain_db(response_starts + airtime / 2.0)
        valid = self.link_budget.is_decodable(
            probe_gain, self.phy
        ) & self.link_budget.is_decodable(response_gain, self.phy)

        return ProbeTrace(
            phy=self.phy,
            alice_rssi=alice_rssi,
            bob_rssi=bob_rssi,
            round_start_s=probe_starts,
            valid=np.asarray(valid, dtype=bool),
            eve=eve_traces,
            alice_prssi=np.asarray(alice_prssi, dtype=float),
            bob_prssi=np.asarray(bob_prssi, dtype=float),
            retries=np.zeros(n_rounds, dtype=np.int32),
            dropped=np.zeros(n_rounds, dtype=bool),
        )

    def _packet_rssi(
        self,
        register_samples: np.ndarray,
        device: TransceiverModel,
        rng: np.random.Generator,
    ) -> float:
        """The chip's whole-packet RSSI report for one reception.

        Mean of the register samples plus the PacketRssi register's own
        calibration error, quantized to the register resolution with
        :func:`~repro.lora.rssi.quantize_packet_rssi` (round half toward
        +infinity -- the documented rule shared with the vectorized
        path).
        """
        value = float(np.mean(register_samples))
        value += float(rng.normal(0.0, device.packet_rssi_noise_std_db))
        return quantize_packet_rssi(value, device.rssi_resolution_db)

    def _eve_power(self, channel: ReciprocalChannel):
        budget = self.link_budget

        def power(times: np.ndarray) -> np.ndarray:
            return budget.received_power_dbm(channel.path_gain_db(times))

        return power


def _group_compatible(protocols: Sequence[ProbingProtocol]) -> bool:
    """Whether one stacked evaluation can serve every session.

    The cross-session fast path shares the round timeline and the trig
    batch, so the group must agree on everything that shapes them: PHY,
    both transceivers, link budget, pacing, fault-freeness, and a
    homogeneous :class:`SpatialJakesFading` family (per-session
    wavelengths may differ; path count / K-factor / precision may not).
    """
    first = protocols[0]
    fading0 = first.channel.fading
    if fading0 is None or not isinstance(fading0, SpatialJakesFading):
        return False
    for protocol in protocols:
        fading = protocol.channel.fading
        if (
            protocol.fault_model is not None
            or protocol.adversary is not None
            or not protocol.fast_path
            or protocol.phy != first.phy
            or protocol.alice_device != first.alice_device
            or protocol.bob_device != first.bob_device
            or protocol.link_budget != first.link_budget
            or protocol.inter_round_gap_s != first.inter_round_gap_s
            or fading is None
            or not isinstance(fading, SpatialJakesFading)
            or fading.n_paths != fading0.n_paths
            or fading.rician_k != fading0.rician_k
            or fading.trig_precision != fading0.trig_precision
        ):
            return False
    return True


def _group_path_gain(
    protocols: Sequence[ProbingProtocol], times_1d: np.ndarray
) -> np.ndarray:
    """``[n_sessions, len(times)]`` total path gains for the group.

    Path loss and shadowing stay per-session (cheap, and their lazy
    caches are stateful); the fading term -- the dominant cost -- is
    evaluated for all sessions in one stacked trig pass.  Row ``i`` is
    bit-identical to ``protocols[i].channel.path_gain_db(times_1d)``
    because the composition order matches
    :meth:`~repro.channel.reciprocity.ReciprocalChannel.prefading_gain_db`
    and :func:`~repro.channel.fading.batched_spatial_gain_db` is
    row-exact.
    """
    partials = np.empty((len(protocols), times_1d.size))
    displacements = np.empty_like(partials)
    for i, protocol in enumerate(protocols):
        partial, displacement = protocol.channel.prefading_gain_db(times_1d)
        partials[i] = partial
        displacements[i] = displacement
    fading_rows = batched_spatial_gain_db(
        [protocol.channel.fading for protocol in protocols], displacements
    )
    return partials + fading_rows


def _group_received_power(
    protocols: Sequence[ProbingProtocol],
    times_1d: np.ndarray,
    trajectory_of: Callable[[ProbingProtocol], object],
) -> np.ndarray:
    """``[n_sessions, len(times)]`` received powers at one endpoint.

    Mirrors :meth:`ProbingProtocol._receiver_power` per row: link-budget
    affine map over the (batched) path gain, then any per-session
    interference combined at the receiver's own positions.
    """
    gains = _group_path_gain(protocols, times_1d)
    powers = np.empty_like(gains)
    for i, protocol in enumerate(protocols):
        total = protocol.link_budget.received_power_dbm(gains[i])
        if protocol.interference:
            positions = trajectory_of(protocol).position_m(times_1d)
            for source in protocol.interference:
                total = combine_power_dbm(
                    total, source.power_dbm(times_1d, positions)
                )
        powers[i] = total
    return powers


def run_fastpath_group(
    protocols: Sequence[ProbingProtocol],
    n_rounds: int,
    seeds: Sequence[SeedSequenceFactory],
    start_time_s: float = 0.0,
) -> List[ProbeTrace]:
    """Run one fault-free probing session per protocol, stacked.

    The cross-session extension of :meth:`ProbingProtocol._run_vectorized`:
    the ``[n_rounds, n_samples]`` grids of a whole batch are stacked into
    ``[n_sessions, n_rounds, n_samples]`` so the channel's trig-heavy
    fading evaluation and the register-reading pipeline each run once for
    the group.  Per-session randomness is replayed row-major -- each
    session draws its own ``bob`` block then its own ``alice`` block from
    its own named streams, exactly as the single-session path does -- so
    every returned :class:`ProbeTrace` is bit-identical to
    ``protocols[i].run(n_rounds, seeds[i], start_time_s=start_time_s)``
    (``tests/test_probing_cross_session.py`` pins this).

    Sessions whose protocols cannot share an evaluation (mixed PHYs or
    devices, fault models, adversaries, non-Jakes fading) fall back to
    per-session :meth:`ProbingProtocol.run`, which preserves correctness
    for any input.
    """
    protocols = list(protocols)
    seeds = list(seeds)
    require(len(protocols) > 0, "run_fastpath_group needs at least one session")
    require(
        len(protocols) == len(seeds),
        "run_fastpath_group needs one seed factory per protocol",
    )
    require_positive(n_rounds, "n_rounds")
    if not _group_compatible(protocols):
        return [
            protocol.run(n_rounds, session_seeds, start_time_s=start_time_s)
            for protocol, session_seeds in zip(protocols, seeds)
        ]

    first = protocols[0]
    airtime = first.phy.airtime_s
    alice_sampler = RegisterRssiSampler(first.phy, first.alice_device)
    bob_sampler = RegisterRssiSampler(first.phy, first.bob_device)
    n_samples = alice_sampler.n_samples
    n_sessions = len(protocols)

    # Shared round timeline: PHY, devices and pacing agree across the
    # group, so the running-cursor loop (same association order as the
    # frozen loop path) is computed once.
    probe_starts = np.empty(n_rounds)
    response_starts = np.empty(n_rounds)
    cursor = float(start_time_s)
    for k in range(n_rounds):
        probe_starts[k] = cursor
        response_start = cursor + airtime + first.bob_device.processing_delay_s
        response_starts[k] = response_start
        cursor = (
            response_start
            + airtime
            + first.alice_device.processing_delay_s
            + first.inter_round_gap_s
        )
    probe_times = bob_sampler.reception_times(probe_starts)
    response_times = alice_sampler.reception_times(response_starts)

    # Per-session noise blocks in the single-session draw order: each
    # session's bob block before its alice block, from its own streams.
    z_bob = np.empty((n_sessions, n_rounds, n_samples + 1))
    z_alice = np.empty_like(z_bob)
    for i, session_seeds in enumerate(seeds):
        alice_noise = session_seeds.generator("alice-rssi-noise")
        bob_noise = session_seeds.generator("bob-rssi-noise")
        z_bob[i] = bob_noise.standard_normal((n_rounds, n_samples + 1))
        z_alice[i] = alice_noise.standard_normal((n_rounds, n_samples + 1))

    bob_power = _group_received_power(
        protocols, probe_times.ravel(), lambda p: p.channel.motion.trajectory_b
    )
    alice_power = _group_received_power(
        protocols, response_times.ravel(), lambda p: p.channel.motion.trajectory_a
    )
    bob_rssi = bob_sampler.readings_for_power(
        bob_power.reshape(n_sessions, n_rounds, n_samples),
        z_bob[:, :, :n_samples],
    )
    alice_rssi = alice_sampler.readings_for_power(
        alice_power.reshape(n_sessions, n_rounds, n_samples),
        z_alice[:, :, :n_samples],
    )
    bob_prssi = quantize_packet_rssi(
        bob_rssi.mean(axis=2)
        + first.bob_device.packet_rssi_noise_std_db * z_bob[:, :, n_samples],
        first.bob_device.rssi_resolution_db,
    )
    alice_prssi = quantize_packet_rssi(
        alice_rssi.mean(axis=2)
        + first.alice_device.packet_rssi_noise_std_db * z_alice[:, :, n_samples],
        first.alice_device.rssi_resolution_db,
    )

    probe_gain = _group_path_gain(protocols, probe_starts + airtime / 2.0)
    response_gain = _group_path_gain(protocols, response_starts + airtime / 2.0)
    valid = first.link_budget.is_decodable(
        probe_gain, first.phy
    ) & first.link_budget.is_decodable(response_gain, first.phy)

    traces: List[ProbeTrace] = []
    for i, protocol in enumerate(protocols):
        traces.append(
            ProbeTrace(
                phy=protocol.phy,
                alice_rssi=alice_rssi[i],
                bob_rssi=bob_rssi[i],
                round_start_s=probe_starts.copy(),
                valid=np.asarray(valid[i], dtype=bool),
                eve={},
                alice_prssi=np.asarray(alice_prssi[i], dtype=float),
                bob_prssi=np.asarray(bob_prssi[i], dtype=float),
                retries=np.zeros(n_rounds, dtype=np.int32),
                dropped=np.zeros(n_rounds, dtype=bool),
            )
        )
    return traces
