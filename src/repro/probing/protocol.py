"""Probe/response exchange simulation.

One probing round:

1. Alice transmits a probe; Bob's radio samples its RSSI register once per
   symbol over the packet airtime.
2. Bob turns the link around after his host's processing delay and
   transmits the response; Alice samples likewise.
3. The next round starts after Alice's processing delay plus an optional
   pacing gap (duty-cycle budget).

Because the airtime of the paper's SF12 configuration is three orders of
magnitude larger than the propagation delay, propagation is ignored
(Sec. II-A makes the same argument).  Any eavesdroppers receive both
transmissions through their *own* channels, sampled at exactly the same
instants as the legitimate receivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.channel.reciprocity import ReciprocalChannel
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.link_budget import LinkBudget
from repro.lora.radio import TransceiverModel
from repro.lora.rssi import RegisterRssiSampler
from repro.probing.trace import EveTrace, ProbeTrace
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class EavesdropperSetup:
    """An eavesdropper's receive channels from each legitimate node.

    Attributes:
        label: Name used to key this attacker's trace.
        device: Eve's transceiver.
        channel_from_alice: Channel Eve hears Alice's transmissions through.
        channel_from_bob: Channel Eve hears Bob's transmissions through.
    """

    label: str
    device: TransceiverModel
    channel_from_alice: ReciprocalChannel
    channel_from_bob: ReciprocalChannel


class ProbingProtocol:
    """Runs probing rounds over a reciprocal channel.

    Args:
        channel: The Alice<->Bob reciprocal channel.
        phy: LoRa configuration for the probe packets.
        alice_device: Alice's transceiver model.
        bob_device: Bob's transceiver model.
        link_budget: Shared link budget (TX powers are symmetric in the
            paper's setup).
        inter_round_gap_s: Extra pacing between rounds, e.g. for regional
            duty-cycle compliance.  Zero by default: the paper probes
            back-to-back.
        interference: Optional interference sources; each receiver picks
            them up through its own position, so the corruption is
            asymmetric between the endpoints (paper Sec. II-A, effect 4).
    """

    def __init__(
        self,
        channel: ReciprocalChannel,
        phy: LoRaPHYConfig,
        alice_device: TransceiverModel,
        bob_device: TransceiverModel,
        link_budget: LinkBudget = None,
        inter_round_gap_s: float = 0.0,
        interference: Sequence = (),
    ):
        require(inter_round_gap_s >= 0, "inter_round_gap_s must be >= 0")
        self.channel = channel
        self.phy = phy
        self.alice_device = alice_device
        self.bob_device = bob_device
        self.link_budget = link_budget if link_budget is not None else LinkBudget()
        self.inter_round_gap_s = float(inter_round_gap_s)
        self.interference = list(interference)

    def round_period_s(self) -> float:
        """Duration of one complete probe/response round."""
        return (
            2.0 * self.phy.airtime_s
            + self.bob_device.processing_delay_s
            + self.alice_device.processing_delay_s
            + self.inter_round_gap_s
        )

    def run(
        self,
        n_rounds: int,
        seeds: SeedSequenceFactory,
        eavesdroppers: Sequence[EavesdropperSetup] = (),
        start_time_s: float = 0.0,
    ) -> ProbeTrace:
        """Execute ``n_rounds`` probe/response rounds.

        Args:
            n_rounds: Rounds to attempt.
            seeds: Seed factory; measurement-noise streams are drawn from
                the ``alice-rssi-noise``, ``bob-rssi-noise`` and
                ``eve-<label>-rssi-noise`` streams.
            eavesdroppers: Attackers overhearing the exchange.
            start_time_s: Protocol start time on the channel's clock.

        Returns:
            The complete :class:`ProbeTrace`, including per-round validity
            (both directions above sensitivity) and eavesdropper traces.
        """
        require_positive(n_rounds, "n_rounds")
        airtime = self.phy.airtime_s

        alice_sampler = RegisterRssiSampler(self.phy, self.alice_device)
        bob_sampler = RegisterRssiSampler(self.phy, self.bob_device)
        eve_samplers = {
            setup.label: RegisterRssiSampler(self.phy, setup.device)
            for setup in eavesdroppers
        }
        alice_noise = seeds.generator("alice-rssi-noise")
        bob_noise = seeds.generator("bob-rssi-noise")
        eve_noise = {
            setup.label: seeds.generator(f"eve-{setup.label}-rssi-noise")
            for setup in eavesdroppers
        }

        n_samples = alice_sampler.n_samples
        alice_rssi = np.empty((n_rounds, n_samples))
        bob_rssi = np.empty((n_rounds, n_samples))
        alice_prssi = np.empty(n_rounds)
        bob_prssi = np.empty(n_rounds)
        round_start = np.empty(n_rounds)
        valid = np.ones(n_rounds, dtype=bool)
        eve_of_alice: Dict[str, np.ndarray] = {
            s.label: np.empty((n_rounds, n_samples)) for s in eavesdroppers
        }
        eve_of_bob: Dict[str, np.ndarray] = {
            s.label: np.empty((n_rounds, n_samples)) for s in eavesdroppers
        }

        def receiver_power(trajectory):
            def power(times: np.ndarray) -> np.ndarray:
                total = self.link_budget.received_power_dbm(
                    self.channel.path_gain_db(times)
                )
                if self.interference:
                    from repro.channel.interference import combine_power_dbm

                    positions = trajectory.position_m(times)
                    for source in self.interference:
                        total = combine_power_dbm(
                            total, source.power_dbm(times, positions)
                        )
                return total

            return power

        alice_power = receiver_power(self.channel.motion.trajectory_a)
        bob_power = receiver_power(self.channel.motion.trajectory_b)

        cursor = float(start_time_s)
        for k in range(n_rounds):
            round_start[k] = cursor
            # --- Alice's probe, received by Bob (and overheard by Eve).
            bob_rssi[k] = bob_sampler.sample(bob_power, cursor, seed=bob_noise)
            bob_prssi[k] = self._packet_rssi(
                bob_rssi[k], self.bob_device, bob_noise
            )
            for setup in eavesdroppers:
                power = self._eve_power(setup.channel_from_alice)
                eve_of_alice[setup.label][k] = eve_samplers[setup.label].sample(
                    power, cursor, seed=eve_noise[setup.label]
                )
            mid_probe = cursor + airtime / 2.0
            if not self.link_budget.is_decodable(
                self.channel.path_gain_db(mid_probe), self.phy
            ):
                valid[k] = False

            # --- Bob's response after his turnaround delay.
            response_start = cursor + airtime + self.bob_device.processing_delay_s
            alice_rssi[k] = alice_sampler.sample(
                alice_power, response_start, seed=alice_noise
            )
            alice_prssi[k] = self._packet_rssi(
                alice_rssi[k], self.alice_device, alice_noise
            )
            for setup in eavesdroppers:
                power = self._eve_power(setup.channel_from_bob)
                eve_of_bob[setup.label][k] = eve_samplers[setup.label].sample(
                    power, response_start, seed=eve_noise[setup.label]
                )
            mid_response = response_start + airtime / 2.0
            if not self.link_budget.is_decodable(
                self.channel.path_gain_db(mid_response), self.phy
            ):
                valid[k] = False

            cursor = (
                response_start
                + airtime
                + self.alice_device.processing_delay_s
                + self.inter_round_gap_s
            )

        eve_traces = {
            label: EveTrace(of_alice_rssi=eve_of_alice[label], of_bob_rssi=eve_of_bob[label])
            for label in eve_of_alice
        }
        return ProbeTrace(
            phy=self.phy,
            alice_rssi=alice_rssi,
            bob_rssi=bob_rssi,
            round_start_s=round_start,
            valid=valid,
            eve=eve_traces,
            alice_prssi=alice_prssi,
            bob_prssi=bob_prssi,
        )

    def _packet_rssi(
        self,
        register_samples: np.ndarray,
        device: TransceiverModel,
        rng: np.random.Generator,
    ) -> float:
        """The chip's whole-packet RSSI report for one reception.

        Mean of the register samples plus the PacketRssi register's own
        calibration error, quantized to the register resolution.
        """
        value = float(np.mean(register_samples))
        value += float(rng.normal(0.0, device.packet_rssi_noise_std_db))
        return round(value / device.rssi_resolution_db) * device.rssi_resolution_db

    def _eve_power(self, channel: ReciprocalChannel):
        budget = self.link_budget

        def power(times: np.ndarray) -> np.ndarray:
            return budget.received_power_dbm(channel.path_gain_db(times))

        return power
