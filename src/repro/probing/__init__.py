"""Channel probing substrate.

Simulates the probe/response packet exchange between Alice and Bob (with
optional eavesdroppers), producing the register-RSSI traces that the rest
of the pipeline consumes, and extracts the paper's channel features from
them: packet RSSI (pRSSI), raw register RSSI (rRSSI) and adjacent register
RSSI (arRSSI).
"""

from repro.probing.trace import ProbeTrace, EveTrace
from repro.probing.protocol import ProbingProtocol, EavesdropperSetup
from repro.probing.features import (
    packet_rssi_series,
    adjacent_register_rssi,
    arrssi_sequences,
    eve_arrssi_sequences,
    FeatureConfig,
)
from repro.probing.dataset import (
    KeyGenDataset,
    DatasetSplits,
    build_dataset,
    split_dataset,
)
from repro.probing.eve import EveConfig, build_eavesdropping_eve, build_imitating_eve

__all__ = [
    "ProbeTrace",
    "EveTrace",
    "ProbingProtocol",
    "EavesdropperSetup",
    "packet_rssi_series",
    "adjacent_register_rssi",
    "arrssi_sequences",
    "eve_arrssi_sequences",
    "FeatureConfig",
    "KeyGenDataset",
    "DatasetSplits",
    "build_dataset",
    "split_dataset",
    "EveConfig",
    "build_eavesdropping_eve",
    "build_imitating_eve",
]
