"""Payload-attack sweep: the secure channel under record-layer attacks.

Not a paper figure -- the paper stops at key establishment.  This sweep
evaluates the data phase built on top of the established keys
(:mod:`repro.secure`): per attack profile, an active adversary mangles
the encrypted record stream -- flipping bits, truncating, splicing in
foreign ciphertext, replaying captures -- and the table reports what the
channel did about it:

- the *detection rate*: the fraction of attacked deliveries rejected
  through the closed failure taxonomy (``auth-failed``,
  ``nonce-replayed``, ``record-truncated``, ...),
- how often burned decrypt budgets forced *rekeys* and how many channels
  ended in a *structured close*,
- the two invariants that must hold everywhere: zero plaintext released
  on any failed open, and zero nonce reuse under the global ledger.

The establishment layer already proved itself under attack in the
``active-adversary`` sweep; here every session starts from a confirmed
key and the adversary attacks only the records.
"""

from __future__ import annotations

from repro.channel.scenario import ScenarioName
from repro.experiments.common import (
    ExperimentResult,
    get_scale,
    get_trained_pipeline,
)
from repro.faults import AdversaryPlan, build_adversary
from repro.secure import (
    ChannelContext,
    ManagedSecureLink,
    NonceLedger,
    RekeyPolicy,
    SecureLink,
    derive_channel_keys,
)
from repro.utils.rng import SeedSequenceFactory

#: Named record-attack profiles.  ``baseline`` is the no-attacker control
#: row (every record delivered untouched).
PROFILES = (
    ("baseline", AdversaryPlan.none()),
    ("record-bitflip", AdversaryPlan(record_bitflip_rate=0.6)),
    ("record-replay", AdversaryPlan(record_replay_rate=0.6)),
    ("record-truncate", AdversaryPlan(record_truncate_rate=0.6)),
    ("record-splice", AdversaryPlan(record_splice_rate=0.6)),
    (
        "combined",
        AdversaryPlan(
            record_bitflip_rate=0.25,
            record_replay_rate=0.25,
            record_truncate_rate=0.2,
            record_splice_rate=0.2,
        ),
    ),
)

#: Records each session's initiator sends per profile.
MESSAGES_PER_SESSION = 12


def _confirmed_results(pipeline, n_sessions: int, rounds: int):
    """Confirmed session results to derive channel keys from.

    Establishment success depends on each episode's channel realization,
    so more episodes than sessions are probed; the sweep runs over
    however many confirmed keys were found (at least one).
    """
    results = []
    for index in range(6 * n_sessions):
        outcome = pipeline.establish_key(
            episode=f"payload-base-{index}", n_rounds=rounds
        )
        if outcome.success:
            results.append(outcome.session)
        if len(results) >= n_sessions:
            break
    return results


def _foreign_record() -> bytes:
    """One record sealed under keys no session ever derived (for splices)."""
    keys = derive_channel_keys(
        b"\x77" * 32, ChannelContext(session_nonce=b"\x42" * 16)
    )
    return SecureLink(keys).initiator.seal(b"foreign ciphertext")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Detection / rekey / close table across record-attack profiles."""
    scale = get_scale(quick)
    pipeline = get_trained_pipeline(ScenarioName.V2V_URBAN, seed=seed, quick=quick)
    results = _confirmed_results(pipeline, scale.n_sessions, scale.session_rounds)
    result = ExperimentResult(
        experiment_id="payload-attacks",
        title="secure-channel detection and rekeying under record attacks",
        columns=[
            "profile",
            "sessions",
            "records",
            "attacked",
            "detection_rate",
            "rekeys",
            "channel_closes",
            "plaintext_leaks",
            "nonce_reuses",
        ],
        notes=(
            "detection = attacked deliveries rejected via the closed "
            "failure taxonomy (an attacked delivery may legitimately "
            "succeed when it replays a record whose first delivery the "
            "attacker suppressed); plaintext_leaks and nonce_reuses "
            "must be 0 everywhere"
        ),
    )
    foreign = _foreign_record()
    for name, plan in PROFILES:
        ledger = NonceLedger()
        records = attacked = detected = 0
        rekeys = closes = leaks = 0
        for index, session in enumerate(results):
            link = ManagedSecureLink(
                pipeline,
                session,
                episode=f"payload-{name}-{index}",
                policy=RekeyPolicy(
                    max_records_per_epoch=64,
                    decrypt_failure_budget=4,
                    grace_opens=2,
                ),
                ledger=ledger,
                n_rounds=scale.session_rounds,
            )
            adversary = (
                build_adversary(plan, SeedSequenceFactory(seed * 7919 + index))
                if not plan.is_null
                else None
            )
            history = []
            for message in range(MESSAGES_PER_SESSION):
                wire = link.seal(
                    "initiator", f"{name}-{index}-{message}".encode()
                )
                if wire is None:
                    break
                records += 1
                deliveries = (
                    adversary.attack_record(wire, history, foreign=foreign)
                    if adversary is not None
                    else [wire]
                )
                history.append(wire)
                for blob in deliveries:
                    outcome = link.deliver("responder", blob)
                    if outcome is None:
                        break
                    if blob is not wire:
                        attacked += 1
                        if not outcome.ok:
                            detected += 1
                    if not outcome.ok and outcome.plaintext is not None:
                        leaks += 1
            rekeys += link.rekeys_completed
            closes += int(link.closed)
        result.add_row(
            profile=name,
            sessions=len(results),
            records=records,
            attacked=attacked,
            detection_rate=(detected / attacked) if attacked else 1.0,
            rekeys=rekeys,
            channel_closes=closes,
            plaintext_leaks=leaks,
            nonce_reuses=len(ledger.reuses),
        )
    return result
