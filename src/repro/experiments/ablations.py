"""Ablations of Vehicle-Key's design choices (DESIGN.md section 5).

Not figures from the paper, but checks of the design decisions the paper
asserts without ablation:

- **theta** (joint loss weight): quantization-head quality across the
  MSE/BCE balance; theta = 1 removes the BCE term entirely and the
  quantization head never learns.
- **Bloom filter**: reconciliation behaviour is unchanged (position
  preservation) while the syndrome stops being a fixed linear sketch of
  the raw key.
- **Bob's quantizer**: multi-bit vs mean-threshold extraction.
"""

from __future__ import annotations

import numpy as np

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.model import PredictionQuantizationModel
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.experiments.common import ExperimentResult
from repro.probing.dataset import split_dataset
from repro.probing.features import FeatureConfig
from repro.quantization.mean_threshold import MeanThresholdQuantizer
from repro.quantization.multibit import MultiBitQuantizer
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.utils.bits import flip_bits, random_bits

THETAS = (0.5, 0.7, 0.9, 1.0)


def _dataset(quick: bool, seed: int):
    config = PipelineConfig(
        scenario=scenario_config(ScenarioName.V2I_URBAN),
        feature_config=FeatureConfig(window_fraction=0.10, values_per_packet=2),
        hidden_units=24,
    )
    pipeline = VehicleKeyPipeline(config, seed=seed)
    dataset = pipeline.collect_dataset(n_episodes=60 if quick else 200)
    return split_dataset(dataset, seed=seed)


def run_theta(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Joint-loss weight sweep."""
    splits = _dataset(quick, seed)
    epochs = 40 if quick else 120
    result = ExperimentResult(
        experiment_id="ablation-theta",
        title="joint loss weight theta vs quantization-head agreement",
        columns=["theta", "kar"],
        notes=(
            "theta=1 removes the BCE term: the quantization head never "
            "trains and agreement collapses to chance"
        ),
    )
    for theta in THETAS:
        model = PredictionQuantizationModel(
            seq_len=32, hidden_units=24, key_bits=64, theta=theta, seed=seed
        )
        model.fit(splits.train, splits.validation, epochs=epochs, batch_size=64)
        alice = model.alice_bits(splits.test.alice)
        bob = model.bob_bits(splits.test.bob_raw)
        result.add_row(theta=theta, kar=float(np.mean(alice == bob)))
    return result


def run_bloom(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Bloom filter on/off: correction unchanged, syndrome de-structured."""
    n_keys = 40 if quick else 150
    train_kwargs = dict(
        n_samples=12000 if quick else 40000,
        epochs=25 if quick else 60,
        mismatch_rate_range=(0.0, 0.08),
    )
    result = ExperimentResult(
        experiment_id="ablation-bloom",
        title="position-preserving Bloom filter on/off",
        columns=["variant", "reconciled_agreement", "syndrome_key_correlation"],
        notes=(
            "agreement should match; without the filter the syndrome is a "
            "fixed function of the raw key bits (higher linear correlation "
            "with them)"
        ),
    )
    for variant, salt in (("with-bloom", b"session-salt"), ("no-bloom", None)):
        reconciler = AutoencoderReconciliation(
            key_bits=64, code_dim=48, decoder_units=128, seed=seed,
            salt=salt if salt is not None else b"x",
        )
        if salt is None:
            # Disable the transform: identity permutation, zero pad.
            reconciler.bloom._permutation = np.arange(64)
            reconciler.bloom._inverse_permutation = np.arange(64)
            reconciler.bloom._pad = np.zeros(64, dtype=np.uint8)
        reconciler.fit(**train_kwargs)
        agreements = []
        syndromes = []
        keys = []
        for index in range(n_keys):
            bob = random_bits(64, seed * 1000 + index)
            positions = np.random.default_rng(index).choice(64, size=2, replace=False)
            alice = flip_bits(bob, positions)
            agreements.append(reconciler.reconcile(alice, bob).agreement)
            syndromes.append(reconciler.bob_syndrome(bob))
            keys.append(bob)
        syndromes = np.stack(syndromes)
        keys = np.stack(keys).astype(float)
        # Max |correlation| between any syndrome coordinate and any raw key bit.
        centered_s = syndromes - syndromes.mean(0)
        centered_k = keys - keys.mean(0)
        numerator = np.abs(centered_s.T @ centered_k)
        denominator = np.outer(
            np.linalg.norm(centered_s, axis=0), np.linalg.norm(centered_k, axis=0)
        )
        correlation = float(np.max(numerator / np.maximum(denominator, 1e-12)))
        result.add_row(
            variant=variant,
            reconciled_agreement=float(np.mean(agreements)),
            syndrome_key_correlation=correlation,
        )
    return result


def run_architecture(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Recurrent-cell choice: BiLSTM (paper) vs LSTM vs GRU."""
    splits = _dataset(quick, seed)
    epochs = 40 if quick else 120
    result = ExperimentResult(
        experiment_id="ablation-architecture",
        title="sequence encoder: BiLSTM vs LSTM vs GRU",
        columns=["cell", "kar", "parameters"],
        notes=(
            "the paper's BiLSTM sees both past and future context; the "
            "unidirectional cells are the cheaper what-ifs"
        ),
    )
    for cell in ("bilstm", "lstm", "gru"):
        model = PredictionQuantizationModel(
            seq_len=32,
            hidden_units=24,
            key_bits=64,
            recurrent_cell=cell,
            seed=seed,
        )
        model.fit(splits.train, splits.validation, epochs=epochs, batch_size=64)
        alice = model.alice_bits(splits.test.alice)
        bob = model.bob_bits(splits.test.bob_raw)
        n_parameters = sum(
            value.size
            for layer in model.layers
            for value in layer.parameters.values()
        )
        result.add_row(
            cell=cell, kar=float(np.mean(alice == bob)), parameters=n_parameters
        )
    return result


def run_quantizer(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Bob-side quantizer choice: multi-bit vs mean threshold."""
    splits = _dataset(quick, seed)
    result = ExperimentResult(
        experiment_id="ablation-quantizer",
        title="Bob's quantizer: agreement and bits per window",
        columns=["quantizer", "kar", "bits_per_window"],
        notes="multi-bit doubles the rate at a modest agreement cost",
    )
    test = splits.test
    for label, quantizer in (
        ("mean-threshold", MeanThresholdQuantizer()),
        ("multi-bit-2", MultiBitQuantizer(2, fixed_thresholds=True)),
    ):
        rates = []
        bits = None
        for alice_raw, bob_raw in zip(test.alice_raw, test.bob_raw):
            result_a = quantizer.quantize(alice_raw)
            result_b = quantizer.quantize(bob_raw)
            rates.append(float(np.mean(result_a.bits == result_b.bits)))
            bits = result_b.bits.size
        result.add_row(
            quantizer=label, kar=float(np.mean(rates)), bits_per_window=bits
        )
    return result


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """All ablations merged into one table."""
    merged = ExperimentResult(
        experiment_id="ablations",
        title="design-choice ablations",
        columns=["ablation", "setting", "metric", "value"],
    )
    theta = run_theta(quick, seed)
    for row in theta.rows:
        merged.add_row(
            ablation="theta", setting=str(row["theta"]), metric="kar", value=row["kar"]
        )
    bloom = run_bloom(quick, seed)
    for row in bloom.rows:
        merged.add_row(
            ablation="bloom",
            setting=row["variant"],
            metric="agreement",
            value=row["reconciled_agreement"],
        )
        merged.add_row(
            ablation="bloom",
            setting=row["variant"],
            metric="syndrome-key-corr",
            value=row["syndrome_key_correlation"],
        )
    quantizer = run_quantizer(quick, seed)
    for row in quantizer.rows:
        merged.add_row(
            ablation="quantizer",
            setting=row["quantizer"],
            metric="kar",
            value=row["kar"],
        )
    return merged
