"""Fig. 11: autoencoder reconciliation vs compressed sensing.

Paper claims: the AE beats the CS method at every decoder width, its
agreement grows with the hidden-unit count, its std is smaller, and its
decoding is ~10x cheaper computationally.

Key pairs are synthesized at the bit-disagreement rates the pipeline
actually produces (a mixture over 0--8%), so this isolates the
reconciliation stage exactly as the paper's experiment does.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import ExperimentResult, get_scale
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.reconciliation.compressed_sensing import CompressedSensingReconciliation
from repro.utils.bits import flip_bits, random_bits

DECODER_UNITS = (16, 32, 64, 128)


def _key_pairs(n_pairs: int, key_bits: int, seed: int):
    rng = np.random.default_rng(seed)
    pairs = []
    for index in range(n_pairs):
        bob = random_bits(key_bits, seed * 10_000 + index)
        flips = int(rng.integers(0, max(2, key_bits // 12)))
        positions = rng.choice(key_bits, size=flips, replace=False)
        pairs.append((flip_bits(bob, positions), bob))
    return pairs


def _evaluate(reconciler, pairs):
    agreements = []
    start = time.perf_counter()
    for alice, bob in pairs:
        agreements.append(reconciler.reconcile(alice, bob).agreement)
    elapsed_ms = 1e3 * (time.perf_counter() - start) / len(pairs)
    return float(np.mean(agreements)), float(np.std(agreements)), elapsed_ms


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the decoder-width sweep against the CS baseline."""
    scale = get_scale(quick)
    key_bits = 64
    n_pairs = 60 if quick else 200
    pairs = _key_pairs(n_pairs, key_bits, seed + 1)
    train_samples = 15000 if quick else 40000
    train_epochs = 25 if quick else 60

    result = ExperimentResult(
        experiment_id="fig11",
        title="reconciliation: AE decoder width sweep vs compressed sensing",
        columns=["method", "agreement", "std", "decode_ms"],
        notes=(
            "paper shape: AE agreement grows with units, exceeds CS, with "
            "lower std and about an order of magnitude cheaper decoding"
        ),
    )

    cs = CompressedSensingReconciliation(measurements=20, block_bits=key_bits, seed=seed)
    cs_agreement, cs_std, cs_ms = _evaluate(cs, pairs)
    result.add_row(method="CS (20x64)", agreement=cs_agreement, std=cs_std, decode_ms=cs_ms)

    ae_ms = None
    for units in DECODER_UNITS:
        reconciler = AutoencoderReconciliation(
            key_bits=key_bits, code_dim=32, decoder_units=units, seed=seed
        )
        reconciler.fit(
            n_samples=train_samples,
            epochs=train_epochs,
            mismatch_rate_range=(0.0, 0.09),
        )
        agreement, std, decode_ms = _evaluate(reconciler, pairs)
        ae_ms = decode_ms
        result.add_row(
            method=f"AE-{units}", agreement=agreement, std=std, decode_ms=decode_ms
        )
    if ae_ms:
        result.notes += f"; measured CS/AE decode-time ratio {cs_ms / ae_ms:.1f}x"
    return result
