"""Fig. 14: cross-scenario generalization via fine-tuning.

Paper claims: fine-tuning the V2I-Urban model (M1) with 10% of a new
scenario's data for 20 epochs matches or beats training from scratch
with the full data and the same epoch budget, across M1->M2/M3/M4.
"""

from __future__ import annotations

from repro.channel.scenario import ScenarioName
from repro.core.transfer import transfer_study
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline

TARGETS = (
    ScenarioName.V2I_RURAL,
    ScenarioName.V2V_URBAN,
    ScenarioName.V2V_RURAL,
)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the M1->{M2,M3,M4} transfer comparison."""
    scale = get_scale(quick)
    epochs = 10 if quick else 20
    base = get_trained_pipeline(ScenarioName.V2I_URBAN, seed=seed, quick=quick)
    result = ExperimentResult(
        experiment_id="fig14",
        title="transfer learning from M1 (V2I-Urban)",
        columns=["target", "arm", "fraction", "agreement"],
        notes=(
            "paper shape: transfer-10% with a small epoch budget matches "
            "or beats from-scratch training with the same budget"
        ),
    )
    for target in TARGETS:
        target_pipeline = get_trained_pipeline(target, seed=seed, quick=quick)
        dataset = target_pipeline.collect_dataset(
            n_episodes=max(20, scale.train_episodes // 4),
            episode_prefix="transfer-target",
        )
        study = transfer_study(
            base.model,
            dataset,
            fractions=[0.10, 0.50, 1.00],
            fine_tune_epochs=epochs,
            scratch_epochs=epochs,
            seed=seed,
        )
        for label, arm in study.items():
            result.add_row(
                target=target.value,
                arm=label,
                fraction=arm.fraction,
                agreement=arm.agreement,
            )
    return result
