"""Shared experiment infrastructure: results, scales, pipeline caches."""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.channel.scenario import ScenarioName
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.exceptions import ReproError
from repro.utils.validation import require


@dataclass
class ExperimentResult:
    """One table/figure's regenerated data.

    Attributes:
        experiment_id: Paper reference, e.g. ``"fig12"`` or ``"table1"``.
        title: Human-readable description.
        columns: Column names, defining row ordering.
        rows: One dict per reported row/series point.
        notes: Substitutions, caveats, paper-vs-measured commentary.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        """Append one row; keys must cover the declared columns."""
        missing = [c for c in self.columns if c not in values]
        require(not missing, f"row is missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> List:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def to_payload(self) -> str:
        """Canonical JSON serialization of the full result.

        Key order and float formatting are deterministic, so two runs that
        produced the same numbers yield byte-identical payloads -- this is
        what the serial-vs-parallel runner equivalence test compares.
        """
        def scalar(value):
            # Normalize numpy scalars so the payload doesn't depend on
            # whether an experiment called float()/int() before add_row.
            if hasattr(value, "item"):
                return value.item()
            raise TypeError(f"cannot serialize {type(value).__name__}")

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
            },
            sort_keys=True,
            default=scalar,
        )

    def to_table(self) -> str:
        """Render rows as an aligned text table (the paper-style output)."""
        def fmt(value):
            if isinstance(value, float):
                return f"{value:.4f}"
            return str(value)

        widths = {
            c: max(len(c), *(len(fmt(row[c])) for row in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [f"== {self.experiment_id}: {self.title} ==", header,
                 "  ".join("-" * widths[c] for c in self.columns)]
        for row in self.rows:
            lines.append("  ".join(fmt(row[c]).ljust(widths[c]) for c in self.columns))
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs.

    ``quick`` targets benchmark runtimes (tens of seconds per
    experiment); ``full`` approaches paper scale.
    """

    train_episodes: int
    train_epochs: int
    reconciler_epochs: int
    session_rounds: int
    n_sessions: int
    n_seeds: int


_QUICK = Scale(
    train_episodes=220,
    train_epochs=90,
    reconciler_epochs=30,
    session_rounds=256,
    n_sessions=3,
    n_seeds=2,
)
_FULL = Scale(
    train_episodes=400,
    train_epochs=200,
    reconciler_epochs=60,
    session_rounds=512,
    n_sessions=8,
    n_seeds=4,
)


def get_scale(quick: bool) -> Scale:
    """The sizing preset for quick or full runs."""
    return _QUICK if quick else _FULL


_PIPELINE_CACHE: Dict[Tuple, VehicleKeyPipeline] = {}

#: Environment variable naming the on-disk trained-pipeline cache root.
#: When set (e.g. by ``repro experiments --cache-dir``), trained pipelines
#: are persisted there through the artifact container and later runs --
#: including parallel ``--jobs`` workers -- load them instead of retraining.
PIPELINE_CACHE_ENV = "REPRO_PIPELINE_CACHE"

#: Bump to invalidate every existing on-disk cache entry (e.g. after a
#: change to training semantics that is not visible in the config).
_CACHE_FORMAT_VERSION = 1

_COMPLETE_MARKER = "COMPLETE.json"


def pipeline_cache_root() -> Optional[Path]:
    """The on-disk pipeline cache root, or ``None`` when disabled."""
    root = os.environ.get(PIPELINE_CACHE_ENV, "").strip()
    return Path(root) if root else None


def pipeline_fingerprint(
    scenario: ScenarioName,
    seed: int,
    scale: Scale,
    config: PipelineConfig,
    cache_key_extra: str = "",
) -> str:
    """Deterministic name for one trained-pipeline cache entry.

    Hashes everything training depends on: the scenario, the training
    seed, the :class:`Scale` preset, every :class:`PipelineConfig` field
    (recursively, so device models and feature configs count), and the
    caller's ``cache_key_extra`` tag.  Any change to any of these yields
    a different fingerprint, so stale entries are never loaded -- they
    are simply orphaned on disk.
    """
    payload = {
        "format": _CACHE_FORMAT_VERSION,
        "scenario": scenario.value,
        "seed": int(seed),
        "scale": asdict(scale),
        "config": asdict(config),
        "extra": cache_key_extra,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def _load_cached_pipeline(pipeline: VehicleKeyPipeline, entry: Path) -> bool:
    """Restore a pipeline from a cache entry; ``False`` on any problem.

    The completion marker is written only after both artifacts landed, so
    a crashed writer leaves an entry that is simply ignored; a corrupt or
    architecture-mismatched artifact falls back to retraining (which
    overwrites the entry atomically).
    """
    if not (entry / _COMPLETE_MARKER).is_file():
        return False
    try:
        pipeline.load(entry)
    except (ReproError, OSError, ValueError):
        return False
    return True


def _store_cached_pipeline(
    pipeline: VehicleKeyPipeline, entry: Path, fingerprint: str
) -> None:
    """Persist a freshly trained pipeline; never fails the training run."""
    try:
        entry.mkdir(parents=True, exist_ok=True)
        pipeline.save(entry)
        marker = json.dumps(
            {"fingerprint": fingerprint, "format": _CACHE_FORMAT_VERSION},
            sort_keys=True,
        )
        tmp = entry / f".{_COMPLETE_MARKER}.tmp.{os.getpid()}"
        tmp.write_text(marker + "\n", encoding="utf-8")
        os.replace(tmp, entry / _COMPLETE_MARKER)
    except OSError:
        # The cache is an optimization; a full disk or permission issue
        # must not take down the experiment that just finished training.
        pass


def get_trained_pipeline(
    scenario: ScenarioName,
    seed: int = 0,
    quick: bool = True,
    config: Optional[PipelineConfig] = None,
    cache_key_extra: str = "",
    checkpoint_dir: Optional[str] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> VehicleKeyPipeline:
    """A trained pipeline for a scenario, cached across experiments.

    Training dominates every learned experiment's runtime; Fig. 10, 12,
    13, 15 and the tables can share one trained pipeline per scenario.

    Two cache layers sit in front of training:

    1. an in-memory cache keyed on the call signature (process-local), and
    2. an optional on-disk cache (``cache_dir`` argument, or the
       ``REPRO_PIPELINE_CACHE`` environment variable) keyed on a
       fingerprint of the scenario, seed, scale, and full pipeline
       config.  Entries are the pipeline's own ``save()`` artifacts, so
       parallel ``--jobs`` workers and repeat runs skip retraining.
       Because session randomness comes from name-keyed seed streams, a
       loaded pipeline produces results identical to a freshly trained
       one.  Note the disk path does not restore ``splits`` or
       ``training_report`` (no experiment consumes them).

    ``checkpoint_dir`` enables crash-safe training for long full-scale
    runs: the model checkpoints every epoch and a rerun of the same
    experiment resumes from the last completed epoch instead of
    retraining from scratch.
    """
    key = (scenario, seed, quick, cache_key_extra)
    if key in _PIPELINE_CACHE:
        return _PIPELINE_CACHE[key]
    scale = get_scale(quick)
    if config is None:
        pipeline = VehicleKeyPipeline.for_scenario(scenario, seed=seed)
    else:
        pipeline = VehicleKeyPipeline(config, seed=seed)

    root = Path(cache_dir) if cache_dir is not None else pipeline_cache_root()
    entry = None
    if root is not None:
        fingerprint = pipeline_fingerprint(
            scenario, seed, scale, pipeline.config, cache_key_extra
        )
        entry = root / fingerprint
        if _load_cached_pipeline(pipeline, entry):
            _PIPELINE_CACHE[key] = pipeline
            return pipeline

    pipeline.train(
        n_episodes=scale.train_episodes,
        epochs=scale.train_epochs,
        reconciler_epochs=scale.reconciler_epochs,
        checkpoint_dir=checkpoint_dir,
        resume=checkpoint_dir is not None,
    )
    if entry is not None:
        _store_cached_pipeline(pipeline, entry, entry.name)
    _PIPELINE_CACHE[key] = pipeline
    return pipeline


def clear_pipeline_cache() -> None:
    """Drop all cached pipelines (frees memory between experiment sets)."""
    _PIPELINE_CACHE.clear()
