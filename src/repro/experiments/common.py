"""Shared experiment infrastructure: results, scales, pipeline cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.channel.scenario import ScenarioName
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.utils.validation import require


@dataclass
class ExperimentResult:
    """One table/figure's regenerated data.

    Attributes:
        experiment_id: Paper reference, e.g. ``"fig12"`` or ``"table1"``.
        title: Human-readable description.
        columns: Column names, defining row ordering.
        rows: One dict per reported row/series point.
        notes: Substitutions, caveats, paper-vs-measured commentary.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        """Append one row; keys must cover the declared columns."""
        missing = [c for c in self.columns if c not in values]
        require(not missing, f"row is missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> List:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def to_table(self) -> str:
        """Render rows as an aligned text table (the paper-style output)."""
        def fmt(value):
            if isinstance(value, float):
                return f"{value:.4f}"
            return str(value)

        widths = {
            c: max(len(c), *(len(fmt(row[c])) for row in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [f"== {self.experiment_id}: {self.title} ==", header,
                 "  ".join("-" * widths[c] for c in self.columns)]
        for row in self.rows:
            lines.append("  ".join(fmt(row[c]).ljust(widths[c]) for c in self.columns))
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs.

    ``quick`` targets benchmark runtimes (tens of seconds per
    experiment); ``full`` approaches paper scale.
    """

    train_episodes: int
    train_epochs: int
    reconciler_epochs: int
    session_rounds: int
    n_sessions: int
    n_seeds: int


_QUICK = Scale(
    train_episodes=220,
    train_epochs=90,
    reconciler_epochs=30,
    session_rounds=256,
    n_sessions=3,
    n_seeds=2,
)
_FULL = Scale(
    train_episodes=400,
    train_epochs=200,
    reconciler_epochs=60,
    session_rounds=512,
    n_sessions=8,
    n_seeds=4,
)


def get_scale(quick: bool) -> Scale:
    """The sizing preset for quick or full runs."""
    return _QUICK if quick else _FULL


_PIPELINE_CACHE: Dict[Tuple, VehicleKeyPipeline] = {}


def get_trained_pipeline(
    scenario: ScenarioName,
    seed: int = 0,
    quick: bool = True,
    config: Optional[PipelineConfig] = None,
    cache_key_extra: str = "",
    checkpoint_dir: Optional[str] = None,
) -> VehicleKeyPipeline:
    """A trained pipeline for a scenario, cached across experiments.

    Training dominates every learned experiment's runtime; Fig. 10, 12,
    13, 15 and the tables can share one trained pipeline per scenario.

    ``checkpoint_dir`` enables crash-safe training for long full-scale
    runs: the model checkpoints every epoch and a rerun of the same
    experiment resumes from the last completed epoch instead of
    retraining from scratch.
    """
    key = (scenario, seed, quick, cache_key_extra)
    if key in _PIPELINE_CACHE:
        return _PIPELINE_CACHE[key]
    scale = get_scale(quick)
    if config is None:
        pipeline = VehicleKeyPipeline.for_scenario(scenario, seed=seed)
    else:
        pipeline = VehicleKeyPipeline(config, seed=seed)
    pipeline.train(
        n_episodes=scale.train_episodes,
        epochs=scale.train_epochs,
        reconciler_epochs=scale.reconciler_epochs,
        checkpoint_dir=checkpoint_dir,
        resume=checkpoint_dir is not None,
    )
    _PIPELINE_CACHE[key] = pipeline
    return pipeline


def clear_pipeline_cache() -> None:
    """Drop all cached pipelines (frees memory between experiment sets)."""
    _PIPELINE_CACHE.clear()
