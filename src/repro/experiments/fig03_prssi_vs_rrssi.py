"""Fig. 3: pRSSI vs (a)rRSSI correlation in the four scenarios.

Paper claims: pRSSI correlation is low (below ~0.5 except the rural-LOS
V2V case) while the register-RSSI-derived arRSSI feature correlates far
better in every scenario.
"""

from __future__ import annotations

import numpy as np

from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ALL_SCENARIOS, scenario_config
from repro.experiments.common import ExperimentResult, get_scale
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.metrics.correlation import (
    detrend_window_from_distance,
    detrended_correlation,
)
from repro.probing.features import FeatureConfig, arrssi_sequences
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory

DETREND_SPAN_M = 250.0


def _one_scenario(name, seed: int, n_rounds: int):
    seeds = SeedSequenceFactory(seed)
    config = scenario_config(name)
    alice, bob = config.build_trajectories(seeds)
    channel = config.build_channel(seeds, RelativeMotion(alice, bob))
    protocol = ProbingProtocol(
        channel, LoRaPHYConfig(), DRAGINO_LORA_SHIELD, DRAGINO_LORA_SHIELD
    )
    trace = protocol.run(n_rounds, seeds).valid_only()
    speed = (config.alice_speed_kmh + config.bob_speed_kmh) / 3.6
    period = protocol.round_period_s()
    window_p = detrend_window_from_distance(DETREND_SPAN_M, speed, period)
    prssi = detrended_correlation(trace.alice_prssi, trace.bob_prssi, window_p)
    feature = FeatureConfig(window_fraction=0.10, values_per_packet=1)
    bob_ar, alice_ar = arrssi_sequences(trace, feature)
    arrssi = detrended_correlation(bob_ar, alice_ar, window_p)
    return prssi, arrssi


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 3's per-scenario correlation comparison."""
    scale = get_scale(quick)
    n_rounds = 48 if quick else 96
    result = ExperimentResult(
        experiment_id="fig03",
        title="pRSSI vs arRSSI correlation per scenario",
        columns=["scenario", "prssi_correlation", "arrssi_correlation"],
        notes="paper shape: arRSSI > pRSSI in every scenario",
    )
    for name in ALL_SCENARIOS:
        values = [
            _one_scenario(name, s, n_rounds)
            for s in range(seed, seed + scale.n_seeds)
        ]
        result.add_row(
            scenario=name.value,
            prssi_correlation=float(np.mean([v[0] for v in values])),
            arrssi_correlation=float(np.mean([v[1] for v in values])),
        )
    return result
