"""Experiment modules: one per table/figure of the paper's evaluation.

Every module exposes ``run(quick=True, seed=0) -> ExperimentResult``; the
``quick`` flag trades training scale and repetition count for runtime and
is what the benchmark harness uses.  ``repro.experiments.runner`` runs
everything and prints the paper-style tables.
"""

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    get_trained_pipeline,
    clear_pipeline_cache,
)

__all__ = [
    "ExperimentResult",
    "Scale",
    "get_scale",
    "get_trained_pipeline",
    "clear_pipeline_cache",
]
