"""Fig. 2: feasibility study -- reciprocity vs data rate and vs speed.

Paper claims: pRSSI correlation *rises* with data rate (falling below 0.6
under ~300 bps at 50 km/h) and *falls* with vehicle speed (below 0.6
beyond ~30 km/h at 183 bps).  Both effects follow from the probe time
offset growing relative to the channel coherence.

Correlations are measured on the chip's packet-RSSI series with the
large-scale trend removed over a fixed travelled distance
(:func:`~repro.metrics.correlation.detrend_window_from_distance`).
"""

from __future__ import annotations

import numpy as np

from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ScenarioName, scenario_config
from repro.experiments.common import ExperimentResult
from repro.lora.airtime import LoRaPHYConfig, standard_data_rate_sweep
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.metrics.correlation import (
    detrend_window_from_distance,
    detrended_correlation,
)
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory

DETREND_SPAN_M = 250.0
SPEEDS_KMH = (10, 20, 30, 40, 50, 60, 70, 80)


def _prssi_correlation(phy: LoRaPHYConfig, speed_kmh: float, seed: int, n_rounds: int) -> float:
    seeds = SeedSequenceFactory(seed)
    config = scenario_config(ScenarioName.V2I_RURAL).with_speeds(speed_kmh)
    alice, bob = config.build_trajectories(seeds)
    channel = config.build_channel(seeds, RelativeMotion(alice, bob))
    protocol = ProbingProtocol(
        channel, phy, DRAGINO_LORA_SHIELD, DRAGINO_LORA_SHIELD
    )
    trace = protocol.run(n_rounds, seeds).valid_only()
    window = detrend_window_from_distance(
        DETREND_SPAN_M, speed_kmh / 3.6, protocol.round_period_s()
    )
    return detrended_correlation(trace.alice_prssi, trace.bob_prssi, window)


def _rounds_for_distance(speed_kmh: float, period_s: float, distance_m: float) -> int:
    """Rounds needed to cover a fixed route distance at a given speed.

    Low speeds need more rounds so every sweep point sees the same number
    of shadowing decorrelation lengths (otherwise slow points are just
    noisier, not less reciprocal).
    """
    rounds = int(round(distance_m / max(speed_kmh / 3.6 * period_s, 1e-9)))
    return int(np.clip(rounds, 48, 260))


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate both panels of Fig. 2."""
    distance_m = 1500.0 if quick else 3000.0
    # Probing here is cheap (no training), so average more realizations
    # than the learned experiments do.
    n_seeds = 8 if quick else 16
    seeds = range(seed, seed + n_seeds)
    result = ExperimentResult(
        experiment_id="fig02",
        title="pRSSI correlation vs data rate (a) and vehicle speed (b)",
        columns=["panel", "x", "correlation"],
        notes=(
            "paper shape: (a) rises with data rate, (b) falls with speed; "
            "absolute thresholds shift with the simulated environment"
        ),
    )
    for phy in standard_data_rate_sweep():
        period = 2 * phy.airtime_s + 0.02
        n_rounds = _rounds_for_distance(50.0, period, distance_m)
        corr = float(
            np.mean([_prssi_correlation(phy, 50.0, s, n_rounds) for s in seeds])
        )
        result.add_row(panel="a:data-rate", x=round(phy.bit_rate_bps), correlation=corr)
    default_period = 2 * LoRaPHYConfig().airtime_s + 0.02
    for speed in SPEEDS_KMH:
        n_rounds = _rounds_for_distance(float(speed), default_period, distance_m)
        corr = float(
            np.mean(
                [
                    _prssi_correlation(LoRaPHYConfig(), float(speed), s, n_rounds)
                    for s in seeds
                ]
            )
        )
        result.add_row(panel="b:speed", x=speed, correlation=corr)
    return result
