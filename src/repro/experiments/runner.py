"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments.runner            # quick mode
    python -m repro.experiments.runner --full     # paper-scale
    python -m repro.experiments.runner fig10 fig12-13
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    duty_cycle,
    fig02_feasibility,
    fig03_prssi_vs_rrssi,
    fig04_register_trace,
    fig09_arrssi_window,
    fig10_prediction,
    fig11_reconciliation,
    fig12_13_comparison,
    fig14_generalization,
    fig15_security,
    fig16_eve_trace,
    robustness_sweep,
    table1_robustness,
    table2_nist,
    table3_power,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig02": fig02_feasibility.run,
    "fig03": fig03_prssi_vs_rrssi.run,
    "fig04": fig04_register_trace.run,
    "fig09": fig09_arrssi_window.run,
    "fig10": fig10_prediction.run,
    "fig11": fig11_reconciliation.run,
    "fig12-13": fig12_13_comparison.run,
    "fig14": fig14_generalization.run,
    "fig15": fig15_security.run,
    "fig16": fig16_eve_trace.run,
    "table1": table1_robustness.run,
    "table2": table2_nist.run,
    "table3": table3_power.run,
    "ablations": ablations.run,
    "duty-cycle": duty_cycle.run,
    "robustness": robustness_sweep.run,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="subset of experiment ids")
    parser.add_argument("--full", action="store_true", help="paper-scale runs")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")

    for name in selected:
        start = time.time()
        result = EXPERIMENTS[name](quick=not args.full, seed=args.seed)
        elapsed = time.time() - start
        print(result.to_table())
        print(f"({name} regenerated in {elapsed:.1f} s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
