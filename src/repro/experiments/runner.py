"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments.runner              # quick mode, serial
    python -m repro.experiments.runner --full       # paper-scale
    python -m repro.experiments.runner fig10 fig12-13
    python -m repro.experiments.runner --jobs 4     # process-pool fan-out

With ``--jobs N`` the selected experiments fan out over a process pool.
Each experiment runs with exactly the same ``(quick, seed)`` arguments as
the serial path and results are printed in selection order regardless of
completion order, so the output -- and every ``ExperimentResult``
payload -- is identical to a serial run.  Pair it with ``--cache-dir``
so workers share trained pipelines through the on-disk cache instead of
each retraining per scenario.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Tuple

from repro.experiments import (
    ablations,
    active_adversary,
    duty_cycle,
    fig02_feasibility,
    fig03_prssi_vs_rrssi,
    fig04_register_trace,
    fig09_arrssi_window,
    fig10_prediction,
    fig11_reconciliation,
    fig12_13_comparison,
    fig14_generalization,
    fig15_security,
    fig16_eve_trace,
    payload_attacks,
    robustness_sweep,
    table1_robustness,
    table2_nist,
    table3_power,
)
from repro.experiments.common import PIPELINE_CACHE_ENV, ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig02": fig02_feasibility.run,
    "fig03": fig03_prssi_vs_rrssi.run,
    "fig04": fig04_register_trace.run,
    "fig09": fig09_arrssi_window.run,
    "fig10": fig10_prediction.run,
    "fig11": fig11_reconciliation.run,
    "fig12-13": fig12_13_comparison.run,
    "fig14": fig14_generalization.run,
    "fig15": fig15_security.run,
    "fig16": fig16_eve_trace.run,
    "table1": table1_robustness.run,
    "table2": table2_nist.run,
    "table3": table3_power.run,
    "ablations": ablations.run,
    "duty-cycle": duty_cycle.run,
    "robustness": robustness_sweep.run,
    "active-adversary": active_adversary.run,
    "payload-attacks": payload_attacks.run,
}


def _run_experiment(
    name: str, quick: bool, seed: int
) -> Tuple[str, ExperimentResult, float]:
    """Run one experiment and time it.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it; workers
    resolve ``name`` against :data:`EXPERIMENTS` on their side, which also
    lets tests substitute the registry (inherited via fork).
    """
    start = time.time()
    result = EXPERIMENTS[name](quick=quick, seed=seed)
    return name, result, time.time() - start


def run_selected(selected, quick: bool, seed: int, jobs: int = 1):
    """Run experiments serially or fanned out over a process pool.

    Yields ``(name, result, elapsed)`` in *selection* order either way:
    with ``jobs > 1`` all experiments are submitted up front and results
    are collected in the deterministic input order, not completion order.
    Each worker receives the same per-experiment ``(quick, seed)``
    arguments the serial path uses, so payloads are identical.
    """
    if jobs <= 1 or len(selected) <= 1:
        for name in selected:
            yield _run_experiment(name, quick, seed)
        return
    # fork (where available) keeps the in-memory pipeline cache and any
    # REPRO_PIPELINE_CACHE setting visible to the workers.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(selected)), mp_context=context
    ) as pool:
        futures = {
            name: pool.submit(_run_experiment, name, quick, seed)
            for name in selected
        }
        for name in selected:
            yield futures[name].result()


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="subset of experiment ids")
    parser.add_argument("--full", action="store_true", help="paper-scale runs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes; >1 fans experiments out over a process pool",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="on-disk trained-pipeline cache shared by workers and reruns "
             f"(also settable via ${PIPELINE_CACHE_ENV})",
    )
    args = parser.parse_args(argv)

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")
    if args.cache_dir:
        # Exported (not passed per-call) so it reaches pool workers and
        # any pipeline-training code path uniformly.
        os.environ[PIPELINE_CACHE_ENV] = args.cache_dir

    for name, result, elapsed in run_selected(
        selected, quick=not args.full, seed=args.seed, jobs=args.jobs
    ):
        print(result.to_table())
        print(f"({name} regenerated in {elapsed:.1f} s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
