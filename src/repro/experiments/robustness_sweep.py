"""Robustness sweep: key rates and disagreement under injected loss.

Not a paper figure -- the paper's evaluation assumes every probe and
syndrome arrives -- but the field-study literature (Zhang et al.'s LoRa
key-generation measurements) reports packet loss and misaligned probe
rounds as the dominant practical failure mode.  This sweep injects
Bernoulli and Gilbert-Elliott burst loss at 0-40% into the probing link
(plus proportional syndrome drops) and reports, per operating point:

- key generation rate (retries and dropped rounds pay real airtime),
- key disagreement rate of the received blocks,
- session success rate and ARQ retry/drop accounting.

A failed session must fail *structurally* (``success=False`` with a
machine-readable reason) -- a row where Alice and Bob silently hold
different keys would be a bug, and the benchmark guard asserts it never
happens.
"""

from __future__ import annotations

import numpy as np

from repro.channel.scenario import ScenarioName
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy

#: Packet-loss operating points (stationary loss probability per direction).
LOSS_RATES = (0.0, 0.1, 0.2, 0.3, 0.4)

#: Mean loss-burst lengths in packets (1 = memoryless Bernoulli).
MEAN_BURSTS = (1.0, 4.0)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """KGR / KDR / success-rate curves versus injected packet loss."""
    scale = get_scale(quick)
    pipeline = get_trained_pipeline(ScenarioName.V2V_URBAN, seed=seed, quick=quick)
    loss_rates = LOSS_RATES if not quick else (0.0, 0.2, 0.4)
    n_sessions = max(2, scale.n_sessions - 1) if quick else scale.n_sessions
    result = ExperimentResult(
        experiment_id="robustness",
        title="key generation under injected packet loss (ARQ enabled)",
        columns=[
            "loss_rate",
            "mean_burst",
            "success_rate",
            "kgr_bps",
            "kdr",
            "mean_retries_per_round",
            "dropped_fraction",
        ],
        notes=(
            "loss applied per direction; syndromes dropped at half the "
            "link rate; failures surface as structured outcomes, never "
            "as mismatched keys"
        ),
    )
    policy = RetryPolicy()
    for mean_burst in MEAN_BURSTS:
        for rate in loss_rates:
            # rate == 0 is the true control row: a null plan, taking the
            # exact fault-free code path (bit-identical to the seed).
            plan = (
                FaultPlan.none()
                if rate == 0.0
                else FaultPlan.lossy(
                    rate, mean_burst=mean_burst, message_drop_rate=rate / 2.0
                )
            )
            successes = 0
            kgrs, kdrs, retries, drops = [], [], [], []
            for index in range(n_sessions):
                outcome = pipeline.establish_key(
                    episode=f"rob-{mean_burst}-{rate}-{index}",
                    n_rounds=scale.session_rounds,
                    fault_plan=plan,
                    retry_policy=policy,
                    max_attempts=2,
                )
                successes += outcome.success
                kgrs.append(outcome.key_generation_rate_bps)
                if outcome.session.reconciled_agreement.n_pairs:
                    kdrs.append(1.0 - outcome.agreement_rate)
                n_rounds = scale.session_rounds * outcome.attempts
                retries.append(outcome.total_retries / n_rounds)
                drops.append(outcome.dropped_rounds / n_rounds)
            result.add_row(
                loss_rate=rate,
                mean_burst=mean_burst,
                success_rate=successes / n_sessions,
                kgr_bps=float(np.mean(kgrs)),
                kdr=float(np.mean(kdrs)) if kdrs else float("nan"),
                mean_retries_per_round=float(np.mean(retries)),
                dropped_fraction=float(np.mean(drops)),
            )
    return result
