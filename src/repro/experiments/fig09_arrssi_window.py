"""Fig. 9: arRSSI correlation vs adjacent-window percentage.

Paper claims: the correlation between the two sides' arRSSI values first
rises with the window percentage (noise averaging) and then falls
(samples beyond the coherence time creep in), peaking around 10%.
"""

from __future__ import annotations

import numpy as np

from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ScenarioName, scenario_config
from repro.experiments.common import ExperimentResult, get_scale
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.metrics.correlation import (
    detrend_window_from_distance,
    detrended_correlation,
)
from repro.probing.features import FeatureConfig, arrssi_sequences
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory

FRACTIONS = (0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.80)
DETREND_SPAN_M = 250.0


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the window-percentage sweep."""
    scale = get_scale(quick)
    n_rounds = 48 if quick else 96
    result = ExperimentResult(
        experiment_id="fig09",
        title="arRSSI correlation vs adjacent-window percentage",
        columns=["window_percent", "correlation"],
        notes="paper shape: rise then fall, peak near 10%",
    )
    correlations = {}
    for fraction in FRACTIONS:
        values = []
        for s in range(seed, seed + scale.n_seeds):
            seeds = SeedSequenceFactory(s)
            config = scenario_config(ScenarioName.V2I_URBAN)
            alice, bob = config.build_trajectories(seeds)
            channel = config.build_channel(seeds, RelativeMotion(alice, bob))
            protocol = ProbingProtocol(
                channel, LoRaPHYConfig(), DRAGINO_LORA_SHIELD, DRAGINO_LORA_SHIELD
            )
            trace = protocol.run(n_rounds, seeds).valid_only()
            feature = FeatureConfig(window_fraction=fraction, values_per_packet=1)
            bob_ar, alice_ar = arrssi_sequences(trace, feature)
            window = detrend_window_from_distance(
                DETREND_SPAN_M,
                config.alice_speed_kmh / 3.6,
                protocol.round_period_s(),
            )
            values.append(detrended_correlation(bob_ar, alice_ar, window))
        correlations[fraction] = float(np.mean(values))
        result.add_row(
            window_percent=int(round(100 * fraction)),
            correlation=correlations[fraction],
        )
    best = max(correlations, key=correlations.get)
    result.notes += f"; measured peak at {int(round(100 * best))}%"
    return result
