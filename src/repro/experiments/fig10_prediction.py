"""Fig. 10: key agreement rate with and without the prediction module.

Paper claims: the BiLSTM prediction module raises pre-reconciliation KAR
in every scenario (+5.48/+11.71/+5.42/+10.34 pp) and reduces its
standard deviation.

"Without prediction" means Alice quantizes her *own* arRSSI windows with
the same guard-banded multi-bit quantizer Bob uses; "with prediction"
uses the trained model's quantization head plus its confidence mask --
the pipeline's actual extraction path.
"""

from __future__ import annotations

import numpy as np

from repro.channel.scenario import ALL_SCENARIOS
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline
from repro.probing.dataset import build_dataset
from repro.probing.features import arrssi_sequences
from repro.quantization.base import consensus_mask


def _without_prediction(session, dataset):
    """Two-sided guard-banded quantization of raw windows, per window."""
    quantizer = session.bob_quantizer
    rates = []
    for index in range(len(dataset)):
        result_a = quantizer.quantize(dataset.alice_raw[index])
        result_b = quantizer.quantize(dataset.bob_raw[index])
        keep = consensus_mask(result_a.kept, result_b.kept)
        if not keep.any():
            continue
        bits_a = quantizer.quantize_with_mask(dataset.alice_raw[index], keep)
        bits_b = quantizer.quantize_with_mask(dataset.bob_raw[index], keep)
        rates.append(float(np.mean(bits_a == bits_b)))
    return rates


def _with_prediction(session, dataset):
    """The pipeline's model-based extraction, per window."""
    detail = session.extract_detail(dataset)
    # Per-window rates for a comparable std: recompute window by window.
    model = session.model
    bits_per_sample = model.bob_quantizer.bits_per_sample
    probs = model.predict_bit_probabilities(dataset.alice)
    bits = (probs > 0.5).astype(np.uint8)
    rates = []
    for index, keep in enumerate(detail.masks):
        if not keep.any():
            continue
        alice_bits = bits[index].reshape(-1, bits_per_sample)[keep].reshape(-1)
        bob_bits = session.bob_quantizer.quantize_with_mask(
            dataset.bob_raw[index], keep
        )
        rates.append(float(np.mean(alice_bits == bob_bits)))
    return rates


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the with/without-prediction comparison."""
    scale = get_scale(quick)
    result = ExperimentResult(
        experiment_id="fig10",
        title="KAR with vs without the prediction module",
        columns=[
            "scenario",
            "kar_without",
            "kar_with",
            "gain_pp",
            "std_without",
            "std_with",
        ],
        notes="paper shape: positive gain and smaller std in every scenario",
    )
    for name in ALL_SCENARIOS:
        pipeline = get_trained_pipeline(name, seed=seed, quick=quick)
        session = pipeline.build_session()
        without, with_pred = [], []
        for index in range(scale.n_sessions):
            trace = pipeline.collect_trace(
                f"fig10-{index}", n_rounds=scale.session_rounds
            )
            bob_seq, alice_seq = arrssi_sequences(trace, pipeline.config.feature_config)
            dataset = build_dataset(alice_seq, bob_seq, seq_len=pipeline.config.seq_len)
            without.extend(_without_prediction(session, dataset))
            with_pred.extend(_with_prediction(session, dataset))
        result.add_row(
            scenario=name.value,
            kar_without=float(np.mean(without)),
            kar_with=float(np.mean(with_pred)),
            gain_pp=float(100 * (np.mean(with_pred) - np.mean(without))),
            std_without=float(np.std(without)),
            std_with=float(np.std(with_pred)),
        )
    return result
