"""Fig. 4: packet RSSI vs register RSSI within one probing round.

The paper's qualitative figure shows (1) register RSSI varying
substantially *within* a packet -- so the packet average misrepresents
the channel -- and (2) the end of the first reception lining up with the
beginning of the second.  We report the quantitative counterparts: the
within-packet register spread, and the adjacency correlation of boundary
windows versus far (packet-edge-opposite) windows.
"""

from __future__ import annotations

import numpy as np

from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ScenarioName, scenario_config
from repro.experiments.common import ExperimentResult, get_scale
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.metrics.correlation import pearson_correlation
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 4 observation as statistics over many rounds."""
    scale = get_scale(quick)
    n_rounds = 64 if quick else 160
    seeds = SeedSequenceFactory(seed)
    config = scenario_config(ScenarioName.V2V_URBAN)
    alice, bob = config.build_trajectories(seeds)
    channel = config.build_channel(seeds, RelativeMotion(alice, bob))
    protocol = ProbingProtocol(
        channel, LoRaPHYConfig(), DRAGINO_LORA_SHIELD, DRAGINO_LORA_SHIELD
    )
    trace = protocol.run(n_rounds, seeds).valid_only()

    width = max(2, trace.samples_per_packet // 10)
    # Detrend across rounds so the statistics reflect per-round structure.
    bob_end = trace.bob_rssi[:, -width:].mean(axis=1)
    alice_begin = trace.alice_rssi[:, :width].mean(axis=1)
    bob_begin = trace.bob_rssi[:, :width].mean(axis=1)
    alice_end = trace.alice_rssi[:, -width:].mean(axis=1)

    within_packet_spread = float(np.mean(trace.bob_rssi.std(axis=1)))
    adjacent = pearson_correlation(np.diff(bob_end), np.diff(alice_begin))
    far = pearson_correlation(np.diff(bob_begin), np.diff(alice_end))

    result = ExperimentResult(
        experiment_id="fig04",
        title="register-RSSI structure within a probing round",
        columns=["statistic", "value"],
        notes=(
            "paper shape: register RSSI varies within the packet and only "
            "the adjacent (end-of-first/start-of-second) windows track each "
            "other"
        ),
    )
    result.add_row(statistic="within-packet register spread (dB)", value=within_packet_spread)
    result.add_row(statistic="adjacent-window correlation", value=float(adjacent))
    result.add_row(statistic="far-window correlation", value=float(far))
    result.add_row(
        statistic="adjacency advantage", value=float(adjacent - far)
    )
    return result
