"""Table III / Fig. 17: computation time and energy per phase.

Paper claims (on a Raspberry Pi 4): Alice completes a 128-bit key in
~3.4 ms, Bob in ~0.4 ms; prediction+quantization dominates, while
reconciliation is two orders of magnitude cheaper; Bob's phases cost a
fraction of Alice's.  Absolute times depend on the host -- the structure
is what we reproduce, and the energy column applies the documented RPi4
power model to the measured times.
"""

from __future__ import annotations

from repro.channel.scenario import ScenarioName
from repro.core.power import measure_power_profile, totals
from repro.experiments.common import ExperimentResult, get_trained_pipeline


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the per-phase cost table."""
    pipeline = get_trained_pipeline(ScenarioName.V2V_URBAN, seed=seed, quick=quick)
    repeats = 10 if quick else 50
    profile = measure_power_profile(
        pipeline.model, pipeline.reconciler, repeats=repeats
    )
    result = ExperimentResult(
        experiment_id="table3",
        title="computation time and modeled RPi4 energy per phase",
        columns=["phase", "party", "time_ms", "energy_mj"],
        notes=(
            "paper shape: Alice >> Bob; prediction dominates "
            "reconciliation; absolute times are host-dependent"
        ),
    )
    for cost in profile.values():
        result.add_row(
            phase=cost.phase,
            party=cost.party,
            time_ms=cost.time_ms,
            energy_mj=cost.energy_mj,
        )
    for party, cost in totals(profile).items():
        result.add_row(
            phase="total", party=party, time_ms=cost.time_ms, energy_mj=cost.energy_mj
        )
    return result
