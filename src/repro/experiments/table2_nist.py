"""Table II: NIST SP 800-22 randomness tests on the generated keys.

Paper claims: all eight reported tests return p-values above the 1%
significance level.  The tested stream is the concatenation of final
(privacy-amplified) key material from many independent sessions: each
session's agreed bits are hashed down in 256-bit chunks to 128-bit keys,
the protocol's last stage.
"""

from __future__ import annotations

import numpy as np

from repro.channel.scenario import ScenarioName
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline
from repro.privacy.amplification import amplify
from repro.probing.dataset import build_dataset
from repro.probing.features import arrssi_sequences
from repro.security.nist import run_nist_suite


def generate_key_stream(
    pipeline, n_sessions: int, session_rounds: int
) -> np.ndarray:
    """Concatenated 128-bit final keys from many independent sessions."""
    session = pipeline.build_session()
    chunks = []
    for index in range(n_sessions):
        trace = pipeline.collect_trace(f"nist-{index}", n_rounds=session_rounds)
        bob_seq, alice_seq = arrssi_sequences(trace, pipeline.config.feature_config)
        if len(alice_seq) < pipeline.config.seq_len:
            continue
        dataset = build_dataset(alice_seq, bob_seq, seq_len=pipeline.config.seq_len)
        detail = session.extract_detail(dataset)
        bits = detail.bob_bits
        for start in range(0, bits.size - 255, 256):
            chunks.append(
                amplify(
                    bits[start:start + 256], 128, salt=f"table2-{index}".encode()
                )
            )
    return np.concatenate(chunks) if chunks else np.zeros(0, np.uint8)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the NIST table."""
    scale = get_scale(quick)
    pipeline = get_trained_pipeline(ScenarioName.V2V_URBAN, seed=seed, quick=quick)
    n_sessions = 8 if quick else 20
    stream = generate_key_stream(pipeline, n_sessions, scale.session_rounds)

    result = ExperimentResult(
        experiment_id="table2",
        title="NIST SP 800-22 p-values of the final key stream",
        columns=["test", "p_value", "passed"],
        notes=f"stream length {stream.size} bits; pass threshold p >= 0.01",
    )
    for name, p_value in run_nist_suite(stream).items():
        result.add_row(test=name, p_value=p_value, passed=bool(p_value >= 0.01))
    return result
