"""Fig. 12 & 13: comparison against LoRa-Key, Han et al. and Gao et al.

Paper claims: Vehicle-Key has the best key agreement rate in all four
scenarios (ordering Vehicle-Key > Gao > Han > LoRa-Key) and the best key
generation rate (9x over LoRa-Key and Han, 14x over Gao); rural key
rates trail urban ones, and V2V beats V2I.

All systems consume the *same* pooled probing traces per scenario.
"""

from __future__ import annotations

from repro.channel.scenario import ALL_SCENARIOS
from repro.core.baselines import (
    GaoSystem,
    HanSystem,
    LoRaKeySystem,
    VehicleKeySystem,
)
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline


_RESULT_CACHE = {}


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate both comparison figures (KAR rows and KGR rows).

    Fig. 12 and Fig. 13 come from the same runs, so the result is
    memoized per (quick, seed) within a process.
    """
    key = (quick, seed)
    if key in _RESULT_CACHE:
        return _RESULT_CACHE[key]
    scale = get_scale(quick)
    # Gao et al. compress ~20 probing rounds into one model value, so the
    # pooled traces must span thousands of rounds before it completes even
    # a couple of 64-bit blocks -- that slowness IS Fig. 13's message.
    n_traces = 8 if quick else 16
    result = ExperimentResult(
        experiment_id="fig12-13",
        title="system comparison: agreement rate and key generation rate",
        columns=["scenario", "system", "kar", "kar_std", "kgr_bps"],
        notes=(
            "paper shape: Vehicle-Key best KAR and KGR everywhere; KAR "
            "ordering VK > Gao > Han > LoRa-Key; Gao slowest by an order "
            "of magnitude"
        ),
    )
    for name in ALL_SCENARIOS:
        pipeline = get_trained_pipeline(name, seed=seed, quick=quick)
        systems = [
            VehicleKeySystem(pipeline),
            LoRaKeySystem(seed=seed),
            HanSystem(seed=seed),
            GaoSystem(seed=seed),
        ]
        traces = [
            pipeline.collect_trace(f"cmp-{index}", n_rounds=scale.session_rounds)
            for index in range(n_traces)
        ]
        for system in systems:
            run_result = system.run(traces)
            result.add_row(
                scenario=name.value,
                system=system.name,
                kar=run_result.reconciled_agreement.mean,
                kar_std=run_result.reconciled_agreement.std,
                kgr_bps=run_result.kgr_bps(pipeline.config.phy),
            )
    _RESULT_CACHE[key] = result
    return result
