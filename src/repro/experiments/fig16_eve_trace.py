"""Fig. 16: arRSSI traces of Alice, Bob and the imitating Eve.

The paper's qualitative figure shows Eve's trace sharing the legitimate
parties' large-scale pattern while differing in small-scale variation.
We report the quantitative counterparts: raw (large-scale-dominated)
correlation and detrended (small-scale) correlation for Bob-vs-Alice and
Eve-vs-Alice.
"""

from __future__ import annotations

from repro.channel.scenario import ScenarioName
from repro.experiments.common import ExperimentResult, get_scale
from repro.core.pipeline import VehicleKeyPipeline
from repro.metrics.correlation import detrended_correlation, pearson_correlation
from repro.probing.eve import EveConfig, build_imitating_eve
from repro.probing.features import FeatureConfig, arrssi_sequences, eve_arrssi_sequences

ENVIRONMENTS = (
    ("urban", ScenarioName.V2V_URBAN),
    ("rural", ScenarioName.V2V_RURAL),
)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 16 trace comparison as correlations."""
    scale = get_scale(quick)
    n_rounds = scale.session_rounds
    feature = FeatureConfig(window_fraction=0.10, values_per_packet=1)
    result = ExperimentResult(
        experiment_id="fig16",
        title="imitating Eve's arRSSI vs the legitimate parties'",
        columns=["environment", "pair", "raw_correlation", "smallscale_correlation"],
        notes=(
            "paper shape: Eve matches the large-scale pattern but not the "
            "small-scale variation"
        ),
    )
    for label, scenario in ENVIRONMENTS:
        pipeline = VehicleKeyPipeline.for_scenario(scenario, seed=seed)

        def build(cfg, seeds, channel, alice, bob):
            return build_imitating_eve(
                cfg, seeds, channel, alice, bob, EveConfig(label="imitator")
            )

        trace = pipeline.collect_trace(
            "fig16", n_rounds=n_rounds, eavesdropper_builders=[build]
        )
        bob_ar, alice_ar = arrssi_sequences(trace, feature)
        # Eve mirrors Alice's role: her sequence comes from recording Bob's
        # transmissions (the second element of the mirrored pair).
        _, eve_ar = eve_arrssi_sequences(trace, "imitator", feature)
        n = min(len(alice_ar), len(eve_ar))
        result.add_row(
            environment=label,
            pair="bob-vs-alice",
            raw_correlation=pearson_correlation(bob_ar[:n], alice_ar[:n]),
            smallscale_correlation=detrended_correlation(bob_ar[:n], alice_ar[:n], 12),
        )
        result.add_row(
            environment=label,
            pair="eve-vs-alice",
            raw_correlation=pearson_correlation(eve_ar[:n], alice_ar[:n]),
            smallscale_correlation=detrended_correlation(eve_ar[:n], alice_ar[:n], 12),
        )
    return result
