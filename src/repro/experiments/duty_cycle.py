"""Duty-cycle analysis: key rates under real regional regulations.

Not a paper figure -- the paper's key rates assume unrestricted probing --
but the quantitative form of its critique of interactive reconciliation:
under the 434 MHz band's 10% duty cycle (and the harsher EU868 1%),
every Cascade round trip costs an order of magnitude more wall-clock
time, while single-syndrome schemes (Vehicle-Key, LoRa-Key) only pay the
pacing on their probes.
"""

from __future__ import annotations

from repro.channel.scenario import ScenarioName
from repro.core.baselines import HanSystem, LoRaKeySystem, VehicleKeySystem
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline
from repro.lora.regional import ALL_PLANS, RegionalPlan, paced_duration_s
from repro.metrics.generation import key_generation_rate


def _paced_kgr(run_result, phy, plan: RegionalPlan) -> float:
    """KGR with both probing and reconciliation traffic legally paced."""
    round_airtime = phy.airtime_s
    n_probe_packets = 2 * int(round(run_result.probing_time_s / (2 * round_airtime)))
    probing = paced_duration_s(max(2, n_probe_packets), round_airtime, plan)
    per_message = max(
        1,
        min(
            255,
            -(-run_result.public_bytes // max(1, run_result.reconciliation_messages)),
        ),
    )
    message_airtime = phy.with_payload(per_message).airtime_s
    reconciliation = paced_duration_s(
        run_result.reconciliation_messages, message_airtime, plan
    )
    return key_generation_rate(run_result.agreed_bits, probing, reconciliation)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Key generation rate per system under each regional plan."""
    scale = get_scale(quick)
    pipeline = get_trained_pipeline(ScenarioName.V2V_URBAN, seed=seed, quick=quick)
    systems = [VehicleKeySystem(pipeline), LoRaKeySystem(seed=seed), HanSystem(seed=seed)]
    traces = [
        pipeline.collect_trace(f"duty-{index}", n_rounds=scale.session_rounds)
        for index in range(4 if quick else 8)
    ]
    result = ExperimentResult(
        experiment_id="duty-cycle",
        title="key generation rate under regional duty cycles",
        columns=["plan", "system", "kgr_bps"],
        notes=(
            "interactive reconciliation collapses under duty-cycle pacing; "
            "single-syndrome schemes only pay the probing slowdown"
        ),
    )
    runs = {system.name: system.run(traces) for system in systems}
    for plan in ALL_PLANS:
        for system in systems:
            result.add_row(
                plan=plan.name,
                system=system.name,
                kgr_bps=_paced_kgr(runs[system.name], pipeline.config.phy, plan),
            )
    return result
