"""Table I: key agreement rate across devices and speeds.

Paper claims: reconciled KAR stays in the 98-99.5% band across the three
transceivers, declining slightly (by well under a percentage point) as
speed grows from 30 to 90 km/h.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.pipeline import PipelineConfig
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline
from repro.lora.radio import ALL_DEVICES

SPEEDS_KMH = (30.0, 60.0, 90.0)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate the device x speed agreement table."""
    scale = get_scale(quick)
    result = ExperimentResult(
        experiment_id="table1",
        title="reconciled KAR by device and speed",
        columns=["device", "speed_kmh", "kar"],
        notes=(
            "paper shape: high agreement for all devices, mild decline "
            "with speed"
        ),
    )
    base_scenario = scenario_config(ScenarioName.V2I_RURAL)
    for device in ALL_DEVICES:
        config = PipelineConfig(
            scenario=base_scenario,
            alice_device=device,
            bob_device=device,
        )
        pipeline = get_trained_pipeline(
            ScenarioName.V2I_RURAL,
            seed=seed,
            quick=quick,
            config=config,
            cache_key_extra=f"device-{device.name}",
        )
        for speed in SPEEDS_KMH:
            # Same trained model, sessions probed at the sweep speed.
            pipeline.config = dataclasses.replace(
                pipeline.config, scenario=base_scenario.with_speeds(speed)
            )
            rates = []
            for index in range(scale.n_sessions):
                outcome = pipeline.establish_key(
                    episode=f"t1-{device.name}-{speed}-{index}",
                    n_rounds=scale.session_rounds,
                )
                if outcome.session.n_blocks:
                    rates.append(outcome.agreement_rate)
            pipeline.config = dataclasses.replace(
                pipeline.config, scenario=base_scenario
            )
            result.add_row(
                device=device.name,
                speed_kmh=int(speed),
                kar=float(np.mean(rates)) if rates else float("nan"),
            )
    return result
