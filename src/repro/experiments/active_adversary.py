"""Active-adversary sweep: detection rate and time-to-abort per attack.

Not a paper figure -- the paper's security evaluation (Sec. V-H) is
passive: an eavesdropper or imitator tries to *derive* the key from her
own channel observations.  This sweep evaluates the complementary
*active* threat model documented in ``docs/SECURITY.md``: an attacker in
transmission range who replays and injects probes, reactively jams,
and tampers with / replays / spoofs reconciliation messages.  Per attack
profile it reports:

- how often the attack is *detected* (the session observes at least one
  rejected replay, failed MAC, rejected message, or failed key
  confirmation),
- how often the session ends in a structured abort, and the mean
  time-to-abort when it does,
- how often a key is still established despite the attacker (for
  probe-layer attacks the ARQ layer can absorb the interference), and
- the invariant that makes the scheme safe: zero sessions where both
  parties hold *different* keys while reporting success.
"""

from __future__ import annotations

import numpy as np

from repro.channel.scenario import ScenarioName
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline
from repro.faults.adversary import AdversaryPlan
from repro.faults.retry import RetryPolicy

#: Named attack profiles swept by the experiment.  ``baseline`` is the
#: no-attacker control row (the exact fault-free code path).
PROFILES = (
    ("baseline", AdversaryPlan.none()),
    ("probe-replay", AdversaryPlan(probe_replay_rate=0.3)),
    (
        "probe-injection",
        AdversaryPlan(probe_injection_rate=0.3, injection_rssi_dbm=-55.0),
    ),
    ("reactive-jam", AdversaryPlan(jamming_rate=0.3, jamming_mean_burst=3.0)),
    ("syndrome-tamper", AdversaryPlan(syndrome_tamper_rate=1.0)),
    ("syndrome-replay", AdversaryPlan(syndrome_replay_rate=1.0)),
    ("syndrome-spoof", AdversaryPlan(syndrome_spoof_rate=1.0)),
    ("confirmation-tamper", AdversaryPlan(confirmation_tamper=True)),
    (
        "combined",
        AdversaryPlan(
            probe_replay_rate=0.15,
            jamming_rate=0.15,
            syndrome_tamper_rate=0.5,
            syndrome_replay_rate=0.25,
        ),
    ),
)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Detection / abort / time-to-abort table across attack profiles."""
    scale = get_scale(quick)
    pipeline = get_trained_pipeline(ScenarioName.V2V_URBAN, seed=seed, quick=quick)
    n_sessions = max(2, scale.n_sessions - 1) if quick else scale.n_sessions
    result = ExperimentResult(
        experiment_id="active-adversary",
        title="active-attack detection rate and time-to-abort per profile",
        columns=[
            "profile",
            "detection_rate",
            "abort_rate",
            "mean_time_to_abort_s",
            "success_rate",
            "mean_detections",
            "silent_mismatches",
        ],
        notes=(
            "detection = any rejected replay, failed MAC, rejected message "
            "or failed confirmation; probe-layer attacks may be absorbed by "
            "ARQ without aborting; silent_mismatches must be 0 everywhere"
        ),
    )
    policy = RetryPolicy()
    for name, plan in PROFILES:
        detected = 0
        aborted = 0
        successes = 0
        silent = 0
        detections = []
        abort_times = []
        for index in range(n_sessions):
            outcome = pipeline.establish_key(
                episode=f"adv-{name}-{index}",
                n_rounds=scale.session_rounds,
                fault_plan=None,
                retry_policy=policy if not plan.is_null else None,
                adversary_plan=plan,
                max_attempts=2,
            )
            detected += outcome.attack_detections > 0
            detections.append(outcome.attack_detections)
            if outcome.aborted:
                aborted += 1
                abort_times.append(outcome.time_to_abort_s)
            successes += outcome.success
            session = outcome.session
            if (
                outcome.success
                and session.final_key_alice != session.final_key_bob
            ):
                silent += 1
        result.add_row(
            profile=name,
            detection_rate=detected / n_sessions,
            abort_rate=aborted / n_sessions,
            mean_time_to_abort_s=(
                float(np.mean(abort_times)) if abort_times else float("nan")
            ),
            success_rate=successes / n_sessions,
            mean_detections=float(np.mean(detections)),
            silent_mismatches=silent,
        )
    return result
