"""Fig. 15: security analysis against both attackers.

Paper claims: the eavesdropper reaches only ~42-51% agreement and the
imitating attacker ~48-54%, versus ~99% for the legitimate parties, in
both urban and rural environments.
"""

from __future__ import annotations

from repro.channel.scenario import ScenarioName
from repro.experiments.common import ExperimentResult, get_scale, get_trained_pipeline
from repro.security.attacks import run_attack

ENVIRONMENTS = (
    ("urban", ScenarioName.V2V_URBAN),
    ("rural", ScenarioName.V2V_RURAL),
)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Regenerate both attack panels."""
    scale = get_scale(quick)
    n_traces = 1 if quick else 3
    result = ExperimentResult(
        experiment_id="fig15",
        title="attacker vs legitimate key agreement",
        columns=["environment", "attacker", "legitimate_kar", "eve_kar"],
        notes=(
            "paper shape: legitimate ~0.99, eavesdropper near chance, "
            "imitator well below the legitimate parties (our "
            "shadowing-richer simulator leaves the imitator more residual "
            "correlation than the paper's fading-richer channel)"
        ),
    )
    for label, scenario in ENVIRONMENTS:
        pipeline = get_trained_pipeline(scenario, seed=seed, quick=quick)
        for attacker in ("eavesdropper", "imitator"):
            report = run_attack(
                pipeline, attacker, n_traces=n_traces, n_rounds=scale.session_rounds
            )
            result.add_row(
                environment=label,
                attacker=attacker,
                legitimate_kar=report.legitimate_agreement,
                eve_kar=report.eve_agreement,
            )
    return result
