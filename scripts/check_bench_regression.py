#!/usr/bin/env python
"""Fail CI when a kernel-benchmark speedup regresses past tolerance.

Usage::

    python scripts/check_bench_regression.py \
        --current BENCH_kernels.json --baseline /tmp/baseline.json

Compares the *speedup ratios* (before/after against the frozen reference
kernels), not absolute seconds: ratios are what the fused kernels are
accountable for and they transfer across machines of different absolute
speed, so the committed ``BENCH_kernels.json`` works as the baseline on
any runner.  A current speedup more than ``--tolerance`` (default 25%)
below the baseline's fails the check, as does an entry that disappeared.
Entries without a speedup (absolute-cost trackers like the end-to-end
establish timing) are reported but never gate.

The gate's inputs are themselves gated: a missing or unreadable
``BENCH_*.json`` (a baseline that was deleted from the repo, a benchmark
run that silently produced nothing) is a hard failure with a clear
message, never a traceback and never a vacuous pass -- an empty entry
set would otherwise "pass" a run that benchmarked nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


class GateInputError(Exception):
    """A gate input file is missing, unreadable, or empty."""


def load_entries(path: Path, role: str) -> dict:
    """Load one BENCH_*.json's entries; any defect is a gate failure."""
    if not path.exists():
        raise GateInputError(
            f"{role} file {path} does not exist -- a committed benchmark "
            "baseline that disappears must fail the gate, not skip it"
        )
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise GateInputError(f"{role} file {path} is unreadable: {error}")
    entries = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(entries, dict):
        raise GateInputError(
            f"{role} file {path} has no 'entries' object (schema mismatch)"
        )
    if not entries:
        raise GateInputError(
            f"{role} file {path} contains zero entries -- an empty benchmark "
            "payload would pass the gate vacuously"
        )
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly generated BENCH_kernels.json")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup drop (default 0.25)")
    args = parser.parse_args(argv)

    try:
        current = load_entries(args.current, "current")
        baseline = load_entries(args.baseline, "baseline")
    except GateInputError as error:
        print(f"benchmark regression check FAILED: {error}", file=sys.stderr)
        return 1

    failures = []
    for name, base_entry in sorted(baseline.items()):
        base_speedup = base_entry.get("speedup")
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        cur_entry = current[name]
        cur_speedup = cur_entry.get("speedup")
        if base_speedup is None:
            print(f"  {name}: {cur_entry['after_s']}s (absolute tracker, not gated)")
            continue
        if cur_speedup is None:
            failures.append(f"{name}: baseline has speedup {base_speedup}, "
                            "current has none")
            continue
        floor = base_speedup * (1.0 - args.tolerance)
        status = "OK" if cur_speedup >= floor else "REGRESSED"
        print(f"  {name}: {cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
              f"(floor {floor:.2f}x) {status}")
        if cur_speedup < floor:
            failures.append(
                f"{name}: speedup {cur_speedup:.2f}x fell below "
                f"{floor:.2f}x ({base_speedup:.2f}x - {args.tolerance:.0%})"
            )

    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed "
          f"({len(baseline)} entries, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
