#!/usr/bin/env python
"""Fail CI when a kernel-benchmark speedup regresses past tolerance.

Usage::

    python scripts/check_bench_regression.py \
        --current BENCH_kernels.json --baseline /tmp/baseline.json

Compares the *speedup ratios* (before/after against the frozen reference
kernels), not absolute seconds: ratios are what the fused kernels are
accountable for and they transfer across machines of different absolute
speed, so the committed ``BENCH_kernels.json`` works as the baseline on
any runner.  A current speedup more than ``--tolerance`` (default 25%)
below the baseline's fails the check, as does an entry that disappeared.
Entries without a speedup (absolute-cost trackers like the end-to-end
establish timing) are reported but never gate.

Gated entries that record a per-phase breakdown (a ``phases`` object of
seconds) are additionally gated phase by phase on *normalized* cost:
``phase_s / before_s`` is machine-independent for the same reason the
speedup ratio is, so a phase whose normalized share grows more than
``--tolerance`` over the baseline's fails the check even when the
headline speedup still clears its floor (a probe win can otherwise mask
an orchestration regression of the same magnitude).  Phases below
``--phase-floor`` of the baseline's ``before_s`` are timer noise and are
not gated; a gated phase that disappears from the current breakdown
fails, as does losing the breakdown entirely.

The gate's inputs are themselves gated: a missing or unreadable
``BENCH_*.json`` (a baseline that was deleted from the repo, a benchmark
run that silently produced nothing) is a hard failure with a clear
message, never a traceback and never a vacuous pass -- an empty entry
set would otherwise "pass" a run that benchmarked nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


class GateInputError(Exception):
    """A gate input file is missing, unreadable, or empty."""


def load_entries(path: Path, role: str) -> dict:
    """Load one BENCH_*.json's entries; any defect is a gate failure."""
    if not path.exists():
        raise GateInputError(
            f"{role} file {path} does not exist -- a committed benchmark "
            "baseline that disappears must fail the gate, not skip it"
        )
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise GateInputError(f"{role} file {path} is unreadable: {error}")
    entries = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(entries, dict):
        raise GateInputError(
            f"{role} file {path} has no 'entries' object (schema mismatch)"
        )
    if not entries:
        raise GateInputError(
            f"{role} file {path} contains zero entries -- an empty benchmark "
            "payload would pass the gate vacuously"
        )
    return entries


def phase_failures(
    name: str,
    base_entry: dict,
    cur_entry: dict,
    tolerance: float,
    phase_floor: float,
) -> list:
    """Per-phase normalized-cost regressions for one gated entry.

    Only entries whose baseline records a ``phases`` breakdown alongside
    a gated speedup reach here.  Each baseline phase above the noise
    floor is compared on ``phase_s / before_s`` -- the fraction of the
    frozen reference the phase costs, which transfers across machines of
    different absolute speed.
    """
    base_phases = base_entry.get("phases")
    base_before = base_entry.get("before_s")
    if not isinstance(base_phases, dict) or not base_phases or not base_before:
        return []
    cur_phases = cur_entry.get("phases")
    cur_before = cur_entry.get("before_s")
    if not isinstance(cur_phases, dict) or not cur_before:
        return [f"{name}: baseline gates phases {sorted(base_phases)} but the "
                "current entry records no phase breakdown"]
    failures = []
    for phase, base_s in sorted(base_phases.items()):
        base_norm = base_s / base_before
        if base_norm < phase_floor:
            continue  # timer noise; the headline speedup still gates it
        if phase not in cur_phases:
            failures.append(f"{name}: gated phase '{phase}' missing from "
                            "current results")
            continue
        cur_norm = cur_phases[phase] / cur_before
        ceiling = base_norm * (1.0 + tolerance)
        status = "OK" if cur_norm <= ceiling else "REGRESSED"
        print(f"    {name}/{phase}: {cur_norm:.4f} of before vs baseline "
              f"{base_norm:.4f} (ceiling {ceiling:.4f}) {status}")
        if cur_norm > ceiling:
            failures.append(
                f"{name}: phase '{phase}' costs {cur_norm:.4f} of before_s, "
                f"above {ceiling:.4f} ({base_norm:.4f} + {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly generated BENCH_kernels.json")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup drop (default 0.25)")
    parser.add_argument("--phase-floor", type=float, default=0.01,
                        help="skip phases below this fraction of the "
                        "baseline before_s (default 0.01)")
    args = parser.parse_args(argv)

    try:
        current = load_entries(args.current, "current")
        baseline = load_entries(args.baseline, "baseline")
    except GateInputError as error:
        print(f"benchmark regression check FAILED: {error}", file=sys.stderr)
        return 1

    failures = []
    for name, base_entry in sorted(baseline.items()):
        base_speedup = base_entry.get("speedup")
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        cur_entry = current[name]
        cur_speedup = cur_entry.get("speedup")
        if base_speedup is None:
            print(f"  {name}: {cur_entry['after_s']}s (absolute tracker, not gated)")
            continue
        if cur_speedup is None:
            failures.append(f"{name}: baseline has speedup {base_speedup}, "
                            "current has none")
            continue
        floor = base_speedup * (1.0 - args.tolerance)
        status = "OK" if cur_speedup >= floor else "REGRESSED"
        print(f"  {name}: {cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
              f"(floor {floor:.2f}x) {status}")
        if cur_speedup < floor:
            failures.append(
                f"{name}: speedup {cur_speedup:.2f}x fell below "
                f"{floor:.2f}x ({base_speedup:.2f}x - {args.tolerance:.0%})"
            )
        failures.extend(phase_failures(
            name, base_entry, cur_entry, args.tolerance, args.phase_floor
        ))

    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed "
          f"({len(baseline)} entries, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
