"""Chaos-harness benchmarks: cost and verdict of the invariant sweep.

Trains the chaos-sized pipeline once, runs a fixed-seed randomized
fault/attack sweep, asserts that every safety invariant held (zero
violations -- the same verdict the ``repro chaos`` CI smoke job
enforces at larger scale), and persists the timings to
``BENCH_chaos.json`` at the repo root.

Both entries are absolute-cost trackers (``speedup: null``):
``scripts/check_bench_regression.py`` reports them and fails CI if
either entry disappears, but does not gate on the absolute seconds,
which do not transfer across runners.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.faults import chaos

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: Sessions in the timed sweep -- large enough to mix null, faulted,
#: attacked and duty-cycled combinations, small enough for ~1 min.
N_SESSIONS = 40
SWEEP_SEED = 0

#: Collected by the tests below, written once at module teardown.
_ENTRIES = {}


def _record(name, before_s, after_s, **extra):
    _ENTRIES[name] = {
        "before_s": round(before_s, 6) if before_s is not None else None,
        "after_s": round(after_s, 6),
        "speedup": round(before_s / after_s, 3) if before_s is not None else None,
        **extra,
    }
    return _ENTRIES[name]


@pytest.fixture(scope="module", autouse=True)
def write_results():
    """Persist everything the module measured to ``BENCH_chaos.json``."""
    yield
    if not _ENTRIES:
        return
    payload = {
        "benchmark": "chaos-invariant-harness",
        "units": "seconds, single run (absolute-cost trackers)",
        "before": None,
        "after": "build_chaos_pipeline + run_chaos randomized sweep",
        "numpy": np.__version__,
        "entries": dict(sorted(_ENTRIES.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[benchmarks] wrote {RESULTS_PATH} with {len(_ENTRIES)} entries")


@pytest.fixture(scope="module")
def chaos_pipeline():
    """The chaos-sized trained pipeline, timing its own construction."""
    start = time.perf_counter()
    pipeline = chaos.build_chaos_pipeline()
    elapsed = time.perf_counter() - start
    _record("chaos_pipeline_train", None, elapsed)
    return pipeline


def test_chaos_sweep_holds_invariants(chaos_pipeline):
    """The benchmark sweep itself must come back clean."""
    start = time.perf_counter()
    report = chaos.run_chaos(chaos_pipeline, N_SESSIONS, seed=SWEEP_SEED)
    elapsed = time.perf_counter() - start

    assert report.ok, [violation.detail for violation in report.violations]
    assert report.n_sessions == N_SESSIONS
    # The sweep must exercise the machinery it claims to: some sessions
    # attacked, some faulted, and a mix of successes and structured ends.
    assert report.attacked_sessions > 0
    assert report.faulted_sessions > 0
    assert report.successes > 0
    assert report.aborts > 0

    _record(
        f"chaos_sweep@{N_SESSIONS}_sessions",
        None,
        elapsed,
        sessions_per_sec=round(N_SESSIONS / elapsed, 3),
        seed=SWEEP_SEED,
        successes=report.successes,
        aborts=report.aborts,
        attacked_sessions=report.attacked_sessions,
        faulted_sessions=report.faulted_sessions,
        violations=len(report.violations),
    )
