"""Fig. 12 benchmark: key agreement rate comparison against baselines."""

import numpy as np

from repro.experiments import fig12_13_comparison


def test_bench_fig12(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig12_13_comparison.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    by_scenario = {}
    for row in result.rows:
        by_scenario.setdefault(row["scenario"], {})[row["system"]] = row
    assert len(by_scenario) == 4
    vk_values, gao_values = [], []
    for scenario, systems in by_scenario.items():
        vk = systems["Vehicle-Key"]["kar"]
        vk_values.append(vk)
        gao_values.append(systems["Gao et al."]["kar"])
        assert vk > 0.9
        # Paper shape: Vehicle-Key clearly beats the pRSSI systems in
        # every scenario.
        assert vk > systems["LoRa-Key"]["kar"]
        assert vk > systems["Han et al."]["kar"] - 0.01
    # Gao et al. is the closest competitor (paper: 15.10 pp behind); at
    # quick scale its handful of smoothed blocks can tie Vehicle-Key, so
    # compare means with a small tolerance rather than per-scenario wins.
    assert np.mean(vk_values) >= np.mean(gao_values) - 0.02
