"""Fig. 2 benchmark: feasibility (correlation vs data rate and speed)."""

import numpy as np

from repro.experiments import fig02_feasibility


def test_bench_fig02(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig02_feasibility.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    rate_rows = [r for r in result.rows if r["panel"] == "a:data-rate"]
    speed_rows = [r for r in result.rows if r["panel"] == "b:speed"]

    # Shape (a): the slowest data rates correlate materially worse than the
    # fastest ones (paper: monotone rise).
    slow = np.mean([r["correlation"] for r in rate_rows[:3]])
    fast = np.mean([r["correlation"] for r in rate_rows[-3:]])
    assert fast > slow + 0.15

    # Shape (b): low speeds correlate better than high speeds.
    low = np.mean([r["correlation"] for r in speed_rows[:3]])
    high = np.mean([r["correlation"] for r in speed_rows[-3:]])
    assert low > high
