"""Secure-channel microbenchmarks: record throughput and key agility.

No pipeline training here -- the channel layer is pure stdlib crypto
over already-derived keys, so this module is cheap enough for every CI
run.  It measures the costs a deployment plans around: KDF derivations
per channel open, sealed+opened records per second at small and large
payloads, the tamper-rejection path (which burns MAC verification but
must never decrypt), and epoch rollover.  Timings land in
``BENCH_secure.json`` at the repo root.

All entries are absolute-cost trackers (``speedup: null``):
``scripts/check_bench_regression.py`` reports them and fails CI if any
entry disappears, but does not gate on the absolute seconds, which do
not transfer across runners.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.secure import (
    ChannelContext,
    SecureLink,
    derive_channel_keys,
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_secure.json"

MASTER = b"\x5a" * 32
NONCE = b"\x11" * 16

#: Collected by the tests below, written once at module teardown.
_ENTRIES = {}


def _record(name, elapsed_s, **extra):
    _ENTRIES[name] = {
        "before_s": None,
        "after_s": round(elapsed_s, 6),
        "speedup": None,
        **extra,
    }
    return _ENTRIES[name]


@pytest.fixture(scope="module", autouse=True)
def write_results():
    """Persist everything the module measured to ``BENCH_secure.json``."""
    yield
    if not _ENTRIES:
        return
    payload = {
        "benchmark": "secure-channel-records",
        "units": "seconds, single run (absolute-cost trackers)",
        "before": None,
        "after": "HMAC-SHA256 keystream + truncated-HMAC AEAD records",
        "numpy": np.__version__,
        "entries": dict(sorted(_ENTRIES.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[benchmarks] wrote {RESULTS_PATH} with {len(_ENTRIES)} entries")


def _context(epoch: int = 0) -> ChannelContext:
    return ChannelContext(
        session_nonce=NONCE, pipeline_fingerprint="bench", epoch=epoch
    )


def test_kdf_derivation_cost():
    """Four-key channel derivation: the per-open (and per-rekey) KDF bill."""
    n = 200
    start = time.perf_counter()
    for epoch in range(n):
        keys = derive_channel_keys(MASTER, _context(epoch))
    elapsed = time.perf_counter() - start
    assert keys.epoch == n - 1
    _record(
        f"kdf_derive@{n}_epochs",
        elapsed,
        derives_per_sec=round(n / elapsed, 1),
    )


@pytest.mark.parametrize("payload_bytes", [64, 1024])
def test_seal_open_throughput(payload_bytes):
    """Honest-path records per second at protocol-typical payload sizes."""
    link = SecureLink(derive_channel_keys(MASTER, _context()))
    plaintext = bytes(payload_bytes)
    n = 2000
    start = time.perf_counter()
    for _ in range(n):
        outcome = link.responder.open(link.initiator.seal(plaintext))
    elapsed = time.perf_counter() - start
    assert outcome.ok and outcome.plaintext == plaintext
    assert link.responder.opened == n
    _record(
        f"seal_open@{payload_bytes}B",
        elapsed,
        records_per_sec=round(n / elapsed, 1),
    )


def test_tamper_rejection_cost():
    """The attacked path: MAC-reject throughput with zero decryptions."""
    link = SecureLink(derive_channel_keys(MASTER, _context()))
    tampered = bytearray(link.initiator.seal(b"victim record " * 4))
    tampered[-1] ^= 0x01
    blob = bytes(tampered)
    n = 2000
    start = time.perf_counter()
    for _ in range(n):
        outcome = link.responder.open(blob)
    elapsed = time.perf_counter() - start
    assert not outcome.ok and outcome.plaintext is None
    assert link.responder.open_failures["auth-failed"] == n
    _record(
        f"tamper_reject@{n}_records",
        elapsed,
        rejects_per_sec=round(n / elapsed, 1),
    )


def test_rollover_latency():
    """Epoch rollover (derive next epoch + install on both endpoints)."""
    link = SecureLink(derive_channel_keys(MASTER, _context()))
    n = 100
    start = time.perf_counter()
    for epoch in range(1, n + 1):
        link.rollover(derive_channel_keys(MASTER, _context(epoch)), grace_opens=4)
    elapsed = time.perf_counter() - start
    assert link.epoch == n
    # The rolled channel still carries traffic.
    assert link.responder.open(link.initiator.seal(b"post-roll")).ok
    _record(
        f"rollover@{n}_epochs",
        elapsed,
        rollovers_per_sec=round(n / elapsed, 1),
    )
