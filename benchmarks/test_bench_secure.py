"""Secure-channel microbenchmarks: record throughput and key agility.

No pipeline training here -- the channel layer is pure stdlib crypto
over already-derived keys, so this module is cheap enough for every CI
run.  It measures the costs a deployment plans around: KDF derivations
per channel open, sealed+opened records per second at small and large
payloads, the tamper-rejection path (which burns MAC verification but
must never decrypt), and epoch rollover.  Timings land in
``BENCH_secure.json`` at the repo root.

The ``seal_open`` and ``tamper_reject`` entries carry honest
before/after speedups: the "before" loop replays the pre-optimization
data plane (the frozen :mod:`repro.secure.reference` crypto inside the
same per-record channel flow -- parse, verify, replay window, decrypt,
outcome) in the *same run*, so the ratio cancels machine noise.
``scripts/check_bench_regression.py`` gates those speedups at its
tolerance; the remaining entries stay absolute-cost trackers
(``speedup: null``) whose absolute seconds do not transfer across
runners.  Loops use best-of-reps to shave scheduler noise.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.secure import (
    ChannelContext,
    SecureLink,
    derive_channel_keys,
)
from repro.secure import reference
from repro.secure.channel import OpenOutcome, ReplayWindow
from repro.secure.records import parse_record

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_secure.json"

MASTER = b"\x5a" * 32
NONCE = b"\x11" * 16

#: Records per batched call on the optimized path (the server's drain cap).
BATCH = 64

#: Collected by the tests below, written once at module teardown.
_ENTRIES = {}


def _record(name, elapsed_s, before_s=None, **extra):
    speedup = None if before_s is None else round(before_s / elapsed_s, 2)
    _ENTRIES[name] = {
        "before_s": None if before_s is None else round(before_s, 6),
        "after_s": round(elapsed_s, 6),
        "speedup": speedup,
        **extra,
    }
    return _ENTRIES[name]


@pytest.fixture(scope="module", autouse=True)
def write_results():
    """Persist everything the module measured to ``BENCH_secure.json``."""
    yield
    if not _ENTRIES:
        return
    payload = {
        "benchmark": "secure-channel-records",
        "units": "seconds per normalized loop, best of reps",
        "before": "per-record hmac.new keystream + per-byte XOR (reference)",
        "after": "midstate-copy keystream, word XOR, batched seal/open + memo",
        "numpy": np.__version__,
        "entries": dict(sorted(_ENTRIES.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[benchmarks] wrote {RESULTS_PATH} with {len(_ENTRIES)} entries")


def _context(epoch: int = 0) -> ChannelContext:
    return ChannelContext(
        session_nonce=NONCE, pipeline_fingerprint="bench", epoch=epoch
    )


def _best_of(reps, run):
    """Best wall-clock of ``reps`` runs of ``run()`` (fresh state each)."""
    best = float("inf")
    for _ in range(reps):
        best = min(best, run())
    return best


def _reference_pair_loop(keys, plaintext, n):
    """One rep of the pre-optimization data plane, per-record.

    Replays what ``SecureChannel`` did before the rewrite, with the
    frozen reference crypto: seal+encode on one side; parse, direction
    check, MAC verify, replay window, decrypt, window mark and outcome
    construction on the other.  Returns elapsed seconds.
    """
    send = keys.send_keys("initiator")
    recv = keys.recv_keys("responder")
    window = ReplayWindow()
    start = time.perf_counter()
    for sequence in range(n):
        wire = reference.seal_record(send, 0, 0, sequence, plaintext).encode()
        record = parse_record(wire)
        assert record.direction == 0
        assert reference.verify_record(recv, record)
        assert not window.seen(record.sequence)
        plain = reference.decrypt_record(recv, record)
        window.mark(record.sequence)
        outcome = OpenOutcome(ok=True, plaintext=plain, record=record)
    elapsed = time.perf_counter() - start
    assert outcome.ok and outcome.plaintext == plaintext
    return elapsed


def _batched_pair_loop(keys, plaintext, n, share_records=True):
    """One rep of the optimized data plane: batched seal+open on a link."""
    link = SecureLink(keys, share_records=share_records)
    payloads = [plaintext] * BATCH
    start = time.perf_counter()
    for _ in range(n // BATCH):
        outcomes = link.responder.open_records(
            link.initiator.seal_records(payloads)
        )
    elapsed = time.perf_counter() - start
    assert all(o.ok for o in outcomes)
    assert link.responder.opened == (n // BATCH) * BATCH
    return elapsed


def test_kdf_derivation_cost():
    """Four-key channel derivation: the per-open (and per-rekey) KDF bill."""
    n = 200
    start = time.perf_counter()
    for epoch in range(n):
        keys = derive_channel_keys(MASTER, _context(epoch))
    elapsed = time.perf_counter() - start
    assert keys.epoch == n - 1
    _record(
        f"kdf_derive@{n}_epochs",
        elapsed,
        derives_per_sec=round(n / elapsed, 1),
    )


@pytest.mark.parametrize(
    "payload_bytes, n_after, n_before, floor",
    [(64, 4096, 1024, 2.0), (1024, 2048, 512, 3.0)],
)
def test_seal_open_throughput(payload_bytes, n_after, n_before, floor):
    """Data-plane records per second, honest before/after in one run.

    ``floor`` is a deliberately loose in-test sanity bound; the honest
    measured speedup is committed to ``BENCH_secure.json`` where CI
    gates it at the regression checker's tolerance.
    """
    keys = derive_channel_keys(MASTER, _context())
    plaintext = bytes(payload_bytes)
    after = _best_of(3, lambda: _batched_pair_loop(keys, plaintext, n_after))
    before = _best_of(
        3, lambda: _reference_pair_loop(keys, plaintext, n_before)
    )
    # The before loop is shorter (it is ~8x slower per record); scale
    # it to the after loop's record count so the entry compares equal
    # work and the speedup is a pure per-record ratio.
    after_s = after
    before_s = before * (n_after / n_before)
    entry = _record(
        f"seal_open@{payload_bytes}B",
        after_s,
        before_s=before_s,
        records_per_sec=round(n_after / after_s, 1),
        batch=BATCH,
    )
    assert entry["speedup"] >= floor


def test_seal_open_no_memo_tracker():
    """The memo-less batched path (cross-process topology), for honesty.

    Absolute tracker: quantifies how much of the shared-link speedup is
    the :class:`~repro.secure.channel.RecordMemo` simulation affordance
    versus the keystream/MAC/batching work that transfers to real
    deployments.
    """
    keys = derive_channel_keys(MASTER, _context())
    plaintext = bytes(1024)
    n = 1024
    elapsed = _best_of(
        3, lambda: _batched_pair_loop(keys, plaintext, n, share_records=False)
    )
    _record(
        "seal_open_nomemo@1024B",
        elapsed,
        records_per_sec=round(n / elapsed, 1),
        batch=BATCH,
    )


def test_tamper_rejection_cost():
    """The attacked path: MAC-reject throughput with zero decryptions."""
    keys = derive_channel_keys(MASTER, _context())
    n = 2000

    link = SecureLink(keys)
    tampered = bytearray(link.initiator.seal(b"victim record " * 4))
    tampered[-1] ^= 0x01
    blob = bytes(tampered)

    def run_after():
        fresh = SecureLink(keys)
        wire = bytearray(fresh.initiator.seal(b"victim record " * 4))
        wire[-1] ^= 0x01
        attacked = bytes(wire)
        start = time.perf_counter()
        for _ in range(n):
            outcome = fresh.responder.open(attacked)
        elapsed = time.perf_counter() - start
        assert not outcome.ok and outcome.plaintext is None
        assert fresh.responder.open_failures["auth-failed"] == n
        return elapsed

    def run_before():
        recv = keys.recv_keys("responder")
        record = parse_record(blob)
        start = time.perf_counter()
        for _ in range(n):
            rejected = not reference.verify_record(recv, parse_record(blob))
        elapsed = time.perf_counter() - start
        assert rejected
        return elapsed

    after_s = _best_of(3, run_after)
    before_s = _best_of(3, run_before)
    entry = _record(
        f"tamper_reject@{n}_records",
        after_s,
        before_s=before_s,
        rejects_per_sec=round(n / after_s, 1),
    )
    assert entry["speedup"] >= 1.5


def test_rollover_latency():
    """Epoch rollover (derive next epoch + install on both endpoints)."""
    link = SecureLink(derive_channel_keys(MASTER, _context()))
    n = 100
    start = time.perf_counter()
    for epoch in range(1, n + 1):
        link.rollover(derive_channel_keys(MASTER, _context(epoch)), grace_opens=4)
    elapsed = time.perf_counter() - start
    assert link.epoch == n
    # The rolled channel still carries traffic.
    assert link.responder.open(link.initiator.seal(b"post-roll")).ok
    _record(
        f"rollover@{n}_epochs",
        elapsed,
        rollovers_per_sec=round(n / elapsed, 1),
    )
