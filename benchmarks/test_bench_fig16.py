"""Fig. 16 benchmark: the imitating Eve's arRSSI trace structure."""

from repro.experiments import fig16_eve_trace


def test_bench_fig16(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig16_eve_trace.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    by_key = {(row["environment"], row["pair"]): row for row in result.rows}
    for environment in ("urban", "rural"):
        legit = by_key[(environment, "bob-vs-alice")]
        eve = by_key[(environment, "eve-vs-alice")]
        # Paper shape: Eve shares the overall (raw) pattern but her
        # small-scale variation tracks the legitimate channel far worse.
        assert eve["raw_correlation"] > 0.2
        assert legit["smallscale_correlation"] > eve["smallscale_correlation"] + 0.15
