"""Kernel microbenchmarks: the perf trajectory behind the fused kernels.

Times the vectorized recurrent kernels (``after``) against the frozen
pre-refactor implementations in :mod:`repro.nn.layers.reference`
(``before``) at layer level (forward train/infer, backward), training
level (full ``fit()`` epochs), and protocol level (an end-to-end key
establishment session), and persists the numbers to
``BENCH_kernels.json`` at the repo root.

The committed copy of that file is the perf baseline: CI regenerates it
and ``scripts/check_bench_regression.py`` fails the build if any
measured speedup falls more than 25% below the committed one.  Speedup
*ratios* are compared rather than absolute seconds, so the gate holds
across machines of different absolute speed.

Timing discipline: every before/after pair is measured interleaved with
min-of-N (the machine's timing noise far exceeds the quantity being
estimated; the minimum is the least-contended sample of the same code).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.nn.layers.bilstm import BiLSTM
from repro.nn.layers.dense import Dense
from repro.nn.layers.lstm import LSTM
from repro.nn.layers.reference import ReferenceBiLSTM, ReferenceLSTM
from repro.nn.model import Model
from repro.probing.features import FeatureConfig

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Collected by the tests below, written once at module teardown.
_ENTRIES = {}


def _min_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _compare(before_fn, after_fn, reps=5, warmup=1):
    """Interleaved min-of-N for a before/after pair."""
    for _ in range(warmup):
        before_fn()
        after_fn()
    before = after = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        before_fn()
        before = min(before, time.perf_counter() - start)
        start = time.perf_counter()
        after_fn()
        after = min(after, time.perf_counter() - start)
    return before, after


def _record(name, before_s, after_s):
    _ENTRIES[name] = {
        "before_s": round(before_s, 6) if before_s is not None else None,
        "after_s": round(after_s, 6),
        "speedup": round(before_s / after_s, 3) if before_s is not None else None,
    }
    return _ENTRIES[name]


def _paired_layers(cls_new, cls_ref, units, seed=0, **kwargs):
    """New and reference layers with identical weights."""
    new = cls_new(units, seed=seed, **kwargs)
    ref = cls_ref(units, seed=seed, **kwargs)
    return new, ref


def _built(layer, x):
    layer.forward(x[:2], training=True)
    return layer


def _sync(new, ref, x):
    _built(new, x)
    _built(ref, x)
    ref.set_weights(new.get_weights())


@pytest.fixture(scope="module", autouse=True)
def write_results():
    """Persist everything the module measured to ``BENCH_kernels.json``."""
    yield
    if not _ENTRIES:
        return
    payload = {
        "benchmark": "recurrent-kernels",
        "units": "seconds, min over interleaved repetitions",
        "before": "frozen pre-refactor kernels (repro.nn.layers.reference)",
        "after": "fused vectorized kernels (repro.nn.layers.lstm/bilstm)",
        "numpy": np.__version__,
        "entries": dict(sorted(_ENTRIES.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[benchmarks] wrote {RESULTS_PATH} with {len(_ENTRIES)} entries")


class TestLayerKernels:
    """Layer-level forward/backward timings."""

    BATCH, STEPS, FEATURES, HIDDEN = 64, 32, 12, 64

    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(self.BATCH, self.STEPS, self.FEATURES))
        grad = rng.normal(size=(self.BATCH, self.STEPS, self.HIDDEN))
        return x, grad

    def test_lstm_forward_train(self, data):
        x, _ = data
        new, ref = _paired_layers(LSTM, ReferenceLSTM, self.HIDDEN)
        _sync(new, ref, x)
        before, after = _compare(
            lambda: ref.forward(x, training=True),
            lambda: new.forward(x, training=True),
            reps=9,
        )
        entry = _record("lstm_forward_train@b64_t32_f12_h64", before, after)
        assert entry["speedup"] > 1.0

    def test_lstm_forward_infer(self, data):
        x, _ = data
        new, ref = _paired_layers(LSTM, ReferenceLSTM, self.HIDDEN)
        _sync(new, ref, x)
        # The reference has no inference fast path; training forward is
        # exactly what it runs at predict() time.
        before, after = _compare(
            lambda: ref.forward(x, training=False),
            lambda: new.forward(x, training=False),
            reps=9,
        )
        entry = _record("lstm_forward_infer@b64_t32_f12_h64", before, after)
        assert entry["speedup"] > 1.0

    def test_lstm_backward(self, data):
        x, grad = data
        new, ref = _paired_layers(LSTM, ReferenceLSTM, self.HIDDEN)
        _sync(new, ref, x)
        # Neither backward mutates its forward cache, so one training
        # forward supports repeated backward timings.
        ref.forward(x, training=True)
        new.forward(x, training=True)
        before, after = _compare(
            lambda: ref.backward(grad),
            lambda: new.backward(grad),
            reps=9,
        )
        # Backward is near parity: the reference backward was already
        # transcendental-free and GEMM-bound, so fusing buys little here
        # (the epoch-level win comes from forward + the fused epilogue).
        entry = _record("lstm_backward@b64_t32_f12_h64", before, after)
        assert entry["speedup"] > 0.6

        # What training actually runs: the first layer skips the model-
        # input gradient (Model.backward(need_input_grad=False)); the
        # reference has no such path, so its full backward is the
        # honest "before".
        _, skip_after = _compare(
            lambda: ref.backward(grad),
            lambda: new.backward(grad, compute_input_grad=False),
            reps=9,
        )
        entry = _record(
            "lstm_backward_train_path@b64_t32_f12_h64", before, skip_after
        )
        assert entry["speedup"] > 0.8

    def test_bilstm_forward_train(self, data):
        x, _ = data
        new, ref = _paired_layers(BiLSTM, ReferenceBiLSTM, self.HIDDEN)
        _sync(new, ref, x)
        before, after = _compare(
            lambda: ref.forward(x, training=True),
            lambda: new.forward(x, training=True),
            reps=9,
        )
        entry = _record("bilstm_forward_train@b64_t32_f12_h64", before, after)
        assert entry["speedup"] > 1.0


class TestTrainingAndInference:
    """Full ``fit()`` epochs and batched ``predict()``."""

    @staticmethod
    def _models(hidden, features, seed=0):
        new = Model([BiLSTM(hidden, seed=seed), Dense(1, seed=1)])
        ref = Model([ReferenceBiLSTM(hidden, seed=seed), Dense(1, seed=1)])
        return new, ref

    @staticmethod
    def _fit_pair(n, steps, batch_size, hidden, features, reps=6):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, steps, features))
        y = rng.normal(size=(n, steps, 1))
        new, ref = TestTrainingAndInference._models(hidden, features)
        new.forward(x[:2], training=True)
        ref.forward(x[:2], training=True)
        ref.set_weights(new.get_weights())
        before, after = _compare(
            lambda: ref.fit(x, y, epochs=1, batch_size=batch_size, shuffle_seed=0),
            lambda: new.fit(x, y, epochs=1, batch_size=batch_size, shuffle_seed=0),
            reps=reps,
        )
        return x, new, ref, before, after

    def test_fit_epoch_microbenchmark(self):
        # Long sequences, modest width: the shape where per-step dispatch
        # overhead -- what the fused kernels remove -- dominates the
        # irreducible GEMM + transcendental floor both implementations
        # share (see docs/PERFORMANCE.md).
        *_, before, after = self._fit_pair(
            n=256, steps=128, batch_size=32, hidden=32, features=8
        )
        entry = _record("fit_epoch@bilstm_n256_t128_b32_h32", before, after)
        assert entry["speedup"] > 1.0

    def test_fit_epoch_pipeline_shape(self):
        # The shape the Vehicle-Key predictor actually trains at (quick
        # scale).  The shared GEMM/transcendental floor caps the
        # achievable ratio here (~1.9x); recorded honestly.
        x, new, ref, before, after = self._fit_pair(
            n=512, steps=32, batch_size=64, hidden=64, features=12
        )
        entry = _record("fit_epoch@bilstm_n512_t32_b64_h64_pipeline", before, after)
        assert entry["speedup"] > 1.0

        # Batched predict on the same pipeline-shaped models: the
        # inference fast path (no backward cache, gate-major buffers).
        p_before, p_after = _compare(
            lambda: ref.predict(x, batch_size=256),
            lambda: new.predict(x, batch_size=256),
            reps=6,
        )
        p_entry = _record("predict@bilstm_n512_t32_b64_h64", p_before, p_after)
        assert p_entry["speedup"] > 1.0


class TestEndToEnd:
    """Protocol-level timing: a full key-establishment session."""

    def test_establish_session(self):
        config = PipelineConfig(
            scenario=scenario_config(ScenarioName.V2I_URBAN),
            feature_config=FeatureConfig(window_fraction=0.10, values_per_packet=2),
            seq_len=16,
            hidden_units=16,
            key_bits=32,
            code_dim=24,
            decoder_units=64,
            rounds_per_episode=48,
            session_rounds=256,
            final_key_bits=64,
            alice_confidence_margin=0.12,
            bob_guard_fraction=0.30,
        )
        pipeline = VehicleKeyPipeline(config, seed=11)
        pipeline.train(n_episodes=60, epochs=20, reconciler_epochs=8)
        pipeline.establish_key(episode="bench-warmup", n_rounds=128)
        # "before" forces the frozen per-round probing loop; "after" is
        # the default vectorized fault-free path.  Both produce
        # bit-identical keys, so this times exactly the probing hot path
        # inside a real establishment -- and gives the entry the speedup
        # column the regression gate needs (it tracked absolute cost
        # only, ungated, before the fast path existed).
        before, after = _compare(
            lambda: pipeline.establish_key(
                episode="bench", n_rounds=256, probing_fast_path=False
            ),
            lambda: pipeline.establish_key(episode="bench", n_rounds=256),
            reps=3,
            warmup=0,
        )
        entry = _record("establish_session@tiny_r256", before, after)
        assert entry["speedup"] > 1.0
