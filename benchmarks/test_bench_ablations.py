"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from repro.experiments import ablations


def test_bench_ablation_theta(benchmark, record):
    result = benchmark.pedantic(
        lambda: ablations.run_theta(quick=True), rounds=1, iterations=1
    )
    record(result)
    by_theta = {row["theta"]: row["kar"] for row in result.rows}
    # Removing the BCE term (theta = 1) collapses the quantization head.
    assert by_theta[1.0] < 0.65
    # The paper's theta = 0.9 materially beats the untrained head.
    assert by_theta[0.9] > by_theta[1.0] + 0.15


def test_bench_ablation_bloom(benchmark, record):
    result = benchmark.pedantic(
        lambda: ablations.run_bloom(quick=True), rounds=1, iterations=1
    )
    record(result)
    rows = {row["variant"]: row for row in result.rows}
    # Position preservation: correction quality unchanged (within noise).
    assert (
        abs(
            rows["with-bloom"]["reconciled_agreement"]
            - rows["no-bloom"]["reconciled_agreement"]
        )
        < 0.05
    )


def test_bench_ablation_architecture(benchmark, record):
    result = benchmark.pedantic(
        lambda: ablations.run_architecture(quick=True), rounds=1, iterations=1
    )
    record(result)
    rows = {row["cell"]: row for row in result.rows}
    # The bidirectional encoder has the most parameters and should not be
    # worse than the unidirectional arms (the paper's choice).
    assert rows["bilstm"]["parameters"] > rows["lstm"]["parameters"]
    assert rows["gru"]["parameters"] < rows["lstm"]["parameters"]
    assert rows["bilstm"]["kar"] >= max(rows["lstm"]["kar"], rows["gru"]["kar"]) - 0.03


def test_bench_ablation_quantizer(benchmark, record):
    result = benchmark.pedantic(
        lambda: ablations.run_quantizer(quick=True), rounds=1, iterations=1
    )
    record(result)
    rows = {row["quantizer"]: row for row in result.rows}
    # Multi-bit doubles the extracted bits per window...
    assert rows["multi-bit-2"]["bits_per_window"] == 2 * rows["mean-threshold"]["bits_per_window"]
    # ...at a bounded agreement cost.
    assert rows["multi-bit-2"]["kar"] > rows["mean-threshold"]["kar"] - 0.15
