"""Fig. 14 benchmark: cross-scenario transfer learning."""

import numpy as np

from repro.experiments import fig14_generalization


def test_bench_fig14(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig14_generalization.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    by_target = {}
    for row in result.rows:
        by_target.setdefault(row["target"], {})[row["arm"]] = row["agreement"]
    assert len(by_target) == 3
    margins = []
    for target, arms in by_target.items():
        # Paper shape: transfer with 10% of the data and a small epoch
        # budget is competitive with from-scratch training on full data
        # at the same budget.
        margins.append(arms["transfer-10%"] - arms["scratch"])
        assert arms["transfer-100%"] > 0.6
    assert np.mean(margins) > -0.05
