"""Table II benchmark: NIST randomness of the final keys."""

from repro.experiments import table2_nist


def test_bench_table2(benchmark, record):
    result = benchmark.pedantic(
        lambda: table2_nist.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 8
    # Paper shape: every reported test clears the 1% significance level.
    failed = [row["test"] for row in result.rows if not row["passed"]]
    assert not failed, f"NIST failures: {failed}"
