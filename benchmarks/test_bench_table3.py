"""Table III / Fig. 17 benchmark: computation time and energy profile."""

from repro.experiments import table3_power


def test_bench_table3(benchmark, record):
    result = benchmark.pedantic(
        lambda: table3_power.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    rows = {(row["phase"], row["party"]): row for row in result.rows}
    # Paper shape: Alice's total dominates Bob's; prediction dominates
    # reconciliation on Alice's side; energy follows the power model.
    assert rows[("total", "alice")]["time_ms"] > rows[("total", "bob")]["time_ms"]
    assert (
        rows[("prediction-quantization", "alice")]["time_ms"]
        > rows[("reconciliation", "alice")]["time_ms"]
    )
    for row in result.rows:
        assert row["energy_mj"] > 0
