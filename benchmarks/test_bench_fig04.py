"""Fig. 4 benchmark: register-RSSI structure within one probing round."""

from repro.experiments import fig04_register_trace


def test_bench_fig04(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig04_register_trace.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    values = {row["statistic"]: row["value"] for row in result.rows}
    # The packet average hides real within-packet variation...
    assert values["within-packet register spread (dB)"] > 1.0
    # ...and only the adjacent boundary windows track each other.
    assert values["adjacent-window correlation"] > 0.5
    assert values["adjacent-window correlation"] > values["far-window correlation"] + 0.3
