"""Fig. 9 benchmark: arRSSI window-percentage sweep."""

from repro.experiments import fig09_arrssi_window


def test_bench_fig09(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig09_arrssi_window.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    by_percent = {row["window_percent"]: row["correlation"] for row in result.rows}
    best = max(by_percent, key=by_percent.get)
    # Paper shape: rise-then-fall with an interior peak near 10%.
    assert 5 <= best <= 20
    assert by_percent[best] > by_percent[2]
    assert by_percent[best] > by_percent[80]
