"""Session-server benchmarks: throughput and chaos-sweep cost.

Stands up the real asyncio key-establishment server on a loopback port
and measures what an operator would: sessions per second through the
full framed-transport -> batch-tick -> result path for a burst of honest
concurrent devices, and the wall cost of the mixed (hostile + honest)
chaos sweep.  Numbers persist to ``BENCH_server.json`` at the repo root.

Both entries are absolute-cost trackers (``speedup: null``):
``scripts/check_bench_regression.py`` reports them and fails CI if
either entry disappears (or the payload comes back empty), but does not
gate on the absolute seconds, which do not transfer across runners.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.faults.chaos import run_server_chaos
from repro.probing.features import FeatureConfig
from repro.server import (
    DeviceClient,
    Endpoint,
    KeyEstablishmentServer,
    ModelRegistry,
    ServerConfig,
    run_behavior,
)
from repro.server.client import channel_from_frame
from repro.server.journal import SessionJournal

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: Honest concurrent devices in the throughput burst.
CLIENTS = 32
#: Mixed-behavior clients in the timed chaos sweep.
CHAOS_CLIENTS = 48
#: Probing rounds per served session.
ROUNDS = 48
SEED = 0

#: Collected by the tests below, written once at module teardown.
_ENTRIES = {}


def _record(name, before_s, after_s, **extra):
    _ENTRIES[name] = {
        "before_s": round(before_s, 6) if before_s is not None else None,
        "after_s": round(after_s, 6),
        "speedup": round(before_s / after_s, 3) if before_s is not None else None,
        **extra,
    }
    return _ENTRIES[name]


@pytest.fixture(scope="module", autouse=True)
def write_results():
    """Persist everything the module measured to ``BENCH_server.json``.

    Entries merge over whatever the committed payload already holds, so
    a partial run (one ``-k``-selected benchmark) refreshes its own
    numbers without dropping the others -- the regression gate fails CI
    when an entry disappears, so clobbering would read as a regression.
    """
    yield
    if not _ENTRIES:
        return
    entries = {}
    if RESULTS_PATH.exists():
        try:
            entries = dict(json.loads(RESULTS_PATH.read_text())["entries"])
        except (json.JSONDecodeError, KeyError, TypeError):
            entries = {}
    entries.update(_ENTRIES)
    payload = {
        "benchmark": "key-establishment-session-server",
        "units": "seconds, single run (absolute-cost trackers)",
        "before": None,
        "after": "asyncio server: framed transport -> batch ticks -> results",
        "numpy": np.__version__,
        "entries": dict(sorted(entries.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[benchmarks] wrote {RESULTS_PATH} with {len(entries)} entries")


@pytest.fixture(scope="module")
def served_pipeline():
    """A small trained pipeline sized like the chaos harness's."""
    config = PipelineConfig(
        scenario=scenario_config(ScenarioName.V2I_URBAN),
        feature_config=FeatureConfig(window_fraction=0.10, values_per_packet=2),
        seq_len=16,
        hidden_units=16,
        key_bits=32,
        code_dim=24,
        decoder_units=64,
        rounds_per_episode=48,
        session_rounds=96,
        final_key_bits=64,
        alice_confidence_margin=0.12,
        bob_guard_fraction=0.30,
    )
    pipeline = VehicleKeyPipeline(config, seed=11)
    pipeline.train(n_episodes=100, epochs=60, reconciler_epochs=15)
    return pipeline


def test_server_honest_throughput(served_pipeline):
    """Sessions/second for a burst of honest concurrent devices."""

    async def burst():
        server = KeyEstablishmentServer(
            ModelRegistry(served_pipeline),
            ServerConfig(
                port=0,
                tick_interval_s=0.02,
                max_batch=16,
                queue_limit=CLIENTS,
                max_sessions=2 * CLIENTS,
            ),
        )
        await server.start()
        endpoint = Endpoint(port=server.bound_port)
        start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                run_behavior(
                    endpoint,
                    "normal",
                    f"bench-{i}",
                    episode=f"bench-{SEED}-{i}",
                    rounds=ROUNDS,
                )
                for i in range(CLIENTS)
            )
        )
        elapsed = time.perf_counter() - start
        await server.drain(timeout=30.0)
        return outcomes, elapsed, server

    outcomes, elapsed, server = asyncio.run(burst())
    delivered = sum(1 for outcome in outcomes if outcome.kind == "result")
    entry = _record(
        f"server_throughput@honest_x{CLIENTS}_r{ROUNDS}",
        None,
        elapsed,
        clients=CLIENTS,
        delivered=delivered,
        sessions_per_sec=round(delivered / elapsed, 3),
        ticks=server.metrics.ticks,
        tick_sessions_max=server.metrics.tick_sessions_max,
    )
    # Every honest device must get its result, through real sockets,
    # coalesced into fewer ticks than sessions.
    assert delivered == CLIENTS
    assert entry["sessions_per_sec"] > 0.0
    assert server.metrics.ticks <= CLIENTS


def test_secure_echo_throughput(served_pipeline):
    """Data-plane records/second through the server's batched drain.

    One established device floods secure records over a real loopback
    socket in windows sized to the server's drain cap, so the server
    coalesces waiting frames into batched ``open_records``/
    ``seal_records`` passes instead of one crypto round-trip per frame.
    Absolute tracker; the honest before/after for the record crypto
    itself lives in ``BENCH_secure.json``.
    """
    n_records = 512
    window = 64
    payloads = [bytes(256) for _ in range(window)]

    async def flood():
        server = KeyEstablishmentServer(
            ModelRegistry(served_pipeline),
            ServerConfig(
                port=0,
                tick_interval_s=0.02,
                idle_timeout_s=10.0,
                secure_batch_max=window,
                secure_max_records=4 * n_records,
            ),
        )
        await server.start()
        endpoint = Endpoint(port=server.bound_port)
        try:
            # Establishment success depends on the episode realization;
            # search a small space for one that yields a live channel.
            for i in range(16):
                client = DeviceClient(
                    endpoint,
                    f"bench-secure-{i}",
                    episode=f"bench-secure-{SEED}-{i}",
                    rounds=ROUNDS,
                    timeout_s=30.0,
                    data=True,
                )
                await client.connect()
                await client.hello()
                await client.send({"type": "start"})
                verdict = await client.recv()
                if (
                    verdict is not None
                    and verdict.get("type") == "result"
                    and "channel" in verdict
                ):
                    break
                await client.close()
            else:
                pytest.fail("no successful establishment in 16 episodes")
            channel = channel_from_frame(verdict["channel"])
            try:
                start = time.perf_counter()
                for _ in range(n_records // window):
                    for record in channel.seal_records(payloads):
                        await client.send(
                            {"type": "secure", "record": record.hex()}
                        )
                    for _ in range(window):
                        reply = await client.recv()
                        assert reply["type"] == "secure"
                elapsed = time.perf_counter() - start
                await client.send({"type": "bye"})
            finally:
                await client.close()
        finally:
            await server.drain(timeout=30.0)
        return elapsed, server

    elapsed, server = asyncio.run(flood())
    metrics = server.metrics
    entry = _record(
        f"secure_echo_throughput@{n_records}x256B",
        None,
        elapsed,
        records=n_records,
        records_per_sec=round(n_records / elapsed, 1),
        secure_batches=metrics.secure_batches,
        secure_batch_records_max=metrics.secure_batch_records_max,
    )
    assert metrics.secure_records == n_records
    assert metrics.secure_echoed == n_records
    # The flood must actually exercise the coalesced path, not 512
    # single-record passes.
    assert metrics.secure_batches < n_records
    assert metrics.secure_batch_records_max >= 2
    assert entry["records_per_sec"] > 0.0


def test_recovery_time(served_pipeline, tmp_path):
    """Journal-replay latency: restart over 1k journaled sessions.

    Pre-populates a write-ahead journal the way a long-lived server
    would -- admit/outcome/channel/deliver/nonce records for 1000
    sessions, the newest 50 left orphaned as a crash would -- and times
    a cold :meth:`KeyEstablishmentServer.start`, which replays the
    journal, aborts the orphans and restores the nonce floors before
    the listener accepts its first connection.
    """
    n_sessions = 1000
    n_orphans = 50
    journal_dir = tmp_path / "wal"
    journal = SessionJournal(journal_dir, fsync="off")
    journal.recover()
    for i in range(n_sessions):
        token = f"{i:032x}"
        journal.append(
            {"t": "admit", "token": token, "sid": f"bench-r-{i}",
             "episode": f"bench-r-{i}", "rounds": ROUNDS, "data": i % 4 == 0}
        )
        if i < n_sessions - n_orphans:
            journal.append(
                {"t": "outcome", "token": token, "sid": f"bench-r-{i}",
                 "kind": "result",
                 "frame": {"type": "result", "session_id": f"bench-r-{i}",
                           "success": True, "key_digest": f"{i:032x}"}}
            )
            if i % 4 == 0:
                # A data-phase session: channel context then its nonce
                # high-water advances, as the live server journals them.
                journal.append(
                    {"t": "channel", "token": token, "sid": f"bench-r-{i}",
                     "master": "ab" * 32, "nonce": f"{i:032x}",
                     "fingerprint": "bench", "epoch": i % 3,
                     "max_records": 2**20, "replay_window": 64}
                )
                journal.append(
                    {"t": "nonce", "key": f"key-{i:04d}", "dir": 0,
                     "high": i % 7}
                )
            journal.append({"t": "deliver", "token": token})
    records_journaled = journal.records_written
    journal.close()

    async def restart():
        server = KeyEstablishmentServer(
            ModelRegistry(served_pipeline),
            ServerConfig(port=0, journal_dir=str(journal_dir)),
        )
        start = time.perf_counter()
        await server.start()
        elapsed = time.perf_counter() - start
        await server.drain(timeout=30.0)
        return elapsed, server

    elapsed, server = asyncio.run(restart())
    entry = _record(
        f"recovery_time@journal_{n_sessions}_sessions",
        None,
        elapsed,
        sessions=n_sessions,
        records_replayed=records_journaled,
        orphans_aborted=server.metrics.recovered_orphans,
        sessions_per_sec=round(n_sessions / elapsed, 1),
    )
    assert server.metrics.recoveries == 1
    assert server.metrics.recovered_orphans == n_orphans
    assert entry["sessions_per_sec"] > 0.0
    # Recovery appended its own records (orphan aborts + the marker).
    assert server.metrics.journal_records >= n_orphans + 1


def test_server_chaos_sweep_cost(served_pipeline):
    """Wall cost (and clean verdict) of the mixed-behavior server sweep."""
    start = time.perf_counter()
    report = run_server_chaos(
        served_pipeline, n_clients=CHAOS_CLIENTS, seed=SEED, n_rounds=ROUNDS
    )
    elapsed = time.perf_counter() - start
    _record(
        f"server_chaos_sweep@mixed_x{CHAOS_CLIENTS}_r{ROUNDS}",
        None,
        elapsed,
        clients=CHAOS_CLIENTS,
        results=report.results,
        aborts=report.aborts,
        rejections=report.rejections,
        leaked_sessions=report.leaked_sessions,
        violations=len(report.violations),
    )
    assert report.ok, [violation.detail for violation in report.violations]
    assert report.leaked_sessions == 0
