"""Robustness sweep benchmark: key generation under injected loss."""

from repro.experiments import robustness_sweep


def test_bench_robustness(benchmark, record):
    result = benchmark.pedantic(
        lambda: robustness_sweep.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    table = {
        (row["mean_burst"], row["loss_rate"]): row for row in result.rows
    }
    bursts = {burst for burst, _ in table}
    assert bursts == {1.0, 4.0}

    for burst in bursts:
        clean = table[(burst, 0.0)]
        worst = table[(burst, 0.4)]
        # A clean link must always produce a key, with no ARQ activity.
        assert clean["success_rate"] == 1.0
        assert clean["mean_retries_per_round"] == 0.0
        assert clean["dropped_fraction"] == 0.0
        # Loss costs airtime: retries appear and the key rate degrades.
        assert worst["mean_retries_per_round"] > 0.0
        assert worst["kgr_bps"] <= clean["kgr_bps"]

    # Failures must be structural, never silent mismatches: every session
    # either succeeds (rate counts it) or reports a failure reason, so the
    # observed disagreement of *successful* operating points stays zero at
    # the final-key level (kdr measures pre-amplification block bits).
    for row in result.rows:
        assert 0.0 <= row["success_rate"] <= 1.0
