"""Table I benchmark: robustness across devices and speeds."""

import numpy as np

from repro.experiments import table1_robustness


def test_bench_table1(benchmark, record):
    result = benchmark.pedantic(
        lambda: table1_robustness.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 9  # 3 devices x 3 speeds
    kars = [row["kar"] for row in result.rows if not np.isnan(row["kar"])]
    # Paper shape: uniformly high agreement for every device/speed cell.
    assert min(kars) > 0.85
    # Mild decline with speed: slowest cells >= fastest cells on average.
    slow = np.nanmean([r["kar"] for r in result.rows if r["speed_kmh"] == 30])
    fast = np.nanmean([r["kar"] for r in result.rows if r["speed_kmh"] == 90])
    assert slow >= fast - 0.02
