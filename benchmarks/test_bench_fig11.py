"""Fig. 11 benchmark: AE reconciliation decoder-width sweep vs CS."""

from repro.experiments import fig11_reconciliation


def test_bench_fig11(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig11_reconciliation.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    rows = {row["method"]: row for row in result.rows}
    # Paper shape: AE agreement grows with decoder width...
    assert rows["AE-128"]["agreement"] >= rows["AE-16"]["agreement"]
    # ...the wide AEs beat the CS baseline...
    assert rows["AE-128"]["agreement"] >= rows["CS (20x64)"]["agreement"] - 0.01
    # ...and AE decoding is cheaper than iterative CS decoding (wall-clock
    # comparison, so allow slack for CPU contention on loaded hosts).
    assert rows["AE-64"]["decode_ms"] < rows["CS (20x64)"]["decode_ms"] * 1.5
