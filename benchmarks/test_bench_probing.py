"""Probing/throughput benchmarks: the perf trajectory of the fast path.

Times the vectorized fault-free probing path (``after``) against the
frozen per-round loop (``before``) at paper scale (SF12, 256 rounds),
and the batched multi-session engine against a sequential
``establish_key`` loop, persisting the numbers to ``BENCH_probing.json``
at the repo root.

Like ``BENCH_kernels.json``, the committed copy is the perf baseline: CI
regenerates it and ``scripts/check_bench_regression.py`` fails the build
if any measured speedup falls more than 25% below the committed one.
Both execution paths produce bit-identical traces and keys
(``tests/test_probing_vectorized.py`` / ``tests/test_batched_sessions.py``),
so these entries time pure implementation differences.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.batch import BatchedSessionRunner
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.probing.features import FeatureConfig
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_probing.json"

#: Collected by the tests below, written once at module teardown.
_ENTRIES = {}


def _compare(before_fn, after_fn, reps=5, warmup=1):
    """Interleaved min-of-N for a before/after pair."""
    for _ in range(warmup):
        before_fn()
        after_fn()
    before = after = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        before_fn()
        before = min(before, time.perf_counter() - start)
        start = time.perf_counter()
        after_fn()
        after = min(after, time.perf_counter() - start)
    return before, after


def _record(name, before_s, after_s, **extra):
    _ENTRIES[name] = {
        "before_s": round(before_s, 6) if before_s is not None else None,
        "after_s": round(after_s, 6),
        "speedup": round(before_s / after_s, 3) if before_s is not None else None,
        **extra,
    }
    return _ENTRIES[name]


@pytest.fixture(scope="module", autouse=True)
def write_results():
    """Persist everything the module measured to ``BENCH_probing.json``."""
    yield
    if not _ENTRIES:
        return
    payload = {
        "benchmark": "probing-fast-path",
        "units": "seconds, min over interleaved repetitions",
        "before": "frozen per-round probing loop / sequential establish_key",
        "after": "vectorized fault-free path / BatchedSessionRunner",
        "numpy": np.__version__,
        "entries": dict(sorted(_ENTRIES.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[benchmarks] wrote {RESULTS_PATH} with {len(_ENTRIES)} entries")


def _fresh_probing_setup(seed=5, scenario=ScenarioName.V2V_URBAN):
    """A fresh protocol + seed factory for one timed trace generation.

    Built per timed call so each run grows its own lazy channel caches --
    reusing a channel would hand later repetitions a warm cache and
    flatter the measurement.
    """
    seeds = SeedSequenceFactory(seed)
    config = scenario_config(scenario)
    alice, bob = config.build_trajectories(seeds)
    motion = RelativeMotion(alice, bob)
    channel = config.build_channel(seeds, motion)
    protocol = ProbingProtocol(
        channel=channel,
        phy=LoRaPHYConfig(),  # the paper's SF12 configuration
        alice_device=DRAGINO_LORA_SHIELD,
        bob_device=DRAGINO_LORA_SHIELD,
    )
    return protocol, seeds


class TestTraceGeneration:
    """Fault-free trace generation at paper scale (SF12, 256 rounds)."""

    ROUNDS = 256

    def test_vectorized_vs_loop(self):
        def before():
            protocol, seeds = _fresh_probing_setup()
            protocol.run_loop(self.ROUNDS, seeds)

        def after():
            protocol, seeds = _fresh_probing_setup()
            protocol.run(self.ROUNDS, seeds)

        before_s, after_s = _compare(before, after, reps=3, warmup=1)
        entry = _record("trace_generation@sf12_r256", before_s, after_s)
        # Acceptance criterion for the fast path at paper scale.  The
        # loop pays per-round Python dispatch into the channel stack and
        # samplers ~1300 times; the grid path pays it twice per
        # direction and lands 2.5-3.5x depending on the runner (the
        # committed baseline records the honest number).  The in-test
        # assertion is a coarse sanity floor ("vectorization must
        # clearly win"); the fine-grained trajectory is enforced by
        # scripts/check_bench_regression.py against the committed
        # baseline, so one loaded machine doesn't fail two different
        # thresholds in two different places.
        assert entry["speedup"] >= 2.0


class TestSessionThroughput:
    """Batched multi-session engine vs a sequential establish_key loop."""

    SESSIONS = 6
    ROUNDS = 256

    @pytest.fixture(scope="class")
    def trained_pipeline(self):
        config = PipelineConfig(
            scenario=scenario_config(ScenarioName.V2I_URBAN),
            feature_config=FeatureConfig(window_fraction=0.10, values_per_packet=2),
            seq_len=16,
            hidden_units=16,
            key_bits=32,
            code_dim=24,
            decoder_units=64,
            rounds_per_episode=48,
            session_rounds=256,
            final_key_bits=64,
            alice_confidence_margin=0.12,
            bob_guard_fraction=0.30,
        )
        pipeline = VehicleKeyPipeline(config, seed=11)
        pipeline.train(n_episodes=60, epochs=20, reconciler_epochs=8)
        return pipeline

    def test_batched_vs_sequential(self, trained_pipeline):
        # REPRO_BENCH_SHARDS>1 times the fork-sharded runner instead of
        # the in-process one (CI smokes shards=2); the shard count is
        # recorded with the entry so baselines compare like with like.
        shards = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))
        runner = BatchedSessionRunner(
            trained_pipeline, n_rounds=self.ROUNDS, episode_prefix="tput",
            shards=shards,
        )

        def before():
            # The declared reference: a sequential establish_key loop on
            # the frozen per-round probing path, one session at a time --
            # what the paper's single-device pipeline costs.
            for label in runner.session_labels(self.SESSIONS):
                trained_pipeline.establish_key(
                    episode=label, n_rounds=self.ROUNDS, probing_fast_path=False
                )

        last_report = {}

        def after():
            last_report["report"] = runner.run(self.SESSIONS)

        before_s, after_s = _compare(before, after, reps=3, warmup=1)
        report = last_report["report"]
        entry = _record(
            "session_throughput@tiny_x6_r256",
            before_s,
            after_s,
            sessions=self.SESSIONS,
            sessions_per_sec=round(self.SESSIONS / after_s, 3),
            shards=report.shards,
            # Where a batch tick's time goes (seconds, from the last run):
            # probing, window building, the single stacked predict,
            # per-session reconciliation + amplification, and whatever
            # orchestration overhead remains.
            phases={name: round(value, 6) for name, value in report.phase_s.items()},
        )
        assert report.n_sessions == self.SESSIONS
        assert entry["sessions_per_sec"] > 0.0
        # The phase breakdown must cover the batch fast path's stages and
        # account for (nearly) all of the tick's wall time.
        assert set(entry["phases"]) == {
            "probe", "window", "predict", "reconcile", "amplify", "orchestrate",
        }
        assert all(value >= 0.0 for value in entry["phases"].values())
        # Cross-session stacking + the mixed-precision trig kernel must
        # clearly beat the sequential loop; the committed baseline gates
        # the fine-grained number (and each phase's share) in CI.  Probe
        # must no longer monopolize the tick: the stacked channel pass
        # has to leave visible room for the other phases.
        assert entry["speedup"] >= 3.0
        assert report.phase_s["probe"] < 0.9 * report.elapsed_s
