"""Fig. 13 benchmark: key generation rate comparison against baselines."""

import numpy as np

from repro.experiments import fig12_13_comparison


def test_bench_fig13(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig12_13_comparison.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    by_system = {}
    for row in result.rows:
        by_system.setdefault(row["system"], []).append(row["kgr_bps"])
    means = {name: float(np.mean(values)) for name, values in by_system.items()}
    # Paper shape: Vehicle-Key generates keys fastest; Gao et al.'s
    # model-based scheme is the slowest by an order of magnitude.
    assert means["Vehicle-Key"] > means["LoRa-Key"]
    assert means["Vehicle-Key"] > means["Gao et al."] * 5
    assert means["Gao et al."] < means["Han et al."]
