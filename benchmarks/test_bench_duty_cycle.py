"""Duty-cycle analysis benchmark (extension of Fig. 13)."""

from repro.experiments import duty_cycle


def test_bench_duty_cycle(benchmark, record):
    result = benchmark.pedantic(
        lambda: duty_cycle.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    table = {(row["plan"], row["system"]): row["kgr_bps"] for row in result.rows}
    plans = {plan for plan, _ in table}
    assert len(plans) == 4

    unrestricted_han = table[("unrestricted", "Han et al.")]
    eu868_han = table[("EU 868 MHz (1%)", "Han et al.")]
    # Interactive reconciliation collapses under a 1% duty cycle ...
    assert eu868_han < unrestricted_han / 10
    # ... while Vehicle-Key's single-syndrome design degrades only with
    # the probing slowdown, ending far ahead of Cascade-based Han.
    assert (
        table[("EU 868 MHz (1%)", "Vehicle-Key")]
        > table[("EU 868 MHz (1%)", "Han et al.")]
    )
