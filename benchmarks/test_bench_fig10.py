"""Fig. 10 benchmark: prediction-module ablation."""

import numpy as np

from repro.experiments import fig10_prediction


def test_bench_fig10(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig10_prediction.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 4
    gains = [row["gain_pp"] for row in result.rows]
    # Paper shape: the prediction module helps on average across the four
    # scenarios (paper: +5.4 to +11.7 pp; our simulated channel leaves a
    # smaller but positive margin).
    assert np.mean(gains) > 0.0
    # And with-prediction agreement is high everywhere.
    for row in result.rows:
        assert row["kar_with"] > 0.85
