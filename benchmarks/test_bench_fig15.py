"""Fig. 15 benchmark: security against eavesdropping and imitation."""

from repro.experiments import fig15_security


def test_bench_fig15(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig15_security.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 4  # 2 environments x 2 attackers
    for row in result.rows:
        # Paper shape: legitimate parties near-perfect, attackers far
        # below them (eavesdropper near chance).
        assert row["legitimate_kar"] > 0.9
        assert row["eve_kar"] < row["legitimate_kar"] - 0.1
        if row["attacker"] == "eavesdropper":
            assert row["eve_kar"] < 0.65
