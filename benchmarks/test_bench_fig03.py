"""Fig. 3 benchmark: pRSSI vs arRSSI correlation per scenario."""

from repro.experiments import fig03_prssi_vs_rrssi


def test_bench_fig03(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig03_prssi_vs_rrssi.run(quick=True), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 4
    for row in result.rows:
        # Paper shape: the register-RSSI feature beats packet RSSI in
        # every scenario, by a wide margin.
        assert row["arrssi_correlation"] > row["prssi_correlation"] + 0.1
        assert row["arrssi_correlation"] > 0.75
