"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures in quick
mode and asserts its qualitative *shape* (orderings, crossovers, signs of
effects).  ``benchmark.pedantic(..., rounds=1)`` is used throughout:
the interesting measurement is the single regeneration time, and
re-running multi-minute experiments for timing statistics would be
wasteful.  Trained pipelines are cached across benchmarks via
``repro.experiments.common``, so the first learned benchmark pays the
training cost and the rest reuse it.
"""

import time
from pathlib import Path

import pytest

#: Results recorded by the benchmarks, for the EXPERIMENTS.md report.
_RECORDED = {}
_ELAPSED = {}


@pytest.fixture(scope="session")
def run_quick():
    """Run one experiment module in quick mode (shared helper)."""

    def _run(module, **kwargs):
        return module.run(quick=True, **kwargs)

    return _run


@pytest.fixture()
def record():
    """Collect an ExperimentResult for the end-of-session report."""

    def _record(result, elapsed_s: float = None):
        _RECORDED[result.experiment_id] = result
        _ELAPSED[result.experiment_id] = (
            elapsed_s if elapsed_s is not None else 0.0
        )

    return _record


@pytest.fixture()
def timed_run(record):
    """Run an experiment in quick mode, time it, and record the result."""

    def _run(module, **kwargs):
        start = time.time()
        result = module.run(quick=True, **kwargs)
        record(result, time.time() - start)
        return result

    return _run


def pytest_sessionfinish(session, exitstatus):
    """Write EXPERIMENTS.md from whatever the benchmarks regenerated."""
    if not _RECORDED:
        return
    from repro.experiments.report import render_markdown

    path = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    path.write_text(render_markdown(_RECORDED, _ELAPSED, quick=True))
    print(f"\n[benchmarks] wrote {path} from {len(_RECORDED)} experiment results")
