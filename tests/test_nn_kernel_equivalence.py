"""Pinned-seed equivalence of the vectorized kernels vs the frozen originals.

The fused LSTM/GRU/BiLSTM kernels must reproduce the pre-refactor
implementations (kept verbatim in :mod:`repro.nn.layers.reference`) to
1e-10 in every mode -- forward (training and inference), backward input
gradients, and every weight gradient.  Also covers the behavioural
contracts the rewrite introduced: the inference fast path retains no
backward cache, the first-layer input-gradient skip changes nothing but
the returned value, and ``Model.predict`` handles empty input.
"""

import numpy as np
import pytest

from repro.exceptions import NotTrainedError
from repro.nn.layers.bilstm import BiLSTM
from repro.nn.layers.dense import Dense
from repro.nn.layers.gru import GRU
from repro.nn.layers.lstm import LSTM
from repro.nn.layers.reference import ReferenceBiLSTM, ReferenceGRU, ReferenceLSTM
from repro.nn.model import Model

TOL = 1e-10
BATCH, STEPS, FEATURES, HIDDEN = 5, 7, 3, 6


def _pinned_input(seed=42, batch=BATCH, steps=STEPS, features=FEATURES):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, steps, features)) * 2.0


def _paired(cls_new, cls_ref, x, **kwargs):
    """New and reference layers built with identical pinned weights."""
    new = cls_new(HIDDEN, seed=1234, **kwargs)
    ref = cls_ref(HIDDEN, seed=1234, **kwargs)
    new.forward(x[:1], training=True)
    ref.forward(x[:1], training=True)
    ref.set_weights(new.get_weights())
    return new, ref


def _assert_close(actual, expected, label):
    np.testing.assert_allclose(actual, expected, rtol=0, atol=TOL, err_msg=label)


class TestLSTMEquivalence:
    @pytest.mark.parametrize("return_sequences", [True, False])
    @pytest.mark.parametrize("go_backwards", [True, False])
    def test_forward_and_backward_match_reference(
        self, return_sequences, go_backwards
    ):
        x = _pinned_input()
        new, ref = _paired(
            LSTM, ReferenceLSTM, x,
            return_sequences=return_sequences, go_backwards=go_backwards,
        )
        out_new = new.forward(x, training=True)
        out_ref = ref.forward(x, training=True)
        _assert_close(out_new, out_ref, "training forward")

        grad = np.random.default_rng(7).normal(size=out_ref.shape)
        dx_new = new.backward(grad)
        dx_ref = ref.backward(grad)
        _assert_close(dx_new, dx_ref, "input gradient")
        for key in ("kernel", "recurrent", "bias"):
            _assert_close(new.gradients[key], ref.gradients[key], f"grad {key}")

    @pytest.mark.parametrize("return_sequences", [True, False])
    @pytest.mark.parametrize("go_backwards", [True, False])
    def test_inference_fast_path_matches_training_forward(
        self, return_sequences, go_backwards
    ):
        x = _pinned_input(seed=5)
        new, ref = _paired(
            LSTM, ReferenceLSTM, x,
            return_sequences=return_sequences, go_backwards=go_backwards,
        )
        _assert_close(
            new.forward(x, training=False),
            ref.forward(x, training=False),
            "inference forward",
        )

    def test_single_step_sequence(self):
        x = _pinned_input(seed=9, steps=1)
        new, ref = _paired(LSTM, ReferenceLSTM, x)
        _assert_close(
            new.forward(x, training=True), ref.forward(x, training=True), "T=1"
        )


class TestBiLSTMEquivalence:
    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_forward_and_backward_match_reference(self, return_sequences):
        x = _pinned_input(seed=11)
        new, ref = _paired(
            BiLSTM, ReferenceBiLSTM, x, return_sequences=return_sequences
        )
        out_new = new.forward(x, training=True)
        out_ref = ref.forward(x, training=True)
        _assert_close(out_new, out_ref, "training forward")
        _assert_close(
            new.forward(x, training=False), out_ref, "inference forward"
        )

        grad = np.random.default_rng(13).normal(size=out_ref.shape)
        new.forward(x, training=True)
        dx_new = new.backward(grad)
        dx_ref = ref.backward(grad)
        _assert_close(dx_new, dx_ref, "input gradient")
        for key in new.gradients:
            _assert_close(new.gradients[key], ref.gradients[key], f"grad {key}")


class TestGRUEquivalence:
    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_forward_and_backward_match_reference(self, return_sequences):
        x = _pinned_input(seed=21)
        new, ref = _paired(
            GRU, ReferenceGRU, x, return_sequences=return_sequences
        )
        out_new = new.forward(x, training=True)
        out_ref = ref.forward(x, training=True)
        _assert_close(out_new, out_ref, "training forward")
        _assert_close(
            new.forward(x, training=False), out_ref, "inference forward"
        )

        grad = np.random.default_rng(23).normal(size=out_ref.shape)
        new.forward(x, training=True)
        dx_new = new.backward(grad)
        dx_ref = ref.backward(grad)
        _assert_close(dx_new, dx_ref, "input gradient")
        for key in new.gradients:
            _assert_close(new.gradients[key], ref.gradients[key], f"grad {key}")


class TestInferenceFastPath:
    @pytest.mark.parametrize("cls", [LSTM, GRU, BiLSTM])
    def test_no_backward_cache_after_inference(self, cls):
        x = _pinned_input(seed=31)
        layer = cls(HIDDEN, seed=0)
        layer.forward(x, training=True)  # build + populate cache
        layer.forward(x, training=False)  # fast path must clear it
        out_features = 2 * HIDDEN if cls is BiLSTM else HIDDEN
        grad = np.ones((BATCH, STEPS, out_features))
        with pytest.raises(NotTrainedError):
            layer.backward(grad)


class TestInputGradientSkip:
    def test_skip_leaves_weight_gradients_unchanged(self):
        x = _pinned_input(seed=41)
        layer = LSTM(HIDDEN, seed=3)
        out = layer.forward(x, training=True)
        grad = np.random.default_rng(43).normal(size=out.shape)
        dx = layer.backward(grad)
        full_grads = {k: v.copy() for k, v in layer.gradients.items()}

        layer.forward(x, training=True)
        assert layer.backward(grad, compute_input_grad=False) is None
        for key, value in full_grads.items():
            np.testing.assert_array_equal(layer.gradients[key], value)
        assert dx is not None

    def test_model_backward_honours_need_input_grad(self):
        x = _pinned_input(seed=47)
        model = Model([BiLSTM(HIDDEN, seed=5), Dense(1, seed=6)])
        out = model.forward(x, training=True)
        grad = np.ones_like(out)
        assert model.backward(grad, need_input_grad=False) is None
        model.forward(x, training=True)
        assert model.backward(grad, need_input_grad=True) is not None

    def test_training_identical_with_reference_stack(self):
        """End to end: the fused stack trains bit-for-bit like the original."""
        rng = np.random.default_rng(51)
        x = rng.normal(size=(24, STEPS, FEATURES))
        y = rng.normal(size=(24, STEPS, 1))

        def train(encoder_cls):
            model = Model([encoder_cls(HIDDEN, seed=7), Dense(1, seed=8)])
            history = model.fit(x, y, epochs=3, batch_size=8, shuffle_seed=0)
            return history.metrics["loss"]

        new_losses = train(BiLSTM)
        ref_losses = train(ReferenceBiLSTM)
        np.testing.assert_allclose(new_losses, ref_losses, rtol=0, atol=1e-12)


class TestPredictEdgeCases:
    def test_empty_input_returns_empty_with_output_shape(self):
        model = Model([LSTM(HIDDEN, seed=0, return_sequences=False), Dense(2, seed=1)])
        model.forward(np.zeros((1, STEPS, FEATURES)), training=False)
        out = model.predict(np.zeros((0, STEPS, FEATURES)))
        assert out.shape == (0, 2)
