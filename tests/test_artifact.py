"""The checksummed atomic artifact container."""

import json
import os

import numpy as np
import pytest

from repro.exceptions import ArtifactMismatchError, CorruptArtifactError
from repro.utils.artifact import (
    FORMAT_VERSION,
    HEADER_KEY,
    load_artifact,
    require_matching_architecture,
    save_artifact,
)


@pytest.fixture
def arrays():
    rng = np.random.default_rng(3)
    return {
        "weights": rng.normal(size=(4, 3)),
        "bias": rng.normal(size=(3,)),
        "counts": np.arange(5, dtype=np.int64),
    }


class TestRoundTrip:
    def test_arrays_and_metadata_survive(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing", metadata={"alpha": 3})
        artifact = load_artifact(path, kind="test-thing")
        assert artifact.kind == "test-thing"
        assert artifact.metadata == {"alpha": 3}
        assert artifact.format_version == FORMAT_VERSION
        assert not artifact.legacy
        for key, value in arrays.items():
            np.testing.assert_array_equal(artifact.arrays[key], value)

    def test_kind_is_optional_at_load(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        assert load_artifact(path).kind == "test-thing"

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_artifact(
                tmp_path / "x.npz", {HEADER_KEY: np.zeros(3)}, kind="test"
            )

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "absent.npz")


class TestAtomicity:
    def test_save_replaces_not_appends(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        save_artifact(path, {"only": np.ones(2)}, kind="test-thing")
        artifact = load_artifact(path, kind="test-thing")
        assert set(artifact.arrays) == {"only"}

    def test_no_temp_files_left_behind(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        assert os.listdir(tmp_path) == ["thing.npz"]

    def test_creates_parent_directories(self, arrays, tmp_path):
        path = tmp_path / "deep" / "nested" / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        assert load_artifact(path).kind == "test-thing"


class TestCorruptionDetection:
    def test_truncated_file(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_flipped_payload_byte(self, arrays, tmp_path):
        # Store uncompressed so a payload byte maps 1:1 onto an array byte.
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        raw = {k: v for k, v in np.load(path).items()}
        np.savez(path, **raw)  # uncompressed rewrite, header intact
        data = bytearray(path.read_bytes())
        # Flip a byte in the middle of the file body (array data region).
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises((CorruptArtifactError, ArtifactMismatchError)):
            load_artifact(path)

    def test_tampered_array_fails_checksum(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        loaded = dict(np.load(path).items())
        tampered = loaded["weights"].copy()
        tampered.flat[0] += 1.0
        loaded["weights"] = tampered
        np.savez_compressed(path, **loaded)
        with pytest.raises(CorruptArtifactError, match="SHA-256"):
            load_artifact(path)

    def test_malformed_header(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        loaded = dict(np.load(path).items())
        loaded[HEADER_KEY] = np.frombuffer(b"not json at all", dtype=np.uint8)
        np.savez_compressed(path, **loaded)
        with pytest.raises(CorruptArtifactError, match="header"):
            load_artifact(path)

    def test_not_an_npz(self, tmp_path):
        path = tmp_path / "thing.npz"
        path.write_bytes(b"hello world")
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)


class TestMismatchDetection:
    def test_wrong_kind(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        with pytest.raises(ArtifactMismatchError, match="expected"):
            load_artifact(path, kind="other-thing")

    def test_future_format_version(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(path, arrays, kind="test-thing")
        loaded = dict(np.load(path).items())
        header = json.loads(bytes(bytearray(loaded[HEADER_KEY])).decode())
        header["format_version"] = FORMAT_VERSION + 1
        loaded[HEADER_KEY] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **loaded)
        with pytest.raises(ArtifactMismatchError, match="format version"):
            load_artifact(path)

    def test_architecture_mismatch_lists_differences(self, arrays, tmp_path):
        path = tmp_path / "thing.npz"
        save_artifact(
            path,
            arrays,
            kind="test-thing",
            metadata={"architecture": {"units": 8, "depth": 2}},
        )
        artifact = load_artifact(path)
        with pytest.raises(ArtifactMismatchError, match="units"):
            require_matching_architecture(
                artifact, {"units": 16, "depth": 2}, path
            )
        require_matching_architecture(artifact, {"units": 8, "depth": 2}, path)


class TestLegacySupport:
    def test_plain_npz_loads_with_warning(self, arrays, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **arrays)
        with pytest.warns(UserWarning, match="legacy"):
            artifact = load_artifact(path, kind="whatever")
        assert artifact.legacy
        assert artifact.kind is None
        assert artifact.format_version == 0
        np.testing.assert_array_equal(artifact.arrays["bias"], arrays["bias"])

    def test_legacy_rejected_when_not_allowed(self, arrays, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **arrays)
        with pytest.raises(ArtifactMismatchError, match="legacy"):
            load_artifact(path, allow_legacy=False)

    def test_legacy_passes_architecture_check(self, arrays, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **arrays)
        with pytest.warns(UserWarning):
            artifact = load_artifact(path)
        require_matching_architecture(artifact, {"units": 1}, path)
