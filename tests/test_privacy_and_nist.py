"""Tests for privacy amplification and the NIST SP 800-22 suite."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.privacy.amplification import amplify, amplify_to_bytes
from repro.security.nist import (
    NistTestSuite,
    approximate_entropy_test,
    berlekamp_massey,
    block_frequency_test,
    cumulative_sums_test,
    dft_test,
    frequency_test,
    linear_complexity_test,
    longest_run_test,
    non_overlapping_template_test,
    run_nist_suite,
)
from repro.utils.bits import random_bits


class TestAmplification:
    def test_output_length(self):
        key = amplify(random_bits(256, 0), output_bits=128)
        assert key.shape == (128,)

    def test_deterministic(self):
        bits = random_bits(256, 1)
        np.testing.assert_array_equal(amplify(bits), amplify(bits))

    def test_single_bit_change_avalanches(self):
        bits = random_bits(256, 2)
        other = bits.copy()
        other[17] ^= 1
        difference = np.mean(amplify(bits) != amplify(other))
        assert 0.3 < difference < 0.7

    def test_salt_changes_output(self):
        bits = random_bits(256, 3)
        assert not np.array_equal(amplify(bits, salt=b"a"), amplify(bits, salt=b"b"))

    def test_cannot_stretch_entropy(self):
        with pytest.raises(ConfigurationError):
            amplify(random_bits(64, 4), output_bits=256)

    def test_bytes_variant_matches_bits(self):
        bits = random_bits(256, 5)
        from repro.utils.bits import bytes_to_bits

        np.testing.assert_array_equal(
            bytes_to_bits(amplify_to_bytes(bits)), amplify(bits)
        )

    def test_non_multiple_of_8_output_rejected(self):
        with pytest.raises(ConfigurationError):
            amplify(random_bits(256, 6), output_bits=100)

    def test_odd_length_input_accepted(self):
        assert amplify(random_bits(131, 7), output_bits=128).shape == (128,)


def _random_sequence(n=20000, seed=0):
    return random_bits(n, seed)


def _biased_sequence(n=20000, seed=0, p=0.7):
    rng = np.random.default_rng(seed)
    return (rng.uniform(size=n) < p).astype(np.uint8)


class TestIndividualNistTests:
    def test_frequency_passes_random(self):
        assert frequency_test(_random_sequence()) > 0.01

    def test_frequency_rejects_biased(self):
        assert frequency_test(_biased_sequence()) < 0.01

    def test_block_frequency_passes_random(self):
        assert block_frequency_test(_random_sequence(seed=1)) > 0.01

    def test_block_frequency_rejects_blocky(self):
        sequence = np.concatenate([np.ones(10000), np.zeros(10000)]).astype(np.uint8)
        assert block_frequency_test(sequence) < 0.01

    def test_longest_run_passes_random(self):
        assert longest_run_test(_random_sequence(seed=2)) > 0.01

    def test_longest_run_rejects_long_runs(self):
        rng = np.random.default_rng(0)
        # Alternating short random chunks and long 1-runs.
        chunks = []
        for _ in range(100):
            chunks.append(rng.integers(0, 2, 50).astype(np.uint8))
            chunks.append(np.ones(20, dtype=np.uint8))
        assert longest_run_test(np.concatenate(chunks)) < 0.01

    def test_dft_passes_random(self):
        assert dft_test(_random_sequence(seed=3)) > 0.01

    def test_dft_rejects_periodic(self):
        assert dft_test(np.tile([1, 0, 1, 0, 1, 0, 0, 1], 1000)) < 0.01

    def test_cusum_passes_random(self):
        assert cumulative_sums_test(_random_sequence(seed=4)) > 0.01

    def test_cusum_rejects_drift(self):
        assert cumulative_sums_test(_biased_sequence(p=0.55)) < 0.01

    def test_cusum_backward_mode(self):
        assert cumulative_sums_test(_random_sequence(seed=5), mode="backward") > 0.01

    def test_approximate_entropy_passes_random(self):
        assert approximate_entropy_test(_random_sequence(seed=6)) > 0.01

    def test_approximate_entropy_rejects_repetitive(self):
        assert approximate_entropy_test(np.tile([0, 1], 10000)) < 0.01

    def test_non_overlapping_passes_random(self):
        assert non_overlapping_template_test(_random_sequence(seed=7)) > 0.01

    def test_non_overlapping_rejects_template_spam(self):
        rng = np.random.default_rng(1)
        chunks = []
        for _ in range(200):
            chunks.append(rng.integers(0, 2, 30).astype(np.uint8))
            chunks.append(np.array([0, 0, 0, 0, 0, 0, 0, 0, 1], dtype=np.uint8))
        assert non_overlapping_template_test(np.concatenate(chunks)) < 0.01

    def test_linear_complexity_passes_random(self):
        assert linear_complexity_test(_random_sequence(seed=8)) > 0.01

    def test_linear_complexity_rejects_lfsr_like(self):
        # A short-period sequence has tiny linear complexity everywhere.
        assert linear_complexity_test(np.tile([1, 0, 0, 1, 1], 4000)) < 0.01

    def test_too_short_sequence_rejected(self):
        with pytest.raises(ConfigurationError):
            frequency_test(np.array([1, 0, 1]))

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            frequency_test(np.array([0, 1, 2] * 10))


class TestBerlekampMassey:
    def test_known_lfsr(self):
        # x^4 + x + 1 LFSR has linear complexity 4.
        state = [1, 0, 0, 1]
        sequence = []
        for _ in range(60):
            sequence.append(state[-1])
            new = state[0] ^ state[3]
            state = [new] + state[:-1]
        assert berlekamp_massey(np.array(sequence, dtype=np.int8)) == 4

    def test_all_zeros_complexity_zero(self):
        assert berlekamp_massey(np.zeros(32, dtype=np.int8)) == 0

    def test_single_one_at_end(self):
        bits = np.zeros(16, dtype=np.int8)
        bits[-1] = 1
        assert berlekamp_massey(bits) == 16

    def test_random_sequence_complexity_near_half(self):
        bits = random_bits(500, 0).astype(np.int8)
        complexity = berlekamp_massey(bits)
        assert 240 <= complexity <= 260


class TestSuite:
    def test_all_pass_on_random(self):
        assert NistTestSuite().all_pass(_random_sequence(seed=9))

    def test_reports_eight_tests(self):
        results = run_nist_suite(_random_sequence(seed=10))
        assert len(results) == 8
        assert "Frequency" in results
        assert "Non Overlapping Template" in results

    def test_biased_stream_fails_somewhere(self):
        assert not NistTestSuite().all_pass(_biased_sequence(seed=11))

    def test_hashed_keys_pass(self):
        # The actual use: concatenated privacy-amplified keys.
        keys = [amplify(random_bits(256, seed), 128) for seed in range(160)]
        stream = np.concatenate(keys)
        assert NistTestSuite().all_pass(stream)
