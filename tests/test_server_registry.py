"""Model-registry hot-reload and corrupt-artifact rollback tests.

The registry's contract: a changed artifact set on disk is picked up
between ticks, but *only* after it verifies end to end (checksummed
artifact store, architecture match) into a fresh pipeline -- a corrupt
or truncated generation is counted, remembered and rolled back
atomically, and the serving pipeline keeps serving.
"""

import pytest

from repro.server.registry import ARTIFACT_NAMES, ModelRegistry


@pytest.fixture()
def artifact_dir(tiny_pipeline, tmp_path):
    """A directory holding one good saved generation."""
    target = tmp_path / "artifacts"
    tiny_pipeline.save(target)
    return target


class TestReloadFastPath:
    def test_unwatched_registry_never_reloads(self, tiny_pipeline):
        registry = ModelRegistry(tiny_pipeline)
        assert registry.maybe_reload() is False
        assert registry.generation == 1
        assert registry.pipeline is tiny_pipeline

    def test_unchanged_artifacts_do_not_reload(self, tiny_pipeline, artifact_dir):
        registry = ModelRegistry(tiny_pipeline, directory=artifact_dir)
        assert registry.maybe_reload() is False
        assert registry.reloads == 0

    def test_incomplete_generation_is_not_a_candidate(
        self, tiny_pipeline, artifact_dir
    ):
        registry = ModelRegistry(tiny_pipeline, directory=artifact_dir)
        (artifact_dir / ARTIFACT_NAMES[1]).unlink()  # mid-write snapshot
        assert registry.maybe_reload() is False
        assert registry.reload_failures == 0
        assert registry.pipeline is tiny_pipeline


class TestReloadAndRollback:
    def test_changed_artifacts_swap_in(self, tiny_pipeline, artifact_dir):
        registry = ModelRegistry(tiny_pipeline, directory=artifact_dir)
        tiny_pipeline.save(artifact_dir)  # same weights, fresh mtime
        assert registry.maybe_reload() is True
        assert registry.generation == 2
        assert registry.reloads == 1
        assert registry.last_error is None
        # The swapped-in generation is a distinct, fully-loaded pipeline.
        assert registry.pipeline is not tiny_pipeline

    def test_corrupt_artifact_rolls_back_and_keeps_serving(
        self, tiny_pipeline, artifact_dir
    ):
        registry = ModelRegistry(tiny_pipeline, directory=artifact_dir)
        model_path = artifact_dir / ARTIFACT_NAMES[0]
        model_path.write_bytes(b"\x00garbage" * 64)
        assert registry.maybe_reload() is False
        assert registry.reload_failures == 1
        assert registry.last_error is not None
        assert registry.generation == 1
        assert registry.pipeline is tiny_pipeline  # rollback: old gen serves

    def test_unchanged_corrupt_set_is_not_reverified(
        self, tiny_pipeline, artifact_dir
    ):
        registry = ModelRegistry(tiny_pipeline, directory=artifact_dir)
        (artifact_dir / ARTIFACT_NAMES[0]).write_bytes(b"\x00garbage" * 64)
        assert registry.maybe_reload() is False
        assert registry.maybe_reload() is False  # fingerprint remembered
        assert registry.reload_failures == 1

    def test_recovery_after_corruption(self, tiny_pipeline, artifact_dir):
        registry = ModelRegistry(tiny_pipeline, directory=artifact_dir)
        (artifact_dir / ARTIFACT_NAMES[0]).write_bytes(b"\x00garbage" * 64)
        assert registry.maybe_reload() is False
        tiny_pipeline.save(artifact_dir)  # the fixed generation lands
        assert registry.maybe_reload() is True
        assert registry.generation == 2
        assert registry.last_error is None

    def test_truncated_artifact_rolls_back(self, tiny_pipeline, artifact_dir):
        registry = ModelRegistry(tiny_pipeline, directory=artifact_dir)
        model_path = artifact_dir / ARTIFACT_NAMES[0]
        model_path.write_bytes(model_path.read_bytes()[:-64])
        assert registry.maybe_reload() is False
        assert registry.reload_failures == 1
        assert registry.pipeline is tiny_pipeline
