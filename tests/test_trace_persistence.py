"""Tests for probing-trace persistence."""

import numpy as np
import pytest

from repro.probing.trace import ProbeTrace


@pytest.fixture()
def trace_with_eve(tiny_pipeline):
    from repro.probing.eve import EveConfig, build_eavesdropping_eve

    def build(cfg, seeds, channel, alice, bob):
        return build_eavesdropping_eve(
            cfg, seeds, channel, alice, bob, EveConfig(label="e1")
        )

    return tiny_pipeline.collect_trace(
        "persist", n_rounds=8, eavesdropper_builders=[build]
    )


class TestSaveLoad:
    def test_round_trip_preserves_arrays(self, trace_with_eve, tmp_path):
        path = tmp_path / "trace.npz"
        trace_with_eve.save(path)
        loaded = ProbeTrace.load(path)
        np.testing.assert_array_equal(loaded.alice_rssi, trace_with_eve.alice_rssi)
        np.testing.assert_array_equal(loaded.bob_prssi, trace_with_eve.bob_prssi)
        np.testing.assert_array_equal(loaded.valid, trace_with_eve.valid)

    def test_round_trip_preserves_phy(self, trace_with_eve, tmp_path):
        path = tmp_path / "trace.npz"
        trace_with_eve.save(path)
        loaded = ProbeTrace.load(path)
        assert loaded.phy == trace_with_eve.phy

    def test_round_trip_preserves_eve(self, trace_with_eve, tmp_path):
        path = tmp_path / "trace.npz"
        trace_with_eve.save(path)
        loaded = ProbeTrace.load(path)
        assert set(loaded.eve) == {"e1"}
        np.testing.assert_array_equal(
            loaded.eve["e1"].of_bob_rssi, trace_with_eve.eve["e1"].of_bob_rssi
        )

    def test_loaded_trace_is_usable(self, trace_with_eve, tmp_path):
        from repro.probing.features import FeatureConfig, arrssi_sequences

        path = tmp_path / "trace.npz"
        trace_with_eve.save(path)
        loaded = ProbeTrace.load(path)
        bob_seq, alice_seq = arrssi_sequences(loaded, FeatureConfig(0.1, 2))
        assert len(bob_seq) == len(alice_seq) > 0
