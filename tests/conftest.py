"""Shared fixtures: a tiny trained pipeline reused across core tests.

Training even a small BiLSTM takes seconds, so the expensive fixtures are
session-scoped and deliberately undersized (8 hidden units, 16-step
windows, 32-bit blocks).  Tests assert behaviours and invariants, not
paper-grade accuracy -- that is what the benchmarks are for.
"""

import pytest

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.probing.features import FeatureConfig


TINY_KWARGS = dict(
    feature_config=FeatureConfig(window_fraction=0.10, values_per_packet=2),
    seq_len=16,
    hidden_units=16,
    key_bits=32,
    code_dim=24,
    decoder_units=64,
    rounds_per_episode=48,
    session_rounds=256,
    final_key_bits=64,
    alice_confidence_margin=0.12,
    bob_guard_fraction=0.30,
)


def make_tiny_pipeline(scenario=ScenarioName.V2I_URBAN, seed=11) -> VehicleKeyPipeline:
    """An untrained, small-everything pipeline."""
    config = PipelineConfig(scenario=scenario_config(scenario), **TINY_KWARGS)
    return VehicleKeyPipeline(config, seed=seed)


@pytest.fixture(scope="session")
def tiny_pipeline() -> VehicleKeyPipeline:
    """A trained tiny pipeline (one per test session)."""
    pipeline = make_tiny_pipeline()
    pipeline.train(n_episodes=100, epochs=60, reconciler_epochs=15)
    return pipeline
