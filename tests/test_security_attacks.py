"""Tests for the eavesdropping and imitating attack harnesses."""

import pytest

from repro.exceptions import ConfigurationError
from repro.security.attacks import AttackReport, collect_attack_traces, run_attack


@pytest.fixture(scope="module")
def eavesdrop_report(tiny_pipeline):
    return run_attack(tiny_pipeline, "eavesdropper", n_traces=1, n_rounds=256)


@pytest.fixture(scope="module")
def imitator_report(tiny_pipeline):
    return run_attack(tiny_pipeline, "imitator", n_traces=1, n_rounds=256)


class TestHarness:
    def test_unknown_attacker_rejected(self, tiny_pipeline):
        with pytest.raises(ConfigurationError):
            run_attack(tiny_pipeline, "mallory")

    def test_traces_carry_attacker_recordings(self, tiny_pipeline):
        traces = collect_attack_traces(
            tiny_pipeline, "eavesdropper", n_traces=1, n_rounds=16
        )
        assert "eavesdropper" in traces[0].eve

    def test_report_shape(self, eavesdrop_report):
        assert isinstance(eavesdrop_report, AttackReport)
        assert eavesdrop_report.n_blocks > 0


class TestEavesdroppingAttack:
    def test_legitimate_parties_agree(self, eavesdrop_report):
        assert eavesdrop_report.legitimate_agreement > 0.85

    def test_eve_is_near_chance(self, eavesdrop_report):
        # Paper Fig. 15a: 42-51% for the eavesdropper.
        assert eavesdrop_report.eve_agreement < 0.65

    def test_syndrome_gives_eve_no_material_lift(self, eavesdrop_report):
        assert (
            eavesdrop_report.eve_agreement
            <= eavesdrop_report.eve_raw_agreement + 0.08
        )

    def test_eve_channel_uncorrelated(self, eavesdrop_report):
        assert abs(eavesdrop_report.eve_feature_correlation) < 0.4


class TestImitatingAttack:
    def test_legitimate_parties_agree(self, imitator_report):
        assert imitator_report.legitimate_agreement > 0.85

    def test_imitator_below_legitimate(self, imitator_report):
        assert (
            imitator_report.eve_agreement
            < imitator_report.legitimate_agreement - 0.1
        )

    def test_imitator_sees_some_large_scale_structure(self, imitator_report):
        # Fig. 16: the overall pattern is similar (nonzero correlation) but
        # far from the legitimate reciprocity.
        assert imitator_report.eve_feature_correlation > 0.0

    def test_imitator_cannot_build_the_key(self, imitator_report):
        # With agreement this far below 1, the probability of assembling a
        # matching 128-bit key is negligible.
        assert imitator_report.eve_agreement < 0.9
