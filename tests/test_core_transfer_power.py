"""Tests for transfer learning and the power/timing profile."""

import numpy as np
import pytest

from repro.core.power import (
    RPI4_ACTIVE_POWER_W,
    measure_power_profile,
    totals,
)
from repro.core.transfer import (
    evaluate_agreement,
    fine_tune,
    train_from_scratch,
    transfer_study,
)
from repro.exceptions import ConfigurationError
from repro.probing.dataset import split_dataset
from tests.conftest import make_tiny_pipeline


@pytest.fixture(scope="module")
def target_dataset():
    pipeline = make_tiny_pipeline(seed=21)
    return pipeline.collect_dataset(n_episodes=30)


class TestTransfer:
    def test_fine_tune_produces_result(self, tiny_pipeline, target_dataset):
        splits = split_dataset(target_dataset, seed=0)
        result = fine_tune(
            tiny_pipeline.model, splits, fraction=0.5, epochs=3, seed=0
        )
        assert result.label == "transfer-50%"
        assert 0.0 <= result.agreement <= 1.0

    def test_fraction_validated(self, tiny_pipeline, target_dataset):
        splits = split_dataset(target_dataset, seed=0)
        with pytest.raises(ConfigurationError):
            fine_tune(tiny_pipeline.model, splits, fraction=1.5, epochs=1)

    def test_scratch_arm(self, tiny_pipeline, target_dataset):
        splits = split_dataset(target_dataset, seed=0)
        result = train_from_scratch(tiny_pipeline.model, splits, epochs=3, seed=1)
        assert result.label == "scratch"

    def test_study_contains_all_arms(self, tiny_pipeline, target_dataset):
        results = transfer_study(
            tiny_pipeline.model,
            target_dataset,
            fractions=[0.10, 1.00],
            fine_tune_epochs=3,
            scratch_epochs=3,
            seed=2,
        )
        assert set(results) == {"transfer-10%", "transfer-100%", "scratch"}

    def test_fine_tuning_beats_scratch_at_small_budget(
        self, tiny_pipeline, target_dataset
    ):
        # Fig. 14's qualitative claim at tiny scale: starting from the
        # source model should not be worse than starting cold with the
        # same small epoch budget.
        results = transfer_study(
            tiny_pipeline.model,
            target_dataset,
            fractions=[1.00],
            fine_tune_epochs=4,
            scratch_epochs=4,
            seed=3,
        )
        assert results["transfer-100%"].agreement >= results["scratch"].agreement - 0.03

    def test_evaluate_agreement_range(self, tiny_pipeline, target_dataset):
        agreement = evaluate_agreement(tiny_pipeline.model, target_dataset)
        assert 0.0 <= agreement <= 1.0


class TestPowerProfile:
    @pytest.fixture(scope="class")
    def profile(self, tiny_pipeline):
        return measure_power_profile(
            tiny_pipeline.model, tiny_pipeline.reconciler, repeats=3
        )

    def test_all_phases_present(self, profile):
        assert set(profile) == {
            "prediction-quantization/alice",
            "prediction-quantization/bob",
            "reconciliation/alice",
            "reconciliation/bob",
        }

    def test_times_positive(self, profile):
        assert all(cost.time_ms > 0 for cost in profile.values())

    def test_energy_matches_power_model(self, profile):
        for cost in profile.values():
            assert cost.energy_mj == pytest.approx(
                cost.time_ms * RPI4_ACTIVE_POWER_W
            )

    def test_alice_prediction_costs_more_than_bob(self, profile):
        # Table III's structure: Alice runs the BiLSTM, Bob only a quantizer.
        assert (
            profile["prediction-quantization/alice"].time_ms
            > profile["prediction-quantization/bob"].time_ms
        )

    def test_alice_reconciliation_costs_more_than_bob(self, profile):
        # Alice runs encoder + decoder + correction, Bob just his encoder.
        assert (
            profile["reconciliation/alice"].time_ms
            > profile["reconciliation/bob"].time_ms
        )

    def test_totals_sum_phases(self, profile):
        total = totals(profile)
        assert total["alice"].time_ms == pytest.approx(
            profile["prediction-quantization/alice"].time_ms
            + profile["reconciliation/alice"].time_ms
        )
