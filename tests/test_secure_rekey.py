"""Key lifecycle: rekey triggers, structured closure, faulted rekeys.

Every test runs over a real trained pipeline (the shared tiny fixture):
rekeys are genuine re-establishments, not stubs -- except where a stub
pipeline exists precisely to force the establishment-failure path
deterministically.  Establishment success depends on the channel
realization of the episode, so tests that need a *successful* rekey
search a small episode space and fail loudly if none succeeds.
"""

from types import SimpleNamespace

import pytest

from repro.faults import AdversaryPlan, FaultPlan, LossConfig, MessageFaultConfig
from repro.secure import ManagedSecureLink, NonceLedger, RekeyPolicy
from repro.secure.rekey import (
    CLOSE_BY_PEER,
    CLOSE_REASONS,
    CLOSE_REKEY_BUDGET,
    CLOSE_REKEY_FAILED,
    REKEY_TRIGGERS,
    TRIGGER_AGE,
    TRIGGER_DECRYPT_BUDGET,
    TRIGGER_EXHAUSTION,
)

ROUNDS = 64

#: Episodes tried before declaring a needed establishment impossible.
SEARCH = 8


@pytest.fixture(scope="module")
def established(tiny_pipeline):
    """One confirmed session result to derive epoch-0 keys from."""
    for i in range(SEARCH):
        outcome = tiny_pipeline.establish_key(
            episode=f"rekey-base-{i}", n_rounds=ROUNDS
        )
        if outcome.success:
            return outcome.session
    pytest.fail(f"no successful establishment in {SEARCH} episodes")


class _FailingPipeline:
    """A pipeline whose every establishment fails -- deterministically.

    Wraps the real pipeline for its fingerprint (the KDF context must
    stay honest) while making the rekey path's failure branch testable
    without hunting for an episode the channel model rejects.
    """

    def __init__(self, inner):
        self._inner = inner

    def fingerprint(self):
        return self._inner.fingerprint()

    def establish_key(self, **kwargs):
        return SimpleNamespace(
            success=False,
            failure_reason="injected-failure",
            attempts=1,
            session=None,
        )


class TestRekeyTriggers:
    def test_counter_exhaustion_rolls_the_epoch(self, tiny_pipeline, established):
        for i in range(SEARCH):
            link = ManagedSecureLink(
                tiny_pipeline,
                established,
                episode=f"rk-exhaust-{i}",
                policy=RekeyPolicy(max_records_per_epoch=3, grace_opens=2),
                n_rounds=ROUNDS,
            )
            wires = [link.seal("initiator", f"m{j}".encode()) for j in range(4)]
            if link.closed:  # this episode's rekey establishment failed
                assert link.close_report.reason in CLOSE_REASONS
                continue
            assert all(wire is not None for wire in wires)
            assert link.epoch == 1
            assert link.rekeys_completed == 1
            assert link.rekey_events[0].trigger == TRIGGER_EXHAUSTION
            assert link.rekey_events[0].epoch == 1
            # Continuity: the post-rekey record delivers, and the grace
            # allowance still drains an in-flight old-epoch record.
            drained = link.deliver("responder", wires[0])
            assert drained.ok and drained.plaintext == b"m0"
            fresh = link.deliver("responder", wires[3])
            assert fresh.ok and fresh.plaintext == b"m3"
            return
        pytest.fail("no successful counter-exhaustion rekey found")

    def test_decrypt_budget_forces_a_rekey(self, tiny_pipeline, established):
        for i in range(SEARCH):
            link = ManagedSecureLink(
                tiny_pipeline,
                established,
                episode=f"rk-budget-{i}",
                policy=RekeyPolicy(decrypt_failure_budget=2),
                n_rounds=ROUNDS,
            )
            outcomes = [link.deliver("responder", b"garbage") for _ in range(2)]
            assert all(not outcome.ok for outcome in outcomes)
            assert all(outcome.plaintext is None for outcome in outcomes)
            if link.closed:
                assert link.close_report.reason in CLOSE_REASONS
                continue
            assert link.rekeys_completed == 1
            assert link.rekey_events[0].trigger == TRIGGER_DECRYPT_BUDGET
            # The fresh epoch carries traffic again.
            wire = link.seal("initiator", b"after")
            assert link.deliver("responder", wire).plaintext == b"after"
            return
        pytest.fail("no successful decrypt-budget rekey found")

    def test_epoch_age_on_the_logical_clock(self, tiny_pipeline, established):
        for i in range(SEARCH):
            link = ManagedSecureLink(
                tiny_pipeline,
                established,
                episode=f"rk-age-{i}",
                policy=RekeyPolicy(max_epoch_age_s=5.0),
                n_rounds=ROUNDS,
            )
            link.seal("initiator", b"young epoch")
            assert link.rekeys_completed == 0  # age not yet reached
            link.tick(6.0)
            link.seal("initiator", b"old epoch")
            if link.closed:
                assert link.close_report.reason in CLOSE_REASONS
                continue
            assert link.rekeys_completed == 1
            assert link.rekey_events[0].trigger == TRIGGER_AGE
            assert link.rekey_events[0].clock_s == pytest.approx(6.0)
            return
        pytest.fail("no successful age-triggered rekey found")

    def test_trigger_taxonomy_is_closed(self):
        assert set(REKEY_TRIGGERS) == {
            TRIGGER_EXHAUSTION,
            TRIGGER_DECRYPT_BUDGET,
            TRIGGER_AGE,
        }


class TestStructuredClosure:
    def test_failed_rekey_closes_with_report_not_exception(
        self, tiny_pipeline, established
    ):
        link = ManagedSecureLink(
            _FailingPipeline(tiny_pipeline),
            established,
            episode="rk-fail",
            policy=RekeyPolicy(max_records_per_epoch=1),
            n_rounds=ROUNDS,
        )
        assert link.seal("initiator", b"first") is not None
        # The second seal triggers a rekey whose establishment fails:
        # the data path answers None, never raises, and the close report
        # says exactly why.
        assert link.seal("initiator", b"second") is None
        assert link.closed
        assert link.close_report.reason == CLOSE_REKEY_FAILED
        assert link.close_report.trigger == TRIGGER_EXHAUSTION
        assert "injected-failure" in link.close_report.detail
        # Closed means closed: both halves of the data path refuse.
        assert link.seal("initiator", b"third") is None
        assert link.deliver("responder", b"anything") is None

    def test_spent_rekey_budget_closes_structurally(
        self, tiny_pipeline, established
    ):
        link = ManagedSecureLink(
            tiny_pipeline,
            established,
            episode="rk-spent",
            policy=RekeyPolicy(max_records_per_epoch=1, max_rekeys=0),
            n_rounds=ROUNDS,
        )
        assert link.seal("initiator", b"only one") is not None
        assert link.seal("initiator", b"over budget") is None
        assert link.closed
        assert link.close_report.reason == CLOSE_REKEY_BUDGET
        assert link.close_report.epoch == 0
        assert link.rekeys_completed == 0

    def test_close_is_idempotent_and_validated(self, tiny_pipeline, established):
        link = ManagedSecureLink(
            tiny_pipeline, established, episode="rk-close", n_rounds=ROUNDS
        )
        first = link.close(CLOSE_BY_PEER, detail="peer said bye")
        second = link.close(CLOSE_REKEY_FAILED)  # ignored: already closed
        assert first is second
        assert link.close_report.reason == CLOSE_BY_PEER
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            link.close("made-up-reason")

    def test_policy_validates_against_channel_bound(
        self, tiny_pipeline, established
    ):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ManagedSecureLink(
                tiny_pipeline,
                established,
                episode="rk-bad",
                policy=RekeyPolicy(max_records_per_epoch=2**21),
                max_sequence=2**20,
            )


class TestRekeyUnderFaults:
    def test_rekey_under_faults_and_adversary_is_structured(
        self, tiny_pipeline, established
    ):
        # A Gilbert-Elliott lossy link plus a syndrome-tampering
        # adversary attack every rekey establishment.  The contract is
        # not that rekeys succeed -- it is that whatever happens is
        # structured: completed rekeys are recorded, failure closes with
        # a taxonomized report, and the nonce ledger stays clean.
        fault_plan = FaultPlan(
            loss=LossConfig(rate=0.15, mean_burst=2.0),
            messages=MessageFaultConfig(drop_rate=0.05, duplicate_rate=0.05),
        )
        adversary_plan = AdversaryPlan(syndrome_tamper_rate=0.1)
        ledger = NonceLedger()
        link = ManagedSecureLink(
            tiny_pipeline,
            established,
            episode="rk-faulted",
            policy=RekeyPolicy(max_records_per_epoch=4, grace_opens=2),
            ledger=ledger,
            fault_plan=fault_plan,
            adversary_plan=adversary_plan,
            n_rounds=ROUNDS,
        )
        delivered = 0
        for i in range(20):
            wire = link.seal("initiator", f"msg-{i}".encode())
            if wire is None:
                break
            outcome = link.deliver("responder", wire)
            if outcome is None:
                break
            if outcome.ok:
                delivered += 1
        assert link.rekeys_completed >= 1 or link.closed
        if link.closed:
            assert link.close_report.reason in CLOSE_REASONS
            assert link.close_report.trigger in REKEY_TRIGGERS
        for event in link.rekey_events:
            assert event.trigger in REKEY_TRIGGERS
            assert event.attempts >= 1
        assert delivered >= 4  # epoch 0 at minimum carried its traffic
        assert ledger.ok  # no nonce reused across any epoch of the run

    def test_ledger_threads_through_completed_rekeys(
        self, tiny_pipeline, established
    ):
        for i in range(SEARCH):
            ledger = NonceLedger()
            link = ManagedSecureLink(
                tiny_pipeline,
                established,
                episode=f"rk-ledger-{i}",
                policy=RekeyPolicy(max_records_per_epoch=2),
                ledger=ledger,
                n_rounds=ROUNDS,
            )
            for j in range(6):  # crosses at least two epoch boundaries
                wire = link.seal("initiator", f"m{j}".encode())
                if wire is None:
                    break
                link.deliver("responder", wire)
            if link.closed:
                continue
            assert link.rekeys_completed >= 2
            assert ledger.total_seals >= 6
            assert ledger.ok
            return
        pytest.fail("no run with two completed rekeys found")
