"""Property-based (seeded random) tests for fault and message primitives.

Two families of properties:

- :class:`~repro.faults.messages.LossyMessageChannel` conservation laws
  under arbitrary drop/duplicate/reorder compositions -- no message is
  ever invented, dropped messages never arrive, and the arrival
  multiset is exactly what the counters claim;
- :class:`~repro.core.session.SyndromeMessage` authentication -- the MAC
  round-trips on the honest body and rejects *every* single-bit tamper,
  at each bit position of the serialized body and of the tag itself.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.session import SyndromeMessage
from repro.faults.messages import LossyMessageChannel
from repro.faults.plan import MessageFaultConfig
from repro.reconciliation.mac import MAC_BYTES, compute_mac, verify_mac


def random_config(rng) -> MessageFaultConfig:
    """One seeded random drop/duplicate/reorder composition."""
    return MessageFaultConfig(
        drop_rate=float(rng.uniform(0.0, 0.6)) if rng.random() < 0.7 else 0.0,
        duplicate_rate=float(rng.uniform(0.0, 0.6)) if rng.random() < 0.7 else 0.0,
        reorder_rate=float(rng.uniform(0.0, 0.6)) if rng.random() < 0.7 else 0.0,
    )


class TestLossyChannelProperties:
    N_TRIALS = 50
    N_MESSAGES = 40

    def run_stream(self, seed):
        """Push a numbered stream through one random channel."""
        rng = np.random.default_rng([101, seed])
        config = random_config(rng)
        channel = LossyMessageChannel(config, rng)
        sent = list(range(self.N_MESSAGES))
        arrived = []
        for message in sent:
            arrived.extend(channel.deliver(message))
        arrived.extend(channel.flush())
        return config, channel, sent, arrived

    def test_conservation_laws(self):
        for seed in range(self.N_TRIALS):
            config, channel, sent, arrived = self.run_stream(seed)
            # Nothing is invented: every arrival was sent.
            assert set(arrived) <= set(sent)
            # Multiset accounting: each message arrives 0, 1 or 2 times,
            # and the totals match the channel's own counters exactly.
            counts = np.bincount(arrived, minlength=self.N_MESSAGES)
            assert counts.max(initial=0) <= 2
            assert channel.transmitted == self.N_MESSAGES
            assert len(arrived) == (
                self.N_MESSAGES - channel.dropped + channel.duplicated
            )
            # After flush nothing is held back.
            assert channel.flush() == []

    def test_null_config_is_identity(self):
        rng = np.random.default_rng(0)
        channel = LossyMessageChannel(MessageFaultConfig(), rng)
        sent = list(range(20))
        arrived = []
        for message in sent:
            arrived.extend(channel.deliver(message))
        arrived.extend(channel.flush())
        assert arrived == sent

    def test_drop_only_preserves_order(self):
        for seed in range(self.N_TRIALS):
            rng = np.random.default_rng([103, seed])
            config = MessageFaultConfig(drop_rate=float(rng.uniform(0.1, 0.6)))
            channel = LossyMessageChannel(config, rng)
            arrived = []
            for message in range(self.N_MESSAGES):
                arrived.extend(channel.deliver(message))
            arrived.extend(channel.flush())
            assert arrived == sorted(arrived)

    def test_reorder_displaces_by_at_most_one_delivery(self):
        # The reorderer holds back at most one message, so an arrival may
        # trail its successor but never by more than one position swap.
        for seed in range(self.N_TRIALS):
            rng = np.random.default_rng([107, seed])
            config = MessageFaultConfig(reorder_rate=float(rng.uniform(0.1, 0.9)))
            channel = LossyMessageChannel(config, rng)
            arrived = []
            for message in range(self.N_MESSAGES):
                arrived.extend(channel.deliver(message))
            arrived.extend(channel.flush())
            assert sorted(arrived) == list(range(self.N_MESSAGES))
            displacement = np.abs(np.asarray(arrived) - np.arange(len(arrived)))
            assert displacement.max(initial=0) <= 1

    def test_channel_is_seed_deterministic(self):
        _, _, _, first = self.run_stream(11)
        _, _, _, second = self.run_stream(11)
        assert first == second


class TestSyndromeMacProperties:
    @pytest.fixture(scope="class")
    def authentic(self):
        rng = np.random.default_rng(42)
        key_bits = rng.integers(0, 2, size=32).astype(np.uint8)
        message = SyndromeMessage(
            block_index=3,
            session_nonce=rng.bytes(8),
            syndrome=rng.normal(0.0, 1.0, size=12),
            mac=b"",
        )
        message = dataclasses.replace(
            message, mac=compute_mac(key_bits, message.body())
        )
        return key_bits, message

    def test_honest_round_trip_verifies(self, authentic):
        key_bits, message = authentic
        assert len(message.mac) == MAC_BYTES
        assert verify_mac(key_bits, message.body(), message.mac)

    def test_every_body_bit_flip_is_rejected(self, authentic):
        key_bits, message = authentic
        body = message.body()
        for byte_index in range(len(body)):
            for bit in range(8):
                tampered = bytearray(body)
                tampered[byte_index] ^= 1 << bit
                assert not verify_mac(key_bits, bytes(tampered), message.mac), (
                    f"bit {bit} of byte {byte_index} flipped undetected"
                )

    def test_every_tag_bit_flip_is_rejected(self, authentic):
        key_bits, message = authentic
        body = message.body()
        for byte_index in range(MAC_BYTES):
            for bit in range(8):
                tampered = bytearray(message.mac)
                tampered[byte_index] ^= 1 << bit
                assert not verify_mac(key_bits, body, bytes(tampered))

    def test_wrong_key_is_rejected(self, authentic):
        key_bits, message = authentic
        wrong = key_bits.copy()
        wrong[0] ^= 1
        assert not verify_mac(wrong, message.body(), message.mac)

    def test_body_binds_nonce_and_block_index(self, authentic):
        key_bits, message = authentic
        moved = dataclasses.replace(message, block_index=message.block_index + 1)
        assert not verify_mac(key_bits, moved.body(), message.mac)
        stale = dataclasses.replace(message, session_nonce=b"\x00" * 8)
        assert not verify_mac(key_bits, stale.body(), message.mac)
