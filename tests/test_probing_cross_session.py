"""Pinned-seed equivalence of the cross-session probing fast path.

:func:`run_fastpath_group` stacks a whole batch of fault-free sessions
into ``[n_sessions, n_rounds, n_samples]`` grids so the channel's
trig-heavy fading evaluation and the register-reading pipeline run once
for the group.  Sharing work across sessions must never change a single
bit of any session's trace: these tests build each session twice from
the same seed (fresh channel objects both times, so lazy caches grow
under each path's own query pattern) and compare the grouped trace
against the single-session fast path with exact equality.

The same contract is pinned one layer up for
:meth:`KeyAgreementPipeline.collect_traces` versus
:meth:`~KeyAgreementPipeline.collect_trace`.
"""

import numpy as np
import pytest

from repro.channel.interference import InterferenceSource
from repro.channel.scenario import ScenarioName
from repro.exceptions import ConfigurationError
from repro.faults.link import LinkFaultModel
from repro.faults.plan import FaultPlan
from repro.lora.airtime import LoRaPHYConfig
from repro.probing.protocol import run_fastpath_group

from tests.test_probing_vectorized import (
    assert_traces_bit_identical,
    build_setup,
)


def build_group(seeds_list, **setup_kwargs):
    """Fresh protocols + seed factories, one per session seed."""
    protocols, factories = [], []
    for seed in seeds_list:
        protocol, factory, _ = build_setup(seed, **setup_kwargs)
        protocols.append(protocol)
        factories.append(factory)
    return protocols, factories


def assert_group_matches_singles(
    seeds_list, n_rounds=10, start_time_s=0.0, **setup_kwargs
):
    """Grouped traces must be bit-identical to per-session fast paths."""
    protocols, factories = build_group(seeds_list, **setup_kwargs)
    group_traces = run_fastpath_group(
        protocols, n_rounds, factories, start_time_s=start_time_s
    )
    assert len(group_traces) == len(seeds_list)
    for seed, group_trace in zip(seeds_list, group_traces):
        single_protocol, single_seeds, _ = build_setup(seed, **setup_kwargs)
        single_trace = single_protocol._run_vectorized(
            n_rounds, single_seeds, start_time_s=start_time_s
        )
        assert_traces_bit_identical(single_trace, group_trace)


class TestGroupBitIdentity:
    @pytest.mark.parametrize("scenario", list(ScenarioName))
    def test_all_scenarios(self, scenario):
        assert_group_matches_singles([101, 102, 103], scenario=scenario)

    def test_group_of_one(self):
        assert_group_matches_singles([42])

    def test_odd_sized_group(self):
        assert_group_matches_singles([1, 2, 3, 4, 5], n_rounds=6)

    def test_nonzero_start_time(self):
        assert_group_matches_singles([7, 8, 9], start_time_s=17.3)

    def test_custom_gap(self):
        assert_group_matches_singles([5, 6], inter_round_gap_s=0.75)

    def test_per_session_interference(self):
        # One session hears a jammer, its neighbours do not; the stacked
        # evaluation must keep the interference strictly per-row.
        def make_setups():
            quiet_a, seeds_a, _ = build_setup(31, scenario=ScenarioName.V2I_URBAN)
            noisy, seeds_b, _ = build_setup(
                32,
                scenario=ScenarioName.V2I_URBAN,
                interference=[
                    InterferenceSource(
                        (40.0, 5.0), eirp_dbm=0.0, mean_on_s=0.5, mean_off_s=1.0, seed=9
                    )
                ],
            )
            quiet_b, seeds_c, _ = build_setup(33, scenario=ScenarioName.V2I_URBAN)
            return [quiet_a, noisy, quiet_b], [seeds_a, seeds_b, seeds_c]

        protocols, factories = make_setups()
        group_traces = run_fastpath_group(protocols, 8, factories)
        singles, single_factories = make_setups()
        for protocol, factory, group_trace in zip(singles, single_factories, group_traces):
            assert_traces_bit_identical(
                protocol._run_vectorized(8, factory), group_trace
            )


class TestFallback:
    def test_mixed_phy_falls_back_per_session(self):
        # Different spreading factors cannot share a timeline; the group
        # runner must quietly hand each session to ``protocol.run``.
        sf7, seeds_a, _ = build_setup(3)
        sf9, seeds_b, _ = build_setup(
            4, phy=LoRaPHYConfig(spreading_factor=9)
        )
        group_traces = run_fastpath_group([sf7, sf9], 5, [seeds_a, seeds_b])
        single_sf7, single_seeds_a, _ = build_setup(3)
        single_sf9, single_seeds_b, _ = build_setup(
            4, phy=LoRaPHYConfig(spreading_factor=9)
        )
        assert_traces_bit_identical(
            single_sf7.run(5, single_seeds_a), group_traces[0]
        )
        assert_traces_bit_identical(
            single_sf9.run(5, single_seeds_b), group_traces[1]
        )

    def test_fault_model_falls_back_per_session(self):
        def faulty_setup(seed):
            protocol, factory, _ = build_setup(seed)
            protocol.fault_model = LinkFaultModel(
                FaultPlan.lossy(0.3, mean_burst=2.0, snr_dependent=False), factory
            )
            return protocol, factory

        protocol_a, seeds_a = faulty_setup(11)
        protocol_b, seeds_b = faulty_setup(12)
        group_traces = run_fastpath_group([protocol_a, protocol_b], 6, [seeds_a, seeds_b])
        ref_a, ref_seeds_a = faulty_setup(11)
        ref_b, ref_seeds_b = faulty_setup(12)
        assert_traces_bit_identical(ref_a.run(6, ref_seeds_a), group_traces[0])
        assert_traces_bit_identical(ref_b.run(6, ref_seeds_b), group_traces[1])

    def test_fast_path_disabled_falls_back(self):
        slow, seeds_a, _ = build_setup(21, fast_path=False)
        fast, seeds_b, _ = build_setup(22)
        group_traces = run_fastpath_group([slow, fast], 4, [seeds_a, seeds_b])
        ref_slow, ref_seeds_a, _ = build_setup(21, fast_path=False)
        ref_fast, ref_seeds_b, _ = build_setup(22)
        assert_traces_bit_identical(ref_slow.run(4, ref_seeds_a), group_traces[0])
        assert_traces_bit_identical(ref_fast.run(4, ref_seeds_b), group_traces[1])


class TestValidation:
    def test_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            run_fastpath_group([], 4, [])

    def test_rejects_mismatched_seed_count(self):
        protocol, factory, _ = build_setup(1)
        with pytest.raises(ConfigurationError):
            run_fastpath_group([protocol], 4, [factory, factory])

    def test_rejects_nonpositive_rounds(self):
        protocol, factory, _ = build_setup(1)
        with pytest.raises(ConfigurationError):
            run_fastpath_group([protocol], 0, [factory])


class TestPipelineCollectTraces:
    def test_matches_collect_trace(self, tiny_pipeline):
        labels = [f"xsession-{i}" for i in range(4)]
        group_traces = tiny_pipeline.collect_traces(labels, n_rounds=12)
        for label, group_trace in zip(labels, group_traces):
            single_trace = tiny_pipeline.collect_trace(label, n_rounds=12)
            assert_traces_bit_identical(single_trace, group_trace)

    def test_default_rounds(self, tiny_pipeline):
        traces = tiny_pipeline.collect_traces(["xsession-d"])
        assert traces[0].n_rounds == tiny_pipeline.config.rounds_per_episode

    def test_rejects_empty_episode_list(self, tiny_pipeline):
        with pytest.raises(ConfigurationError):
            tiny_pipeline.collect_traces([])
