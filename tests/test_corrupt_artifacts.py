"""Corrupted / mismatched persisted files raise typed errors everywhere.

One matrix: {model, reconciler, probe trace, dataset} x {truncated file,
tampered payload, wrong architecture or kind}.  Silent partial loads are
also covered: stored weights matching no layer must be rejected.
"""

import numpy as np
import pytest

from repro.exceptions import (
    ArtifactMismatchError,
    ConfigurationError,
    CorruptArtifactError,
)
from repro.core.model import PredictionQuantizationModel
from repro.lora.airtime import LoRaPHYConfig
from repro.probing.dataset import KeyGenDataset
from repro.probing.trace import ProbeTrace
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.utils.artifact import HEADER_KEY


def truncate(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def tamper(path):
    """Flip one payload array value, keeping the container well-formed."""
    loaded = dict(np.load(path).items())
    for key in sorted(loaded):
        if key == HEADER_KEY:
            continue
        value = np.array(loaded[key])
        if value.size and value.dtype != np.bool_:
            value.flat[0] = value.flat[0] + 1
            loaded[key] = value
            break
    np.savez_compressed(path, **loaded)


@pytest.fixture(scope="module")
def trained_model(tmp_path_factory):
    model = PredictionQuantizationModel(
        seq_len=8, hidden_units=4, key_bits=16, seed=1
    )
    rng = np.random.default_rng(0)
    alice_raw = rng.normal(-80.0, 5.0, size=(16, 8))
    bob_raw = alice_raw + rng.normal(0.0, 1.0, size=(16, 8))

    def norm(rows):
        mean = rows.mean(axis=1, keepdims=True)
        std = np.maximum(rows.std(axis=1, keepdims=True), 1e-6)
        return (rows - mean) / std

    dataset = KeyGenDataset(
        alice=norm(alice_raw), bob=norm(bob_raw),
        alice_raw=alice_raw, bob_raw=bob_raw,
    )
    model.fit(dataset, epochs=1, batch_size=8)
    return model


@pytest.fixture(scope="module")
def trained_reconciler():
    reconciler = AutoencoderReconciliation(
        key_bits=16, code_dim=8, decoder_units=8, decoder_hidden_layers=1, seed=2
    )
    reconciler.fit(n_samples=128, epochs=1, batch_size=64)
    return reconciler


@pytest.fixture
def trace():
    rng = np.random.default_rng(4)
    return ProbeTrace(
        phy=LoRaPHYConfig(),
        alice_rssi=rng.normal(-90, 3, size=(6, 4)),
        bob_rssi=rng.normal(-90, 3, size=(6, 4)),
        round_start_s=np.arange(6.0),
        valid=np.ones(6, dtype=bool),
    )


@pytest.fixture
def dataset():
    rng = np.random.default_rng(5)
    rows = rng.normal(size=(4, 8))
    return KeyGenDataset(alice=rows, bob=rows, alice_raw=rows, bob_raw=rows)


class TestModelArtifacts:
    def test_truncated(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        truncate(path)
        fresh = trained_model.clone_architecture(seed=0)
        with pytest.raises(CorruptArtifactError):
            fresh.load(path)

    def test_tampered(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        tamper(path)
        fresh = trained_model.clone_architecture(seed=0)
        with pytest.raises(CorruptArtifactError, match="SHA-256"):
            fresh.load(path)

    def test_wrong_architecture(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        other = PredictionQuantizationModel(
            seq_len=8, hidden_units=12, key_bits=16, seed=0
        )
        with pytest.raises(ArtifactMismatchError, match="hidden_units"):
            other.load(path)

    def test_wrong_kind(self, trained_model, dataset, tmp_path):
        path = tmp_path / "not-a-model.npz"
        dataset.save(path)
        fresh = trained_model.clone_architecture(seed=0)
        with pytest.raises(ArtifactMismatchError, match="keygen-dataset"):
            fresh.load(path)

    def test_round_trip_still_works(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        fresh = trained_model.clone_architecture(seed=0)
        fresh.load(path)
        probe = np.zeros((1, trained_model.seq_len))
        np.testing.assert_array_equal(
            fresh.predict_bit_probabilities(probe),
            trained_model.predict_bit_probabilities(probe),
        )
        assert fresh.training_stats == trained_model.training_stats


class TestReconcilerArtifacts:
    def fresh(self):
        return AutoencoderReconciliation(
            key_bits=16, code_dim=8, decoder_units=8,
            decoder_hidden_layers=1, seed=7,
        )

    def test_truncated(self, trained_reconciler, tmp_path):
        path = tmp_path / "reconciler.npz"
        trained_reconciler.save(path)
        truncate(path)
        with pytest.raises(CorruptArtifactError):
            self.fresh().load(path)

    def test_tampered(self, trained_reconciler, tmp_path):
        path = tmp_path / "reconciler.npz"
        trained_reconciler.save(path)
        tamper(path)
        with pytest.raises(CorruptArtifactError, match="SHA-256"):
            self.fresh().load(path)

    def test_wrong_architecture(self, trained_reconciler, tmp_path):
        path = tmp_path / "reconciler.npz"
        trained_reconciler.save(path)
        other = AutoencoderReconciliation(
            key_bits=16, code_dim=12, decoder_units=8,
            decoder_hidden_layers=1, seed=7,
        )
        with pytest.raises(ArtifactMismatchError, match="code_dim"):
            other.load(path)

    def test_round_trip_still_works(self, trained_reconciler, tmp_path):
        path = tmp_path / "reconciler.npz"
        trained_reconciler.save(path)
        fresh = self.fresh()
        fresh.load(path)
        key = np.zeros(16, dtype=np.uint8)
        np.testing.assert_allclose(
            fresh.bob_syndrome(key), trained_reconciler.bob_syndrome(key)
        )


class TestTraceArtifacts:
    def test_truncated(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        truncate(path)
        with pytest.raises(CorruptArtifactError):
            ProbeTrace.load(path)

    def test_tampered(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        tamper(path)
        with pytest.raises(CorruptArtifactError, match="SHA-256"):
            ProbeTrace.load(path)

    def test_wrong_kind(self, dataset, tmp_path):
        path = tmp_path / "not-a-trace.npz"
        dataset.save(path)
        with pytest.raises(ArtifactMismatchError, match="keygen-dataset"):
            ProbeTrace.load(path)


class TestDatasetArtifacts:
    def test_truncated(self, dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        dataset.save(path)
        truncate(path)
        with pytest.raises(CorruptArtifactError):
            KeyGenDataset.load(path)

    def test_tampered(self, dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        dataset.save(path)
        tamper(path)
        with pytest.raises(CorruptArtifactError, match="SHA-256"):
            KeyGenDataset.load(path)

    def test_wrong_kind(self, trace, tmp_path):
        path = tmp_path / "not-a-dataset.npz"
        trace.save(path)
        with pytest.raises(ArtifactMismatchError, match="probe-trace"):
            KeyGenDataset.load(path)

    def test_legacy_dataset_loads_with_warning(self, dataset, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path, alice=dataset.alice, bob=dataset.bob,
            alice_raw=dataset.alice_raw, bob_raw=dataset.bob_raw,
        )
        with pytest.warns(UserWarning, match="legacy"):
            loaded = KeyGenDataset.load(path)
        np.testing.assert_array_equal(loaded.alice, dataset.alice)


class TestNoSilentPartialLoads:
    def test_orphan_stored_weights_rejected(self):
        from repro.nn.layers.dense import Dense
        from repro.nn.serialization import assign_weights, weight_arrays

        deep = [Dense(4, seed=0, name="a"), Dense(2, seed=0, name="b")]
        x = np.zeros((1, 3))
        deep[1].forward(deep[0].forward(x))
        stored = weight_arrays(deep)

        shallow = [Dense(4, seed=1, name="a")]
        shallow[0].forward(x)
        with pytest.raises(ConfigurationError, match="match no layer"):
            assign_weights(shallow, stored)

    def test_matching_weights_still_assign(self):
        from repro.nn.layers.dense import Dense
        from repro.nn.serialization import assign_weights, weight_arrays

        src = [Dense(4, seed=0, name="a")]
        src[0].forward(np.zeros((1, 3)))
        dst = [Dense(4, seed=1, name="a")]
        dst[0].forward(np.zeros((1, 3)))
        assign_weights(dst, weight_arrays(src))
        np.testing.assert_array_equal(
            dst[0].parameters["kernel"], src[0].parameters["kernel"]
        )
