"""Cross-module property-based tests on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.privacy.amplification import amplify
from repro.quantization.base import consensus_mask
from repro.quantization.guard_band import GuardBandQuantizer
from repro.quantization.multibit import MultiBitQuantizer
from repro.reconciliation.bloom import PositionPreservingBloomFilter
from repro.reconciliation.cascade import CascadeReconciliation
from repro.reconciliation.compressed_sensing import CompressedSensingReconciliation
from repro.utils.bits import hamming_distance, random_bits


class TestBloomInvariants:
    @given(st.integers(0, 2**31), st.binary(min_size=1, max_size=16))
    @settings(max_examples=30)
    def test_transform_is_a_bijection(self, seed, salt):
        bloom = PositionPreservingBloomFilter(64, salt=salt)
        key = random_bits(64, seed)
        np.testing.assert_array_equal(bloom.inverse(bloom.transform(key)), key)

    @given(
        st.integers(0, 2**31),
        st.sets(st.integers(0, 63), min_size=0, max_size=20),
        st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=30)
    def test_mismatch_count_exactly_preserved(self, seed, positions, salt):
        bloom = PositionPreservingBloomFilter(64, salt=salt)
        a = random_bits(64, seed)
        b = a.copy()
        for position in positions:
            b[position] ^= 1
        assert hamming_distance(bloom.transform(a), bloom.transform(b)) == len(positions)


class TestQuantizerInvariants:
    @given(st.integers(0, 2**31), st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=30)
    def test_guard_band_bits_match_kept_count(self, seed, alpha):
        window = np.random.default_rng(seed).normal(size=64)
        result = GuardBandQuantizer(alpha=alpha).quantize(window)
        assert result.bits.size == result.n_kept

    @given(st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_consensus_mask_never_grows(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(size=32) < 0.7
        b = rng.uniform(size=32) < 0.7
        joint = consensus_mask(a, b)
        assert joint.sum() <= min(a.sum(), b.sum())

    @given(st.integers(0, 2**31), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_multibit_bit_budget(self, seed, bits_per_sample):
        window = np.random.default_rng(seed).normal(size=64)
        quantizer = MultiBitQuantizer(bits_per_sample, fixed_thresholds=True)
        result = quantizer.quantize(window)
        assert result.bits.size == bits_per_sample * result.n_kept


class TestReconciliationInvariants:
    @given(st.integers(0, 2**31), st.integers(0, 8))
    @settings(max_examples=15, deadline=None)
    def test_cascade_output_is_binary_and_never_worse(self, seed, flips):
        rng = np.random.default_rng(seed)
        bob = random_bits(96, seed)
        alice = bob.copy()
        for position in rng.choice(96, size=flips, replace=False):
            alice[position] ^= 1
        outcome = CascadeReconciliation(seed=seed).reconcile(alice, bob)
        assert set(np.unique(outcome.alice_key)).issubset({0, 1})
        assert outcome.agreement >= 1.0 - flips / 96

    @given(st.integers(0, 2**31), st.integers(0, 2))
    @settings(max_examples=15, deadline=None)
    def test_cs_corrects_within_sparsity_budget(self, seed, flips):
        rng = np.random.default_rng(seed)
        bob = random_bits(64, seed)
        alice = bob.copy()
        for position in rng.choice(64, size=flips, replace=False):
            alice[position] ^= 1
        outcome = CompressedSensingReconciliation(seed=0).reconcile(alice, bob)
        assert outcome.success


class TestAmplificationInvariants:
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_different_inputs_never_collide(self, seed_a, seed_b):
        a = random_bits(256, seed_a)
        b = random_bits(256, seed_b)
        if np.array_equal(a, b):
            assert np.array_equal(amplify(a), amplify(b))
        else:
            assert not np.array_equal(amplify(a), amplify(b))
