"""Unit tests for the authenticated session state machine."""

import pytest

from repro.core.statemachine import (
    ABORT_MAC,
    ABORT_REASONS,
    ABORT_REPLAY,
    SessionAbort,
    SessionState,
    SessionStateMachine,
)
from repro.exceptions import ProtocolError


class TestTransitions:
    def test_happy_path(self):
        machine = SessionStateMachine()
        for state in (
            SessionState.EXTRACTING,
            SessionState.RECONCILING,
            SessionState.CONFIRMING,
            SessionState.COMPLETE,
        ):
            machine.advance(state)
        assert machine.terminal
        assert not machine.aborted
        assert machine.history[0] is SessionState.INIT
        assert machine.history[-1] is SessionState.COMPLETE

    def test_extracting_may_complete_directly(self):
        machine = SessionStateMachine()
        machine.advance(SessionState.EXTRACTING)
        machine.advance(SessionState.COMPLETE)
        assert machine.terminal

    def test_illegal_transition_raises(self):
        machine = SessionStateMachine()
        with pytest.raises(ProtocolError, match="illegal session transition"):
            machine.advance(SessionState.CONFIRMING)

    def test_terminal_states_are_final(self):
        machine = SessionStateMachine()
        machine.advance(SessionState.EXTRACTING)
        machine.advance(SessionState.COMPLETE)
        with pytest.raises(ProtocolError):
            machine.advance(SessionState.ABORTED)


class TestAbort:
    def test_abort_from_any_nonterminal_state(self):
        for prefix in ([], [SessionState.EXTRACTING],
                       [SessionState.EXTRACTING, SessionState.RECONCILING]):
            machine = SessionStateMachine()
            for state in prefix:
                machine.advance(state)
            record = machine.abort(ABORT_REPLAY, "stale nonce")
            assert machine.aborted and machine.terminal
            assert record.reason == ABORT_REPLAY
            assert record.state == (prefix[-1].value if prefix else "init")

    def test_abort_is_idempotent_first_wins(self):
        machine = SessionStateMachine()
        machine.advance(SessionState.EXTRACTING)
        first = machine.abort(ABORT_REPLAY, "first")
        second = machine.abort(ABORT_MAC, "second")
        assert second is first
        assert machine.abort_record.reason == ABORT_REPLAY
        assert machine.abort_record.detail == "first"

    def test_unknown_abort_reason_rejected(self):
        with pytest.raises(ProtocolError, match="unknown abort reason"):
            SessionAbort(reason="not-a-reason", detail="x", state="init")

    def test_taxonomy_is_closed(self):
        # 4 protocol slugs from the original machine plus desync, plus
        # the 8 server-path slugs (liveness, transport, admission,
        # supervisor), the secure data-phase slug and the crash-recovery
        # slug; tests/test_statemachine_matrix.py proves every abort
        # event maps into this set.
        assert len(ABORT_REASONS) == 15
        assert len(set(ABORT_REASONS)) == 15
        for reason in ABORT_REASONS:
            SessionAbort(reason=reason, detail="d", state="reconciling")
