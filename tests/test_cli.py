"""Tests for the command-line interface (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_establish_defaults(self):
        args = build_parser().parse_args(["establish"])
        assert args.scenario.value == "v2v-urban"
        assert args.episodes == 200

    def test_scenario_parsing(self):
        args = build_parser().parse_args(["establish", "--scenario", "v2i-rural"])
        assert args.scenario.value == "v2i-rural"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["establish", "--scenario", "v2x-mars"])

    def test_attack_requires_attacker(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack"])


class TestCommands:
    def test_validate_channel_passes(self, capsys):
        assert main(["validate-channel", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rayleigh" in out

    def test_experiments_forwarding(self, capsys):
        assert main(["experiments", "fig04"]) == 0
        assert "fig04" in capsys.readouterr().out
