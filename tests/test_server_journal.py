"""Seeded fuzz of the write-ahead journal's torn-tail recovery.

The journal's recovery contract is that *any* damage to the file's tail
-- a crash mid-write truncating the final record at an arbitrary byte,
a bit flipped anywhere inside it, garbage appended after it -- lands
recovery on the last fully-checksummed record: every record before the
damage replays intact, nothing after it is trusted, and the truncation
itself is atomic (tempfile + fsync + ``os.replace``).  The sweep walks
every byte offset of the final record, so a failure names the exact cut
or flip that produced it.
"""

import json
import random

import pytest

from repro.server.journal import (
    HEADER_BYTES,
    JOURNAL_FILENAME,
    JOURNAL_MAGIC,
    MAX_RECORD_BYTES,
    SessionJournal,
    encode_record,
    recover_journal,
    replay_journal,
)

TORN_REASONS = (
    "magic",
    "truncated-header",
    "truncated-body",
    "checksum-mismatch",
    "oversized-record",
    "undecodable-body",
)


def seeded_record(rng: random.Random) -> dict:
    """One random-but-valid journal-shaped record."""
    return {
        "t": rng.choice(["admit", "outcome", "nonce", "deliver"]),
        "token": f"{rng.randrange(2**32):08x}",
        "sid": f"dev-{rng.randrange(1000)}",
        "blob": rng.randbytes(rng.randrange(48)).hex(),
    }


def write_journal(path, records) -> bytes:
    """A clean journal file holding ``records``; returns its bytes."""
    data = JOURNAL_MAGIC + b"".join(encode_record(r) for r in records)
    path.write_bytes(data)
    return data


class TestCleanReplay:
    def test_missing_and_empty_files_replay_to_nothing(self, tmp_path):
        missing = replay_journal(tmp_path / "absent.wal")
        assert missing.records == [] and missing.clean
        empty = tmp_path / "empty.wal"
        empty.write_bytes(b"")
        replay = replay_journal(empty)
        assert replay.records == [] and replay.clean

    def test_round_trip_preserves_records_in_order(self, tmp_path):
        rng = random.Random(3)
        records = [seeded_record(rng) for _ in range(17)]
        path = tmp_path / JOURNAL_FILENAME
        write_journal(path, records)
        replay = replay_journal(path)
        assert replay.clean
        assert replay.records == records
        assert replay.valid_bytes == path.stat().st_size

    def test_bad_magic_invalidates_everything(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        data = write_journal(path, [{"t": "admit", "token": "aa"}])
        path.write_bytes(b"XX" + data[2:])
        replay = replay_journal(path)
        assert replay.torn == "magic" and replay.records == []
        recover_journal(path)
        assert path.read_bytes() == b""  # nothing trustworthy survives


class TestEveryTruncationOffset:
    def test_recovery_lands_on_the_last_whole_record(self, tmp_path):
        """Cut the final record at every byte: the prefix always survives."""
        rng = random.Random(11)
        records = [seeded_record(rng) for _ in range(5)]
        path = tmp_path / JOURNAL_FILENAME
        data = write_journal(path, records)
        final = encode_record(records[-1])
        keep = len(data) - len(final)  # end of the second-to-last record
        for cut in range(len(final)):
            path.write_bytes(data[: keep + cut])
            replay = recover_journal(path)
            assert replay.records == records[:-1], f"cut at {cut}"
            if cut > 0:
                assert replay.torn in ("truncated-header", "truncated-body")
            # Recovery truncated atomically: the file now replays clean.
            again = replay_journal(path)
            assert again.clean and again.records == records[:-1], f"cut at {cut}"
            assert path.stat().st_size == keep

    def test_recovery_is_idempotent(self, tmp_path):
        rng = random.Random(13)
        records = [seeded_record(rng) for _ in range(4)]
        path = tmp_path / JOURNAL_FILENAME
        data = write_journal(path, records)
        path.write_bytes(data[: len(data) - 3])
        first = recover_journal(path)
        second = recover_journal(path)
        assert first.records == second.records == records[:-1]
        assert second.clean


class TestEveryBitFlipOffset:
    def test_flips_in_the_final_record_never_leak_past_the_prefix(
        self, tmp_path
    ):
        """Flip one bit at every byte of the last record: the damaged
        record (and anything conceptually after it) is never trusted,
        while every record before it replays intact."""
        rng = random.Random(17)
        records = [seeded_record(rng) for _ in range(4)]
        path = tmp_path / JOURNAL_FILENAME
        data = write_journal(path, records)
        final = encode_record(records[-1])
        start = len(data) - len(final)
        for offset in range(len(final)):
            mutated = bytearray(data)
            mutated[start + offset] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(mutated))
            replay = recover_journal(path)
            assert replay.records[: len(records) - 1] == records[:-1], (
                f"flip at {offset}"
            )
            if replay.clean:
                # A flip inside the JSON body that still checksums is
                # impossible (SHA-256 guards it); a clean replay can only
                # mean the flip produced a different-but-valid record,
                # which a checksum mismatch rules out.  The only escape
                # is a flip that keeps length+checksum+body consistent --
                # never with one bit.
                pytest.fail(f"one-bit flip at {offset} went undetected")
            assert replay.torn in TORN_REASONS, f"flip at {offset}"

    def test_mid_file_corruption_invalidates_the_tail(self, tmp_path):
        rng = random.Random(19)
        records = [seeded_record(rng) for _ in range(6)]
        path = tmp_path / JOURNAL_FILENAME
        data = write_journal(path, records)
        second = encode_record(records[0])
        # Flip a bit inside record 1's body: records 0 survives, 1.. gone.
        position = len(JOURNAL_MAGIC) + len(second) + HEADER_BYTES + 2
        mutated = bytearray(data)
        mutated[position] ^= 0x10
        path.write_bytes(bytes(mutated))
        replay = recover_journal(path)
        assert replay.records == records[:1]
        assert replay.torn == "checksum-mismatch"


class TestHostileRecords:
    def test_oversized_length_prefix_is_refused(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        payload = (MAX_RECORD_BYTES + 1).to_bytes(4, "big") + b"\x00" * 12
        path.write_bytes(JOURNAL_MAGIC + payload)
        replay = replay_journal(path)
        assert replay.torn == "oversized-record" and replay.records == []

    def test_undecodable_body_with_valid_checksum_is_refused(self, tmp_path):
        import hashlib

        body = b"\xff\xfenot-json"
        blob = (
            len(body).to_bytes(4, "big")
            + hashlib.sha256(body).digest()[:8]
            + body
        )
        path = tmp_path / JOURNAL_FILENAME
        path.write_bytes(JOURNAL_MAGIC + blob)
        replay = replay_journal(path)
        assert replay.torn == "undecodable-body" and replay.records == []

    def test_encode_refuses_oversized_records(self):
        with pytest.raises(ValueError):
            encode_record({"blob": "x" * (MAX_RECORD_BYTES + 1)})


class TestSessionJournalHandle:
    def test_append_then_recover_round_trips(self, tmp_path):
        journal = SessionJournal(tmp_path, fsync="always")
        journal.recover()
        rng = random.Random(23)
        records = [seeded_record(rng) for _ in range(9)]
        for record in records:
            journal.append(record)
        assert journal.records_written == len(records)
        journal.close()
        replay = replay_journal(tmp_path / JOURNAL_FILENAME)
        assert replay.clean and replay.records == records

    def test_recover_truncates_a_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        rng = random.Random(29)
        records = [seeded_record(rng) for _ in range(3)]
        data = write_journal(path, records)
        path.write_bytes(data[:-5])  # tear the final record
        journal = SessionJournal(tmp_path, fsync="always")
        replay = journal.recover()
        assert replay.records == records[:-1]
        journal.append({"t": "outcome", "token": "post-crash"})
        journal.close()
        final = replay_journal(path)
        assert final.clean
        assert final.records == records[:-1] + [
            {"t": "outcome", "token": "post-crash"}
        ]

    def test_closed_journal_absorbs_appends(self, tmp_path):
        journal = SessionJournal(tmp_path)
        journal.recover()
        journal.close()
        journal.append({"t": "late"})  # must not raise
        assert journal.records_written == 0

    def test_invalid_policies_are_refused(self, tmp_path):
        with pytest.raises(ValueError):
            SessionJournal(tmp_path, fsync="sometimes")
        with pytest.raises(ValueError):
            SessionJournal(tmp_path, batch_records=0)

    def test_batch_mode_survives_a_clean_close(self, tmp_path):
        journal = SessionJournal(tmp_path, fsync="batch", batch_records=64)
        journal.recover()
        rng = random.Random(31)
        records = [seeded_record(rng) for _ in range(10)]
        for record in records:
            journal.append(record)  # all under one unsynced batch
        journal.close()  # close flushes
        replay = replay_journal(tmp_path / JOURNAL_FILENAME)
        assert replay.clean and replay.records == records


class TestDeterminism:
    def test_fuzz_is_deterministic_per_seed(self, tmp_path):
        def run(seed: int):
            rng = random.Random(seed)
            records = [seeded_record(rng) for _ in range(4)]
            path = tmp_path / f"journal-{seed}.wal"
            data = write_journal(path, records)
            path.write_bytes(data[: rng.randrange(len(JOURNAL_MAGIC), len(data))])
            replay = recover_journal(path)
            return json.dumps(replay.records, sort_keys=True), replay.torn

        assert run(41) == run(41)
