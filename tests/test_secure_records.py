"""The AEAD record layer: wire codec, keystream, and the tamper sweep.

The centerpiece is the exhaustive single-bit tamper sweep: every bit of a
full encoded record -- header, ciphertext and tag alike -- is flipped in
turn and delivered, and every flip must be rejected through the closed
failure taxonomy with no plaintext released.  That is the record layer's
whole contract in one test: authentication covers the entire record, and
failure never leaks.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.secure.channel import SecureChannel
from repro.secure.kdf import ChannelContext, derive_channel_keys
from repro.secure.records import (
    DIRECTION_I2R,
    DIRECTION_R2I,
    FAILURE_AUTH,
    FAILURE_TRUNCATED,
    HEADER_BYTES,
    RECORD_OVERHEAD,
    RECORD_VERSION,
    RecordDamage,
    TAG_BYTES,
    decrypt_record,
    parse_record,
    seal_record,
    verify_record,
)

MASTER = b"\x5a" * 32


@pytest.fixture()
def keys():
    return derive_channel_keys(
        MASTER, ChannelContext(session_nonce=b"\x11" * 16)
    )


class TestRecordCodec:
    def test_round_trip_preserves_all_fields(self, keys):
        record = seal_record(
            keys.initiator_send, 3, DIRECTION_I2R, 7, b"hello vehicle"
        )
        parsed = parse_record(record.encode())
        assert parsed == record
        assert parsed.epoch == 3
        assert parsed.direction == DIRECTION_I2R
        assert parsed.sequence == 7

    def test_empty_plaintext_is_legal(self, keys):
        record = seal_record(keys.initiator_send, 0, DIRECTION_I2R, 0, b"")
        assert len(record.encode()) == RECORD_OVERHEAD
        assert verify_record(keys.initiator_send, record)
        assert decrypt_record(keys.initiator_send, record) == b""

    def test_seal_validates_nonce_fields(self, keys):
        with pytest.raises(ConfigurationError):
            seal_record(keys.initiator_send, 0, 9, 0, b"x")
        with pytest.raises(ConfigurationError):
            seal_record(keys.initiator_send, 0, DIRECTION_I2R, -1, b"x")
        with pytest.raises(ConfigurationError):
            seal_record(keys.initiator_send, -1, DIRECTION_I2R, 0, b"x")

    def test_parse_rejects_structural_damage(self, keys):
        wire = seal_record(
            keys.initiator_send, 0, DIRECTION_I2R, 0, b"payload"
        ).encode()
        with pytest.raises(RecordDamage):
            parse_record(b"")  # far too short
        with pytest.raises(RecordDamage):
            parse_record(wire[: RECORD_OVERHEAD - 1])  # below fixed overhead
        with pytest.raises(RecordDamage):
            parse_record(wire[:-1])  # truncated ciphertext/tag
        with pytest.raises(RecordDamage):
            parse_record(wire + b"\x00")  # trailing garbage
        bad_version = bytes([RECORD_VERSION + 1]) + wire[1:]
        with pytest.raises(RecordDamage):
            parse_record(bad_version)

    def test_keystream_is_nonce_separated(self, keys):
        plaintext = b"same plaintext, different nonce"
        a = seal_record(keys.initiator_send, 0, DIRECTION_I2R, 0, plaintext)
        b = seal_record(keys.initiator_send, 0, DIRECTION_I2R, 1, plaintext)
        c = seal_record(keys.initiator_send, 1, DIRECTION_I2R, 0, plaintext)
        assert a.ciphertext != b.ciphertext
        assert a.ciphertext != c.ciphertext
        assert b.ciphertext != c.ciphertext

    def test_directions_use_independent_keys(self, keys):
        record = seal_record(keys.initiator_send, 0, DIRECTION_I2R, 0, b"x")
        assert verify_record(keys.initiator_send, record)
        assert not verify_record(keys.responder_send, record)

    def test_multiblock_plaintext_round_trips(self, keys):
        plaintext = bytes(range(256)) * 3  # spans many keystream blocks
        record = seal_record(keys.initiator_send, 0, DIRECTION_I2R, 5, plaintext)
        assert decrypt_record(keys.initiator_send, record) == plaintext


class TestExhaustiveTamperSweep:
    """Flip every bit of a full record; nothing may survive, nothing leak."""

    PLAINTEXT = b"attack at dawn"

    def test_every_single_bit_flip_is_rejected_without_plaintext(self, keys):
        sender = SecureChannel(keys, "initiator")
        receiver = SecureChannel(keys, "responder")
        wire = sender.seal(self.PLAINTEXT)
        assert len(wire) == RECORD_OVERHEAD + len(self.PLAINTEXT)

        failures = {}
        for bit in range(len(wire) * 8):
            tampered = bytearray(wire)
            tampered[bit // 8] ^= 1 << (bit % 8)
            outcome = receiver.open(bytes(tampered))
            assert not outcome.ok, f"bit flip {bit} was accepted"
            assert outcome.plaintext is None, f"bit flip {bit} leaked plaintext"
            assert outcome.failure in (FAILURE_AUTH, FAILURE_TRUNCATED), (
                f"bit flip {bit} escaped the tamper taxonomy: {outcome.failure}"
            )
            failures[outcome.failure] = failures.get(outcome.failure, 0) + 1

        # Every flip was counted, none was delivered...
        assert sum(failures.values()) == len(wire) * 8
        assert receiver.opened == 0
        assert receiver.total_open_failures == len(wire) * 8
        # ...and both taxonomy branches were exercised: in-format tampering
        # fails authentication, format-breaking tampering fails parsing.
        assert failures[FAILURE_AUTH] > 0
        assert failures[FAILURE_TRUNCATED] > 0

        # The pristine record still opens: only the untouched bytes pass.
        outcome = receiver.open(wire)
        assert outcome.ok
        assert outcome.plaintext == self.PLAINTEXT

    def test_tag_flips_specifically_fail_authentication(self, keys):
        # The tag is the last TAG_BYTES; every flip there is auth-failed
        # (the record is structurally intact, only the MAC disagrees).
        sender = SecureChannel(keys, "initiator")
        receiver = SecureChannel(keys, "responder")
        wire = sender.seal(b"tag sweep")
        for bit in range((len(wire) - TAG_BYTES) * 8, len(wire) * 8):
            tampered = bytearray(wire)
            tampered[bit // 8] ^= 1 << (bit % 8)
            outcome = receiver.open(bytes(tampered))
            assert outcome.failure == FAILURE_AUTH
            assert outcome.plaintext is None

    def test_swapping_ciphertext_between_records_fails(self, keys):
        # Cut-and-paste across records: headers authenticate ciphertext.
        a = seal_record(keys.initiator_send, 0, DIRECTION_I2R, 0, b"aaaaaaaa")
        b = seal_record(keys.initiator_send, 0, DIRECTION_I2R, 1, b"bbbbbbbb")
        spliced = a.header_bytes() + b.ciphertext + a.tag
        receiver = SecureChannel(keys, "responder")
        outcome = receiver.open(spliced)
        assert not outcome.ok
        assert outcome.failure == FAILURE_AUTH
        assert outcome.plaintext is None

    def test_reflected_record_is_a_forgery(self, keys):
        # A record bounced back at its own sender fails authentication:
        # the receive direction is keyed independently.
        sender = SecureChannel(keys, "initiator")
        wire = sender.seal(b"reflect me")
        outcome = sender.open(wire)
        assert not outcome.ok
        assert outcome.failure == FAILURE_AUTH
        assert outcome.plaintext is None

    def test_header_layout_constants_agree(self):
        assert RECORD_OVERHEAD == HEADER_BYTES + TAG_BYTES
        assert DIRECTION_R2I != DIRECTION_I2R
