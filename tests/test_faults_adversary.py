"""Active-adversary injection: plans, attacks, and structured aborts.

The acceptance property pinned here: every injected MAC tamper, replayed
message, and tampered confirmation yields a *structured* abort or a
counted MAC failure -- never an uncaught exception, and never a released
key after failed verification.
"""

import numpy as np
import pytest

from repro.core.statemachine import (
    ABORT_CONFIRMATION,
    ABORT_MAC,
    ABORT_REPLAY,
)
from repro.exceptions import ConfigurationError, SessionAborted
from repro.faults.adversary import (
    STALE_NONCE,
    ActiveAdversary,
    AdversaryPlan,
    build_adversary,
)
from repro.faults.retry import RetryPolicy
from repro.utils.rng import SeedSequenceFactory

from tests.conftest import make_tiny_pipeline


def fresh_seeds(name="adv-test"):
    """A seed factory for one adversary under test."""
    return SeedSequenceFactory(7).child(name)


class TestAdversaryPlan:
    def test_null_plan_detection(self):
        assert AdversaryPlan.none().is_null
        assert not AdversaryPlan(probe_replay_rate=0.1).is_null
        assert not AdversaryPlan(confirmation_tamper=True).is_null

    def test_layer_classification(self):
        probing = AdversaryPlan(jamming_rate=0.2)
        assert probing.attacks_probing and not probing.attacks_messages
        messaging = AdversaryPlan(syndrome_tamper_rate=0.5)
        assert messaging.attacks_messages and not messaging.attacks_probing

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversaryPlan(probe_replay_rate=1.5)
        with pytest.raises(ConfigurationError):
            AdversaryPlan(jamming_rate=1.0)  # must stay < 1 (GE chain)
        with pytest.raises(ConfigurationError):
            AdversaryPlan(jamming_mean_burst=0.5)

    def test_build_adversary_null_is_none(self):
        assert build_adversary(None, fresh_seeds()) is None
        assert build_adversary(AdversaryPlan.none(), fresh_seeds()) is None
        assert build_adversary(
            AdversaryPlan(syndrome_tamper_rate=1.0), fresh_seeds()
        ) is not None


class TestActiveAdversaryUnit:
    def test_certain_rates_always_fire(self):
        adversary = ActiveAdversary(
            AdversaryPlan(probe_replay_rate=1.0, probe_injection_rate=1.0),
            fresh_seeds(),
        )
        assert adversary.replays_probe()
        assert adversary.injects_probe()
        assert adversary.events["probes_replayed"] == 1
        assert adversary.events["probes_injected"] == 1

    def test_attack_pattern_is_seeded(self):
        plan = AdversaryPlan(probe_replay_rate=0.5, jamming_rate=0.3)
        a = ActiveAdversary(plan, fresh_seeds())
        b = ActiveAdversary(plan, fresh_seeds())
        assert [a.replays_probe() for _ in range(32)] == [
            b.replays_probe() for _ in range(32)
        ]
        assert [a.jams("a2b") for _ in range(32)] == [
            b.jams("a2b") for _ in range(32)
        ]

    def test_injected_samples_follow_plan_power(self):
        adversary = ActiveAdversary(
            AdversaryPlan(
                probe_injection_rate=1.0,
                injection_rssi_dbm=-40.0,
                injection_jitter_db=0.5,
            ),
            fresh_seeds(),
        )
        samples = adversary.injected_register_samples(256)
        assert samples.shape == (256,)
        assert abs(float(np.mean(samples)) - (-40.0)) < 0.5

    def test_replay_substitutes_stale_nonce(self):
        from repro.core.session import SyndromeMessage

        message = SyndromeMessage(
            block_index=0,
            session_nonce=b"fresh",
            syndrome=np.zeros(4),
            mac=bytes(16),
        )
        adversary = ActiveAdversary(
            AdversaryPlan(syndrome_replay_rate=1.0), fresh_seeds()
        )
        replayed = adversary.corrupt_syndrome(message)
        assert replayed.session_nonce == STALE_NONCE
        assert message.session_nonce == b"fresh"  # original intact


@pytest.fixture(scope="module")
def adv_trace(tiny_pipeline):
    """One clean probing trace reused by the session-level attack tests."""
    return tiny_pipeline.collect_trace("adv-session", n_rounds=128)


def attacked_run(tiny_pipeline, trace, plan, label="attacked"):
    """Run one session against a fresh seeded adversary."""
    adversary = ActiveAdversary(plan, tiny_pipeline.seeds.child(label))
    session = tiny_pipeline.build_session()
    return session.run(trace, adversary=adversary), adversary


class TestSessionUnderAttack:
    def test_replayed_syndromes_abort(self, tiny_pipeline, adv_trace):
        result, adversary = attacked_run(
            tiny_pipeline, adv_trace, AdversaryPlan(syndrome_replay_rate=1.0)
        )
        assert adversary.events["syndromes_replayed"] > 0
        assert result.abort is not None
        assert result.abort.reason == ABORT_REPLAY
        assert result.final_key_alice is None and result.final_key_bob is None

    def test_wholesale_tamper_aborts_with_mac_failure(
        self, tiny_pipeline, adv_trace
    ):
        result, adversary = attacked_run(
            tiny_pipeline, adv_trace, AdversaryPlan(syndrome_tamper_rate=1.0)
        )
        assert adversary.events["syndromes_tampered"] > 0
        assert result.mac_failures > 0
        assert result.abort is not None
        assert result.abort.reason == ABORT_MAC
        assert result.final_key_alice is None and result.final_key_bob is None

    def test_spoofed_syndromes_never_verify(self, tiny_pipeline, adv_trace):
        result, adversary = attacked_run(
            tiny_pipeline, adv_trace, AdversaryPlan(syndrome_spoof_rate=1.0)
        )
        assert adversary.events["syndromes_spoofed"] > 0
        # A forged MAC can collide with nothing: the spoofed blocks are
        # counted as MAC failures, while Bob's honest retransmissions can
        # still verify -- so no abort is required, but no spoofed block
        # may end up verified with a wrong key.
        if result.final_key_alice is not None:
            assert result.final_key_alice == result.final_key_bob
            assert result.confirmed is True

    def test_confirmation_tamper_aborts(self, tiny_pipeline, adv_trace):
        result, adversary = attacked_run(
            tiny_pipeline, adv_trace, AdversaryPlan(confirmation_tamper=True)
        )
        if adversary.events["confirmations_tampered"]:
            assert result.confirmed is False
            assert result.abort is not None
            assert result.abort.reason == ABORT_CONFIRMATION
            assert result.final_key_alice is None
            assert result.final_key_bob is None


class TestPipelineUnderAttack:
    def test_null_plan_bit_identical_to_no_adversary(self):
        baseline = make_tiny_pipeline(seed=31).collect_trace("ident", n_rounds=24)
        with_null = make_tiny_pipeline(seed=31).collect_trace(
            "ident", n_rounds=24, adversary=None
        )
        np.testing.assert_array_equal(baseline.alice_rssi, with_null.alice_rssi)
        np.testing.assert_array_equal(baseline.bob_rssi, with_null.bob_rssi)

    def test_establish_key_surfaces_abort(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(
            episode="adv-abort",
            n_rounds=96,
            adversary_plan=AdversaryPlan(syndrome_replay_rate=1.0),
            max_attempts=1,
        )
        assert not outcome.success
        assert outcome.aborted
        assert outcome.failure_reason == ABORT_REPLAY
        assert outcome.abort_reason == ABORT_REPLAY
        assert outcome.time_to_abort_s is not None
        assert outcome.attack_detections > 0
        assert outcome.adversary_events["syndromes_replayed"] > 0

    def test_raise_on_failure_raises_session_aborted(self, tiny_pipeline):
        with pytest.raises(SessionAborted) as excinfo:
            tiny_pipeline.establish_key(
                episode="adv-raise",
                n_rounds=96,
                adversary_plan=AdversaryPlan(syndrome_tamper_rate=1.0),
                max_attempts=1,
                raise_on_failure=True,
            )
        assert excinfo.value.abort is not None
        assert excinfo.value.abort.reason == ABORT_MAC

    def test_desync_recovery_reprobes_after_abort(self, tiny_pipeline):
        # Attack only the probing layer lightly: a replayed-syndrome abort
        # never fires, so with enough attempts the session can still
        # finish; each aborted attempt must have discarded its pool.
        outcome = tiny_pipeline.establish_key(
            episode="adv-resync",
            n_rounds=96,
            adversary_plan=AdversaryPlan(syndrome_replay_rate=0.2),
            retry_policy=RetryPolicy(),
            max_attempts=3,
        )
        assert outcome.attempts <= 3
        if outcome.aborted_attempts and outcome.success:
            # Recovery happened: suspect bits were discarded, and the
            # final key still passed confirmation.
            assert outcome.session.confirmed is True

    def test_probe_injection_poisons_reciprocity_but_never_keys(
        self, tiny_pipeline
    ):
        outcome = tiny_pipeline.establish_key(
            episode="adv-inject",
            n_rounds=96,
            adversary_plan=AdversaryPlan(
                probe_injection_rate=0.5, injection_rssi_dbm=-55.0
            ),
            retry_policy=RetryPolicy(),
            max_attempts=1,
        )
        assert outcome.adversary_events["probes_injected"] > 0
        if outcome.success:
            assert outcome.session.final_key_alice == outcome.session.final_key_bob
        else:
            assert outcome.failure_reason is not None

    def test_probe_replay_rejected_and_counted(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(
            episode="adv-replay-probe",
            n_rounds=64,
            adversary_plan=AdversaryPlan(probe_replay_rate=0.5),
            retry_policy=RetryPolicy(),
            max_attempts=1,
        )
        assert outcome.adversary_events["probes_replayed"] > 0
        assert outcome.attack_detections > 0

    def test_jamming_costs_retries(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(
            episode="adv-jam",
            n_rounds=64,
            adversary_plan=AdversaryPlan(jamming_rate=0.4),
            retry_policy=RetryPolicy(),
            max_attempts=1,
        )
        assert outcome.adversary_events["transmissions_jammed"] > 0
        assert outcome.total_retries > 0
        assert outcome.total_backoff_s > 0.0
