"""Stateful channel endpoints: nonce discipline, replay, epochs, ledger."""

import pytest

from repro.exceptions import ConfigurationError
from repro.secure.channel import (
    NonceExhaustedError,
    ReplayWindow,
    SecureChannel,
    SecureLink,
)
from repro.secure.kdf import ChannelContext, derive_channel_keys
from repro.secure.ledger import NonceLedger
from repro.secure.records import (
    FAILURE_EPOCH,
    FAILURE_EXHAUSTED,
    FAILURE_REPLAY,
)

MASTER = b"\x5a" * 32
NONCE = b"\x11" * 16


def make_keys(epoch: int = 0):
    return derive_channel_keys(
        MASTER, ChannelContext(session_nonce=NONCE, epoch=epoch)
    )


class TestReplayWindow:
    def test_fresh_window_accepts_anything_once(self):
        window = ReplayWindow(size=8)
        assert not window.seen(0)
        window.mark(0)
        assert window.seen(0)
        assert not window.seen(1)

    def test_out_of_order_within_window_tracked_individually(self):
        window = ReplayWindow(size=8)
        window.mark(5)
        window.mark(2)
        assert window.seen(5) and window.seen(2)
        assert not window.seen(3)
        window.mark(3)
        assert window.seen(3)

    def test_fallen_off_the_back_is_conservatively_seen(self):
        window = ReplayWindow(size=4)
        window.mark(10)
        # 10 - 6 = 4 >= size: too old to tell, treated as replayed.
        assert window.seen(6)
        assert not window.seen(7)

    def test_huge_forward_jump_does_not_blow_up_the_bitmap(self):
        window = ReplayWindow(size=16)
        window.mark(0)
        window.mark(10**9)  # shift is clamped to the window size
        assert window.highest == 10**9
        assert window.seen(10**9)
        assert window.seen(0)  # ancient: off the back
        assert window._bitmap < (1 << 16)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            ReplayWindow(size=0)


class TestSecureChannelBasics:
    def test_bidirectional_round_trip_and_counters(self):
        link = SecureLink(make_keys())
        to_bob = link.initiator.seal(b"ping")
        to_alice = link.responder.seal(b"pong")
        assert link.responder.open(to_bob).plaintext == b"ping"
        assert link.initiator.open(to_alice).plaintext == b"pong"
        assert link.initiator.sealed == link.initiator.opened == 1
        assert link.responder.sealed == link.responder.opened == 1
        assert link.initiator.total_open_failures == 0

    def test_sequences_are_monotonic_per_direction(self):
        channel = SecureChannel(make_keys(), "initiator")
        assert channel.send_sequence == 0
        channel.seal(b"a")
        channel.seal(b"b")
        assert channel.send_sequence == 2

    def test_replay_is_rejected_exactly_once_delivered(self):
        link = SecureLink(make_keys())
        wire = link.initiator.seal(b"once only")
        assert link.responder.open(wire).ok
        replayed = link.responder.open(wire)
        assert not replayed.ok
        assert replayed.failure == FAILURE_REPLAY
        assert replayed.plaintext is None
        assert link.responder.open_failures[FAILURE_REPLAY] == 1

    def test_out_of_order_delivery_within_window_is_fine(self):
        link = SecureLink(make_keys(), replay_window=8)
        wires = [link.initiator.seal(f"m{i}".encode()) for i in range(4)]
        for wire in reversed(wires):
            assert link.responder.open(wire).ok
        # ...but none of them a second time.
        assert link.responder.open(wires[1]).failure == FAILURE_REPLAY

    def test_unknown_role_is_refused(self):
        with pytest.raises(ConfigurationError):
            SecureChannel(make_keys(), "eve")


class TestNonceExhaustion:
    def test_sender_refuses_to_wrap(self):
        channel = SecureChannel(make_keys(), "initiator", max_sequence=2)
        for i in range(3):  # sequences 0, 1, 2
            channel.seal(b"x")
        assert channel.sequence_remaining == 0
        with pytest.raises(NonceExhaustedError):
            channel.seal(b"one too many")
        assert channel.sealed == 3

    def test_receiver_rejects_past_its_own_bound(self):
        sender = SecureChannel(make_keys(), "initiator", max_sequence=100)
        receiver = SecureChannel(make_keys(), "responder", max_sequence=3)
        wire = sender.seal(b"high", force_sequence=7)
        outcome = receiver.open(wire)
        assert not outcome.ok
        assert outcome.failure == FAILURE_EXHAUSTED
        assert outcome.plaintext is None


class TestNonceLedger:
    def test_ledger_witnesses_honest_traffic_cleanly(self):
        ledger = NonceLedger()
        link = SecureLink(make_keys(), ledger=ledger)
        for i in range(3):
            assert link.responder.open(link.initiator.seal(b"m")).ok
        assert ledger.total_seals == 3
        assert ledger.total_accepts == 3
        assert ledger.ok

    def test_forced_counter_reuse_is_caught_at_seal(self):
        # The force_sequence test hook is the deliberate misuse: a sender
        # that repeats a counter is flagged by the ledger even though the
        # record itself is perfectly well-formed.
        ledger = NonceLedger()
        channel = SecureChannel(make_keys(), "initiator", ledger=ledger)
        channel.seal(b"a", force_sequence=9)
        channel.seal(b"b", force_sequence=9)
        assert not ledger.ok
        (reuse,) = ledger.reuses
        assert reuse.kind == "seal"
        assert reuse.sequence == 9

    def test_disabled_replay_window_is_caught_at_accept(self):
        # The replay_window_enabled=False hook builds the deliberately
        # broken channel: the double-accept the window would have stopped
        # lands in the ledger as an accept reuse.
        ledger = NonceLedger()
        link = SecureLink(make_keys(), ledger=ledger, replay_window_enabled=False)
        wire = link.initiator.seal(b"twice")
        assert link.responder.open(wire).ok
        assert link.responder.open(wire).ok  # the window would have said no
        assert not ledger.ok
        (reuse,) = ledger.reuses
        assert reuse.kind == "accept"


class TestEpochRouting:
    def test_rollover_resets_counters_and_keys(self):
        link = SecureLink(make_keys())
        link.initiator.seal(b"old epoch")
        link.rollover(make_keys(epoch=1))
        assert link.epoch == 1
        assert link.initiator.send_sequence == 0
        wire = link.initiator.seal(b"new epoch")
        assert link.responder.open(wire).plaintext == b"new epoch"

    def test_rollover_must_advance_by_exactly_one(self):
        link = SecureLink(make_keys())
        with pytest.raises(ConfigurationError):
            link.rollover(make_keys(epoch=2))

    def test_grace_drains_bounded_in_flight_records(self):
        link = SecureLink(make_keys())
        in_flight = [link.initiator.seal(f"late-{i}".encode()) for i in range(3)]
        link.rollover(make_keys(epoch=1), grace_opens=2)
        # Two old-epoch records drain through the grace allowance...
        assert link.responder.open(in_flight[0]).ok
        assert link.responder.open(in_flight[1]).ok
        # ...the third finds the allowance spent.
        stale = link.responder.open(in_flight[2])
        assert not stale.ok
        assert stale.failure == FAILURE_EPOCH
        assert stale.plaintext is None

    def test_zero_grace_rejects_old_epoch_immediately(self):
        link = SecureLink(make_keys())
        wire = link.initiator.seal(b"too late")
        link.rollover(make_keys(epoch=1), grace_opens=0)
        outcome = link.responder.open(wire)
        assert outcome.failure == FAILURE_EPOCH

    def test_rolled_past_epoch_is_mismatch_after_two_rollovers(self):
        link = SecureLink(make_keys())
        wire = link.initiator.seal(b"epoch zero")
        link.rollover(make_keys(epoch=1), grace_opens=4)
        link.rollover(make_keys(epoch=2), grace_opens=4)
        # Epoch 0 is older than the in-grace epoch 1: mismatch, no MAC try.
        assert link.responder.open(wire).failure == FAILURE_EPOCH

    def test_replay_across_rollover_grace_is_still_replay(self):
        link = SecureLink(make_keys())
        wire = link.initiator.seal(b"drain me")
        assert link.responder.open(wire).ok
        link.rollover(make_keys(epoch=1), grace_opens=4)
        # The old epoch's replay window is retained with its keys.
        assert link.responder.open(wire).failure == FAILURE_REPLAY


class TestSecureLinkFromResult:
    class _Result:
        session_nonce = NONCE
        final_key_alice = MASTER
        keys_match = True

    def test_link_derives_from_a_confirmed_result(self):
        link = SecureLink.from_result(self._Result())
        wire = link.initiator.seal(b"derived")
        assert link.responder.open(wire).plaintext == b"derived"

    def test_custom_context_overrides_the_default(self):
        context = ChannelContext(
            session_nonce=NONCE, initiator_id="dev-1", responder_id="server"
        )
        bound = SecureLink.from_result(self._Result(), context=context)
        plain = SecureLink.from_result(self._Result())
        wire = bound.initiator.seal(b"bound")
        # The identity-bound link cannot talk to the default-context link.
        assert not plain.responder.open(wire).ok
        assert bound.responder.open(wire).ok

    def test_endpoint_accessor(self):
        link = SecureLink.from_result(self._Result())
        assert link.endpoint("initiator") is link.initiator
        assert link.endpoint("responder") is link.responder
        with pytest.raises(ConfigurationError):
            link.endpoint("eve")
