"""The chaos invariant harness: generators, invariants, reports."""

import numpy as np
import pytest

from repro.faults.chaos import (
    INVARIANTS,
    PAYLOAD_INVARIANTS,
    ChaosReport,
    ChaosViolation,
    random_adversary_plan,
    random_fault_plan,
    random_rekey_policy,
    random_retry_policy,
    run_chaos,
)
from repro.exceptions import ConfigurationError


class TestPlanGenerators:
    def test_generators_are_seed_deterministic(self):
        a = np.random.default_rng([5, 3])
        b = np.random.default_rng([5, 3])
        assert random_fault_plan(a) == random_fault_plan(b)
        assert random_adversary_plan(a) == random_adversary_plan(b)
        pa, pb = random_retry_policy(a), random_retry_policy(b)
        assert pa.max_retries == pb.max_retries
        assert pa.backoff_base_s == pb.backoff_base_s
        assert pa.regional_plan == pb.regional_plan
        assert random_rekey_policy(a) == random_rekey_policy(b)

    def test_generators_cover_null_and_active_plans(self):
        faults_null = attacks_null = duty = 0
        n = 200
        for i in range(n):
            rng = np.random.default_rng([9, i])
            faults_null += random_fault_plan(rng).is_null
            attacks_null += random_adversary_plan(rng).is_null
            duty += random_retry_policy(rng).regional_plan is not None
        # ~25% null per family, ~75% with a regional plan attached.
        assert 0 < faults_null < n
        assert 0 < attacks_null < n
        assert 0 < duty < n

    def test_generated_plans_are_valid(self):
        # Construction itself validates every parameter range; 100 draws
        # would have raised by now if a generator could leave the range.
        for i in range(100):
            rng = np.random.default_rng([13, i])
            random_fault_plan(rng)
            random_adversary_plan(rng)
            random_retry_policy(rng)


class TestChaosReport:
    def test_violation_counts_zero_filled(self):
        report = ChaosReport(n_sessions=3, seed=0)
        counts = report.violation_counts()
        assert set(counts) == set(INVARIANTS + PAYLOAD_INVARIANTS)
        assert all(v == 0 for v in counts.values())
        assert report.ok

    def test_merge_accumulates(self):
        a = ChaosReport(n_sessions=2, seed=0, successes=1, aborts=1,
                        abort_reasons={"replay-detected": 1})
        b = ChaosReport(n_sessions=3, seed=1, successes=2, aborts=1,
                        abort_reasons={"replay-detected": 1})
        b.violations.append(
            ChaosViolation(
                invariant="uncaught-exception", session=0, seed=1, detail="x"
            )
        )
        merged = a.merge(b)
        assert merged is a
        assert merged.n_sessions == 5
        assert merged.successes == 3
        assert merged.abort_reasons == {"replay-detected": 2}
        assert not merged.ok
        assert merged.violation_counts()["uncaught-exception"] == 1


class TestRunChaos:
    def test_rejects_nonpositive_sessions(self, tiny_pipeline):
        with pytest.raises(ConfigurationError):
            run_chaos(tiny_pipeline, 0)

    @pytest.fixture(scope="class")
    def sweep(self, tiny_pipeline):
        return run_chaos(tiny_pipeline, 8, seed=2, n_rounds=48)

    def test_no_invariant_violations(self, sweep):
        assert sweep.ok, [v.detail for v in sweep.violations]
        assert sweep.n_sessions == 8

    def test_sweep_mixes_faults_and_attacks(self, sweep):
        assert sweep.faulted_sessions > 0
        assert sweep.attacked_sessions > 0
        # Every session ends in exactly one bucket: success or a reason.
        assert sweep.successes + sum(sweep.failure_reasons.values()) == 8

    def test_sweep_is_deterministic(self, tiny_pipeline, sweep):
        again = run_chaos(tiny_pipeline, 8, seed=2, n_rounds=48)
        assert again.successes == sweep.successes
        assert again.aborts == sweep.aborts
        assert again.abort_reasons == sweep.abort_reasons
        assert again.failure_reasons == sweep.failure_reasons

    def test_different_seed_differs(self, tiny_pipeline, sweep):
        other = run_chaos(tiny_pipeline, 8, seed=3, n_rounds=48)
        fingerprint = (sweep.successes, sweep.aborts, sweep.failure_reasons)
        other_fingerprint = (other.successes, other.aborts, other.failure_reasons)
        assert other.n_sessions == 8
        # Not guaranteed to differ in every field, but the combined
        # fingerprint colliding would mean the seed is ignored.
        assert fingerprint != other_fingerprint or sweep.ok
