"""Domain-separated channel key derivation: contexts, directions, epochs."""

import pytest

from repro.exceptions import ConfigurationError
from repro.secure.kdf import (
    ChannelContext,
    DIRECTION_LABELS,
    KEY_BYTES,
    KEY_ID_BYTES,
    derive_channel_keys,
    hkdf_expand,
    hkdf_extract,
    master_secret_from_result,
)

MASTER = b"\x5a" * 32
NONCE = b"\x11" * 16


def context(**overrides) -> ChannelContext:
    """A baseline context with individual fields overridable per test."""
    fields = dict(
        session_nonce=NONCE,
        initiator_id="alice",
        responder_id="bob",
        pipeline_fingerprint="f" * 16,
        epoch=0,
    )
    fields.update(overrides)
    return ChannelContext(**fields)


class _Result:
    """Duck-typed stand-in for a completed SessionResult."""

    def __init__(self, final_key_alice, keys_match):
        self.final_key_alice = final_key_alice
        self.keys_match = keys_match


class TestChannelContext:
    def test_encoding_is_deterministic(self):
        assert context().encode() == context().encode()

    def test_every_field_changes_the_encoding(self):
        base = context().encode()
        variants = [
            context(session_nonce=b"\x22" * 16),
            context(initiator_id="carol"),
            context(responder_id="dave"),
            context(pipeline_fingerprint="0" * 16),
            context(epoch=1),
        ]
        encodings = [variant.encode() for variant in variants]
        assert all(encoding != base for encoding in encodings)
        assert len(set(encodings)) == len(encodings)

    def test_length_prefixing_prevents_field_boundary_collisions(self):
        # ("ab", "c") and ("a", "bc") must encode differently.
        a = context(initiator_id="ab", responder_id="c").encode()
        b = context(initiator_id="a", responder_id="bc").encode()
        assert a != b

    def test_next_epoch_bumps_only_the_counter(self):
        bumped = context().next_epoch()
        assert bumped.epoch == 1
        assert bumped.session_nonce == NONCE
        assert bumped.initiator_id == "alice"

    def test_invalid_contexts_are_refused(self):
        with pytest.raises(ConfigurationError):
            ChannelContext(session_nonce=b"")
        with pytest.raises(ConfigurationError):
            context(epoch=-1)
        with pytest.raises(ConfigurationError):
            context(initiator_id="")


class TestHkdf:
    def test_extract_concentrates_and_is_keyed_by_salt(self):
        prk = hkdf_extract(MASTER)
        assert len(prk) == 32
        assert prk != hkdf_extract(MASTER, salt=b"other-label")

    def test_expand_lengths_and_info_separation(self):
        prk = hkdf_extract(MASTER)
        short = hkdf_expand(prk, b"info-a", 16)
        long = hkdf_expand(prk, b"info-a", 80)
        assert len(short) == 16
        assert len(long) == 80
        assert long[:16] == short  # same stream, longer read
        assert hkdf_expand(prk, b"info-b", 16) != short

    def test_expand_rejects_bad_lengths(self):
        prk = hkdf_extract(MASTER)
        with pytest.raises(ConfigurationError):
            hkdf_expand(prk, b"info", 0)
        with pytest.raises(ConfigurationError):
            hkdf_expand(prk, b"info", 255 * 32 + 1)


class TestDeriveChannelKeys:
    def test_both_parties_derive_identical_keys(self):
        assert derive_channel_keys(MASTER, context()) == derive_channel_keys(
            MASTER, context()
        )

    def test_all_four_keys_are_independent(self):
        keys = derive_channel_keys(MASTER, context())
        material = {
            keys.initiator_send.enc_key,
            keys.initiator_send.mac_key,
            keys.responder_send.enc_key,
            keys.responder_send.mac_key,
        }
        assert len(material) == 4
        assert all(len(key) == KEY_BYTES for key in material)

    def test_key_ids_are_public_short_and_distinct_per_direction(self):
        keys = derive_channel_keys(MASTER, context())
        assert keys.initiator_send.key_id != keys.responder_send.key_id
        assert len(bytes.fromhex(keys.initiator_send.key_id)) == KEY_ID_BYTES

    def test_epoch_bump_yields_unrelated_keys(self):
        epoch0 = derive_channel_keys(MASTER, context())
        epoch1 = derive_channel_keys(MASTER, context().next_epoch())
        assert epoch0.initiator_send.enc_key != epoch1.initiator_send.enc_key
        assert epoch0.initiator_send.mac_key != epoch1.initiator_send.mac_key
        assert epoch0.initiator_send.key_id != epoch1.initiator_send.key_id
        assert epoch1.epoch == 1

    def test_context_fields_separate_key_material(self):
        base = derive_channel_keys(MASTER, context())
        for variant in (
            context(session_nonce=b"\x22" * 16),
            context(initiator_id="carol"),
            context(pipeline_fingerprint="0" * 16),
        ):
            other = derive_channel_keys(MASTER, variant)
            assert other.initiator_send.enc_key != base.initiator_send.enc_key

    def test_role_key_selection_is_symmetric(self):
        keys = derive_channel_keys(MASTER, context())
        assert keys.send_keys("initiator") == keys.recv_keys("responder")
        assert keys.send_keys("responder") == keys.recv_keys("initiator")
        with pytest.raises(ConfigurationError):
            keys.send_keys("eve")

    def test_direction_labels_are_ordered_pair(self):
        assert DIRECTION_LABELS == (b"i2r", b"r2i")


class TestMasterSecretFromResult:
    def test_confirmed_matching_key_is_released(self):
        assert master_secret_from_result(_Result(MASTER, True)) == MASTER

    def test_unconfirmed_or_missing_key_is_refused(self):
        with pytest.raises(ConfigurationError):
            master_secret_from_result(_Result(MASTER, False))
        with pytest.raises(ConfigurationError):
            master_secret_from_result(_Result(None, True))
