"""Tests for doppler, path loss, shadowing and fading components."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.doppler import (
    coherence_time_from_speeds_s,
    coherence_time_s,
    doppler_shift_hz,
    jakes_autocorrelation,
)
from repro.channel.fading import SpatialJakesFading, TemporalJakesFading
from repro.channel.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    TwoRayGroundPathLoss,
)
from repro.channel.shadowing import GudmundsonShadowing
from repro.exceptions import ConfigurationError


class TestDoppler:
    def test_paper_example_40kmh(self):
        # |V_A - V_B| = 40 km/h at 434 MHz -> f_d ~= 16 Hz, T_c ~= 26 ms.
        fd = doppler_shift_hz(40.0 / 3.6, 434e6)
        assert fd == pytest.approx(16.1, abs=0.2)
        assert coherence_time_s(fd) == pytest.approx(0.026, abs=0.002)

    def test_static_link_never_decorrelates(self):
        assert coherence_time_s(0.0) == float("inf")

    def test_coherence_from_speeds_uses_relative_speed(self):
        same = coherence_time_from_speeds_s(50 / 3.6, 50 / 3.6, 434e6)
        different = coherence_time_from_speeds_s(50 / 3.6, 10 / 3.6, 434e6)
        assert same == float("inf")
        assert different < 1.0

    def test_autocorrelation_is_one_at_zero_lag(self):
        assert jakes_autocorrelation(0.0, 20.0) == pytest.approx(1.0)

    def test_autocorrelation_decays_with_lag(self):
        assert abs(jakes_autocorrelation(0.05, 20.0)) < jakes_autocorrelation(0.001, 20.0)

    def test_autocorrelation_vectorized(self):
        taus = np.linspace(0, 0.1, 5)
        values = jakes_autocorrelation(taus, 20.0)
        assert values.shape == (5,)

    def test_negative_doppler_rejected(self):
        with pytest.raises(ValueError):
            coherence_time_s(-1.0)


class TestPathLoss:
    def test_free_space_20db_per_decade(self):
        model = FreeSpacePathLoss()
        assert model.loss_db(1000.0) - model.loss_db(100.0) == pytest.approx(20.0)

    def test_log_distance_exponent_controls_slope(self):
        model = LogDistancePathLoss(exponent=3.0)
        assert model.loss_db(1000.0) - model.loss_db(100.0) == pytest.approx(30.0)

    def test_log_distance_matches_free_space_at_reference(self):
        log_model = LogDistancePathLoss(exponent=2.0, reference_distance_m=1.0)
        fs_model = FreeSpacePathLoss()
        assert log_model.loss_db(1.0) == pytest.approx(fs_model.loss_db(1.0))

    def test_two_ray_continuous_at_crossover(self):
        model = TwoRayGroundPathLoss(tx_height_m=1.5, rx_height_m=1.5)
        d = model.crossover_distance_m
        below = model.loss_db(d * 0.999)
        above = model.loss_db(d * 1.001)
        assert abs(below - above) < 0.5

    def test_two_ray_40db_per_decade_beyond_crossover(self):
        model = TwoRayGroundPathLoss()
        d = model.crossover_distance_m * 10
        assert model.loss_db(10 * d) - model.loss_db(d) == pytest.approx(40.0, abs=0.1)

    def test_gain_is_negative_loss(self):
        model = LogDistancePathLoss()
        assert model.gain_db(500.0) == pytest.approx(-model.loss_db(500.0))

    @given(d=st.floats(min_value=1.0, max_value=20_000.0))
    @settings(max_examples=30)
    def test_loss_monotone_in_distance(self, d):
        model = LogDistancePathLoss(exponent=2.7)
        assert model.loss_db(d * 1.5) > model.loss_db(d)

    def test_near_field_clamped(self):
        model = LogDistancePathLoss()
        assert np.isfinite(model.loss_db(0.0))


class TestShadowing:
    def test_deterministic_in_seed(self):
        a = GudmundsonShadowing(6.0, 50.0, seed=3).value_at(np.arange(100.0))
        b = GudmundsonShadowing(6.0, 50.0, seed=3).value_at(np.arange(100.0))
        np.testing.assert_array_equal(a, b)

    def test_zero_sigma_is_identically_zero(self):
        process = GudmundsonShadowing(0.0, 50.0, seed=1)
        np.testing.assert_array_equal(process.value_at(np.arange(10.0)), np.zeros(10))

    def test_marginal_std_near_sigma(self):
        process = GudmundsonShadowing(6.0, 10.0, seed=0)
        # Sample far apart so values are nearly independent.
        values = process.value_at(np.arange(0.0, 50_000.0, 100.0))
        assert 4.5 < np.std(values) < 7.5

    def test_nearby_points_are_correlated(self):
        process = GudmundsonShadowing(6.0, 50.0, seed=2)
        base = np.arange(0.0, 20_000.0, 200.0)
        a = process.value_at(base)
        b = process.value_at(base + 5.0)  # 5 m apart << 50 m decorrelation
        assert np.corrcoef(a, b)[0, 1] > 0.9

    def test_distant_points_decorrelate(self):
        process = GudmundsonShadowing(6.0, 20.0, seed=2)
        base = np.arange(0.0, 40_000.0, 400.0)
        a = process.value_at(base)
        b = process.value_at(base + 200.0)  # 10 decorrelation distances
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_negative_displacement_supported(self):
        process = GudmundsonShadowing(6.0, 50.0, seed=4)
        assert np.isfinite(process.value_at(-123.0))

    def test_interpolation_is_continuous(self):
        process = GudmundsonShadowing(6.0, 50.0, seed=5)
        left = process.value_at(10.0)
        right = process.value_at(10.001)
        assert abs(left - right) < 0.1

    def test_theoretical_correlation(self):
        process = GudmundsonShadowing(6.0, 50.0, seed=1)
        assert process.theoretical_correlation(0.0) == 1.0
        assert process.theoretical_correlation(50.0) == pytest.approx(np.exp(-1))


class TestFading:
    def test_rayleigh_envelope_statistics(self):
        fading = SpatialJakesFading(wavelength_m=0.6912, n_paths=64, seed=0)
        # Sample many independent displacements (several wavelengths apart).
        displacements = np.arange(0.0, 20_000.0) * 3.5
        envelope = np.abs(fading.complex_gain(displacements))
        # Rayleigh with unit average power: mean envelope = sqrt(pi)/2.
        assert np.mean(envelope) == pytest.approx(np.sqrt(np.pi) / 2, abs=0.05)
        assert np.mean(envelope**2) == pytest.approx(1.0, abs=0.1)

    def test_decorrelates_beyond_half_wavelength(self):
        wavelength = 0.6912
        fading = SpatialJakesFading(wavelength_m=wavelength, n_paths=128, seed=1)
        base = np.arange(0.0, 5000.0) * wavelength * 2.7
        original = np.abs(fading.complex_gain(base))
        shifted = np.abs(fading.complex_gain(base + wavelength))
        assert abs(np.corrcoef(original, shifted)[0, 1]) < 0.35

    def test_correlated_within_small_displacement(self):
        wavelength = 0.6912
        fading = SpatialJakesFading(wavelength_m=wavelength, n_paths=128, seed=1)
        base = np.arange(0.0, 5000.0) * wavelength * 2.7
        original = np.abs(fading.complex_gain(base))
        shifted = np.abs(fading.complex_gain(base + wavelength / 50.0))
        assert np.corrcoef(original, shifted)[0, 1] > 0.95

    def test_rician_concentrates_envelope(self):
        rayleigh = SpatialJakesFading(0.6912, n_paths=64, rician_k=0.0, seed=3)
        rician = SpatialJakesFading(0.6912, n_paths=64, rician_k=8.0, seed=3)
        displacements = np.arange(0.0, 5000.0) * 3.5
        std_rayleigh = np.std(np.abs(rayleigh.complex_gain(displacements)))
        std_rician = np.std(np.abs(rician.complex_gain(displacements)))
        assert std_rician < std_rayleigh

    def test_gain_db_is_floored(self):
        fading = SpatialJakesFading(0.6912, n_paths=64, seed=4)
        gains = fading.gain_db(np.arange(0.0, 1000.0) * 0.5)
        assert np.all(gains >= -60.0 - 1e-9)

    def test_temporal_matches_spatial_equivalence(self):
        # Temporal fading at doppler fd over time t is statistically the
        # same family as spatial fading at displacement v t.
        temporal = TemporalJakesFading(max_doppler_hz=10.0, n_paths=64, seed=5)
        times = np.linspace(0.0, 10.0, 2000)
        envelope = np.abs(temporal.complex_gain(times))
        assert np.mean(envelope**2) == pytest.approx(1.0, abs=0.25)

    def test_zero_doppler_is_static(self):
        temporal = TemporalJakesFading(max_doppler_hz=0.0, n_paths=64, seed=6)
        gains = temporal.complex_gain(np.linspace(0, 100, 50))
        assert np.allclose(gains, gains[0])

    def test_too_few_paths_rejected(self):
        with pytest.raises(ConfigurationError):
            SpatialJakesFading(0.6912, n_paths=2)

    def test_deterministic_in_seed(self):
        a = SpatialJakesFading(0.6912, seed=7).complex_gain(np.arange(10.0))
        b = SpatialJakesFading(0.6912, seed=7).complex_gain(np.arange(10.0))
        np.testing.assert_array_equal(a, b)
