"""Tests for the FIPS 140-2 battery."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.security.fips import (
    LONG_RUN_LIMIT,
    fips_pass,
    long_run_test,
    monobit_test,
    poker_test,
    run_fips_battery,
    runs_test,
)
from repro.utils.bits import random_bits


def random_sample(seed=0):
    return random_bits(20_000, seed)


class TestMonobit:
    def test_passes_random(self):
        assert monobit_test(random_sample(1)).passed

    def test_rejects_biased(self):
        biased = (np.random.default_rng(0).uniform(size=20_000) < 0.54).astype(np.uint8)
        assert not monobit_test(biased).passed

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            monobit_test(random_bits(100, 0))


class TestPoker:
    def test_passes_random(self):
        assert poker_test(random_sample(2)).passed

    def test_rejects_repeated_nibbles(self):
        assert not poker_test(np.tile([1, 0, 1, 0], 5_000)).passed


class TestRuns:
    def test_passes_random(self):
        assert runs_test(random_sample(3)).passed

    def test_rejects_alternating(self):
        assert not runs_test(np.tile([0, 1], 10_000)).passed


class TestLongRun:
    def test_passes_random(self):
        assert long_run_test(random_sample(4)).passed

    def test_rejects_embedded_long_run(self):
        sample = random_sample(5).copy()
        sample[1000:1000 + LONG_RUN_LIMIT] = 1
        assert not long_run_test(sample).passed


class TestBattery:
    def test_all_four_reported(self):
        results = run_fips_battery(random_sample(6))
        assert set(results) == {"monobit", "poker", "runs", "long-run"}

    def test_fips_pass_on_random(self):
        assert fips_pass(random_sample(7))

    def test_fips_fails_on_constant(self):
        assert not fips_pass(np.zeros(20_000, dtype=np.uint8))

    def test_amplified_keys_pass(self):
        from repro.privacy.amplification import amplify

        keys = [amplify(random_bits(256, seed), 128) for seed in range(160)]
        assert fips_pass(np.concatenate(keys))
