"""Seeded fuzz of the wire framing layer.

The framing contract is that *any* byte stream -- random noise, truncated
frames, mutated valid frames, hostile length prefixes -- ends in exactly
one of three outcomes per read: a decoded dict, a clean ``None`` EOF, or
a :class:`FrameError` carrying one of the three closed reason slugs.
Nothing else may escape: no ``struct.error``, no ``json`` internals, no
``UnicodeDecodeError``.  The sweep is seeded, so a failure names the
exact stream that produced it.
"""

import asyncio
import random

import pytest

from repro.server.framing import (
    FRAME_CORRUPT,
    FRAME_OVERSIZED,
    FRAME_TRUNCATED,
    FrameError,
    encode_frame,
    read_frame,
)

FRAME_REASONS = (FRAME_OVERSIZED, FRAME_TRUNCATED, FRAME_CORRUPT)

#: Small ceiling so oversized declarations are cheap to exercise.
MAX_BYTES = 4096


def drain_stream(data: bytes):
    """Feed ``data`` as one closed stream; read frames until EOF or error.

    Returns ``(frames, error)`` where ``error`` is the FrameError that
    ended the stream, if any.  Any *other* exception propagates and
    fails the test -- that is the point of the fuzz.
    """

    async def body():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        try:
            while True:
                frame = await read_frame(reader, max_bytes=MAX_BYTES)
                if frame is None:
                    return frames, None
                frames.append(frame)
        except FrameError as error:
            return frames, error

    return asyncio.run(body())


def seeded_payload(rng: random.Random) -> dict:
    """One random-but-valid protocol-shaped message."""
    return {
        "type": rng.choice(["hello", "start", "ping", "secure", "bye"]),
        "session_id": f"dev-{rng.randrange(1000)}",
        "blob": rng.randbytes(rng.randrange(64)).hex(),
    }


class TestRandomStreams:
    def test_pure_noise_never_escapes_the_taxonomy(self):
        for seed in range(200):
            rng = random.Random(seed)
            data = rng.randbytes(rng.randrange(1, 256))
            frames, error = drain_stream(data)
            if error is not None:
                assert error.reason in FRAME_REASONS, f"seed {seed}"
            # Decoded frames from noise are astronomically unlikely but
            # would still be dicts by contract.
            assert all(isinstance(frame, dict) for frame in frames)

    def test_noise_is_deterministic_per_seed(self):
        rng_a, rng_b = random.Random(7), random.Random(7)
        data_a = rng_a.randbytes(128)
        data_b = rng_b.randbytes(128)
        result_a = drain_stream(data_a)
        result_b = drain_stream(data_b)
        assert data_a == data_b
        assert (result_a[0], getattr(result_a[1], "reason", None)) == (
            result_b[0],
            getattr(result_b[1], "reason", None),
        )


class TestTruncatedFrames:
    def test_every_truncation_point_is_structured(self):
        rng = random.Random(11)
        wire = encode_frame(seeded_payload(rng))
        for cut in range(len(wire)):
            frames, error = drain_stream(wire[:cut])
            if cut == 0:
                assert frames == [] and error is None  # clean EOF
            else:
                assert error is not None, f"cut at {cut} silently passed"
                assert error.reason == FRAME_TRUNCATED

    def test_truncation_after_a_whole_frame_keeps_the_frame(self):
        rng = random.Random(13)
        first = seeded_payload(rng)
        wire = encode_frame(first) + encode_frame(seeded_payload(rng))
        cut = len(encode_frame(first)) + 2  # two bytes into frame 2's header
        frames, error = drain_stream(wire[:cut])
        assert frames == [first]
        assert error is not None and error.reason == FRAME_TRUNCATED


class TestMutatedFrames:
    def test_single_byte_mutations_stay_taxonomized(self):
        for seed in range(100):
            rng = random.Random(1000 + seed)
            wire = bytearray(encode_frame(seeded_payload(rng)))
            position = rng.randrange(len(wire))
            wire[position] ^= 1 << rng.randrange(8)
            frames, error = drain_stream(bytes(wire))
            if error is not None:
                assert error.reason in FRAME_REASONS, (
                    f"seed {seed}, byte {position}: {error}"
                )
            else:
                # A mutation inside a JSON string can keep the frame
                # valid; the decode contract still holds.
                assert all(isinstance(frame, dict) for frame in frames)

    def test_length_prefix_mutations_never_hang_or_crash(self):
        rng = random.Random(29)
        body = encode_frame(seeded_payload(rng))[4:]
        for seed in range(50):
            mutated_length = random.Random(seed).randrange(0, 2**32)
            data = mutated_length.to_bytes(4, "big") + body
            frames, error = drain_stream(data)
            if error is not None:
                assert error.reason in FRAME_REASONS
            if mutated_length > MAX_BYTES:
                assert error is not None
                assert error.reason == FRAME_OVERSIZED


class TestHostilePayloads:
    def test_oversized_declaration_is_refused_before_reading(self):
        data = (MAX_BYTES + 1).to_bytes(4, "big") + b"\x00" * 16
        _, error = drain_stream(data)
        assert error is not None and error.reason == FRAME_OVERSIZED

    def test_non_object_json_is_corrupt(self):
        for payload in (b"[1,2,3]", b'"string"', b"42", b"null", b"true"):
            data = len(payload).to_bytes(4, "big") + payload
            _, error = drain_stream(data)
            assert error is not None and error.reason == FRAME_CORRUPT

    def test_invalid_utf8_is_corrupt_not_unicode_error(self):
        payload = b"\xff\xfe{}"
        data = len(payload).to_bytes(4, "big") + payload
        _, error = drain_stream(data)
        assert error is not None and error.reason == FRAME_CORRUPT

    def test_valid_frames_interleaved_with_garbage_tail(self):
        rng = random.Random(31)
        payloads = [seeded_payload(rng) for _ in range(3)]
        wire = b"".join(encode_frame(p) for p in payloads) + rng.randbytes(7)
        frames, error = drain_stream(wire)
        assert frames == payloads  # everything before the damage decoded
        assert error is not None and error.reason in FRAME_REASONS
