"""Tests for the adaptive key-establishment controller."""

import pytest

from repro.core.adaptive import AdaptiveOutcome, establish_key_adaptive
from repro.exceptions import ConfigurationError


class TestAdaptiveEstablishment:
    @pytest.fixture(scope="class")
    def outcome(self, tiny_pipeline):
        return establish_key_adaptive(
            tiny_pipeline, burst_rounds=64, max_bursts=6, episode="adaptive-test"
        )

    def test_returns_outcome(self, outcome):
        assert isinstance(outcome, AdaptiveOutcome)
        assert outcome.bursts_used >= 1
        assert outcome.rounds_used == 64 * outcome.bursts_used

    def test_history_is_monotone(self, outcome):
        # Pooling traces can only add verified bits.
        assert outcome.burst_history == sorted(outcome.burst_history)

    def test_stops_once_target_reached(self, tiny_pipeline, outcome):
        if outcome.success:
            target = tiny_pipeline.config.final_key_bits
            # Every burst before the last was below target (else it would
            # have stopped earlier).
            assert all(bits < target for bits in outcome.burst_history[:-1])

    def test_probing_time_accumulates(self, outcome):
        assert outcome.probing_time_s > 0
        assert outcome.key_generation_rate_bps >= 0

    def test_key_available_on_success(self, outcome):
        if outcome.success:
            assert outcome.final_key is not None

    def test_invalid_parameters_rejected(self, tiny_pipeline):
        with pytest.raises(ConfigurationError):
            establish_key_adaptive(tiny_pipeline, burst_rounds=0)
        with pytest.raises(ConfigurationError):
            establish_key_adaptive(tiny_pipeline, max_bursts=0)
