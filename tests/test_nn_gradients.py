"""Numerical gradient checks for every trainable layer.

Each check compares the analytic backward pass against central finite
differences of a scalar objective ``sum(output * probe)`` -- the strongest
correctness evidence a hand-written backprop can get.
"""

import numpy as np
import pytest

from repro.nn.layers.bilstm import BiLSTM
from repro.nn.layers.dense import Dense, Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.lstm import LSTM

RNG = np.random.default_rng(1234)
EPS = 1e-6
TOL = 1e-5


def numeric_param_grad(layer, x, probe, param_key):
    param = layer.parameters[param_key]
    grad = np.zeros_like(param)
    flat = param.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        plus = float(np.sum(layer.forward(x) * probe))
        flat[i] = original - EPS
        minus = float(np.sum(layer.forward(x) * probe))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * EPS)
    return grad


def numeric_input_grad(layer, x, probe):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        plus = float(np.sum(layer.forward(x) * probe))
        flat[i] = original - EPS
        minus = float(np.sum(layer.forward(x) * probe))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * EPS)
    return grad


def check_layer(layer, x):
    out = layer.forward(x)
    probe = RNG.standard_normal(out.shape)
    # The analytic pass needs training=True: the recurrent layers'
    # inference fast path skips the backward cache entirely.
    layer.forward(x, training=True)
    analytic_input = layer.backward(probe)
    analytic_params = {k: v.copy() for k, v in layer.gradients.items()}

    numeric_input = numeric_input_grad(layer, x, probe)
    np.testing.assert_allclose(analytic_input, numeric_input, atol=TOL, rtol=1e-4)
    for key in layer.parameters:
        numeric = numeric_param_grad(layer, x, probe, key)
        np.testing.assert_allclose(
            analytic_params[key], numeric, atol=TOL, rtol=1e-4,
            err_msg=f"parameter {key}",
        )


class TestDenseGradients:
    def test_linear(self):
        check_layer(Dense(3, seed=0), RNG.standard_normal((4, 5)))

    def test_sigmoid(self):
        check_layer(Dense(3, activation="sigmoid", seed=1), RNG.standard_normal((4, 5)))

    def test_tanh(self):
        check_layer(Dense(2, activation="tanh", seed=2), RNG.standard_normal((3, 4)))

    def test_relu(self):
        # Keep inputs away from the ReLU kink for finite differences.
        x = RNG.standard_normal((4, 5))
        x[np.abs(x) < 0.1] = 0.5
        layer = Dense(3, activation="relu", seed=3)
        layer.forward(x)
        check_layer(layer, x)

    def test_time_distributed(self):
        check_layer(Dense(3, seed=4), RNG.standard_normal((2, 6, 4)))


class TestLSTMGradients:
    def test_return_sequences(self):
        check_layer(LSTM(4, return_sequences=True, seed=0), RNG.standard_normal((3, 5, 2)))

    def test_last_state_only(self):
        check_layer(LSTM(3, return_sequences=False, seed=1), RNG.standard_normal((2, 4, 2)))

    def test_go_backwards(self):
        check_layer(
            LSTM(3, return_sequences=True, go_backwards=True, seed=2),
            RNG.standard_normal((2, 4, 2)),
        )

    def test_go_backwards_last_state(self):
        check_layer(
            LSTM(3, return_sequences=False, go_backwards=True, seed=3),
            RNG.standard_normal((2, 4, 2)),
        )


class TestBiLSTMGradients:
    def test_return_sequences(self):
        check_layer(BiLSTM(3, return_sequences=True, seed=0), RNG.standard_normal((2, 4, 2)))

    def test_final_states(self):
        check_layer(BiLSTM(2, return_sequences=False, seed=1), RNG.standard_normal((2, 3, 2)))


class TestShapes:
    def test_flatten_round_trip(self):
        layer = Flatten()
        x = RNG.standard_normal((3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (3, 20)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_inference_is_identity(self):
        layer = Dropout(0.5, seed=0)
        x = RNG.standard_normal((4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_training_zeroes_and_scales(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((2, 1000))
        out = layer.forward(x, training=True)
        dropped = np.mean(out == 0)
        assert 0.4 < dropped < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((2, 100))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_bilstm_output_width_is_twice_units(self):
        layer = BiLSTM(5, seed=0)
        out = layer.forward(RNG.standard_normal((2, 4, 3)))
        assert out.shape == (2, 4, 10)

    def test_lstm_rejects_2d_input(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            LSTM(3).forward(RNG.standard_normal((4, 5)))
