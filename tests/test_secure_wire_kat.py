"""Known-answer and reference-equivalence pins of the secure wire format.

The optimized record layer (:mod:`repro.secure.records`) promises that
**not a single wire byte changed** relative to the frozen
:mod:`repro.secure.reference` implementation.  Two independent pins hold
it to that:

- **Known answers**: SHA-256 digests of whole wire records (plus full
  hex for the tiniest sizes) generated from the *reference* path and
  committed here as constants.  If either implementation -- or the KDF
  above them -- ever drifts, these fail without needing the other
  implementation present.
- **Pairwise equivalence**: across the same matrix, the optimized seal,
  keystream, decrypt and verify are compared byte-for-byte against the
  reference, including verify parity on tampered records.

The matrix covers payload sizes ``{0, 1, 31, 32, 33, 64, 1024}`` (empty,
sub-block, both block boundaries, the benchmark sizes), both directions,
and large epoch/sequence values that exercise every header field's width.
"""

import pytest

from repro.secure import reference
from repro.secure.kdf import ChannelContext, derive_channel_keys
from repro.secure.records import (
    decrypt_record,
    keystream_bytes,
    parse_record,
    seal_record,
    verify_record,
    xor_bytes,
)

import hashlib

MASTER = bytes(range(32))

#: The KAT matrix axes.
KAT_SIZES = (0, 1, 31, 32, 33, 64, 1024)
KAT_EPOCHS = (0, 70000)
KAT_SEQUENCES = (0, 2**19)

#: ``(size, direction, epoch, sequence) -> sha256(wire)``, generated from
#: the frozen reference implementation.  Do not regenerate casually: a
#: change here is a wire-format break.
KAT_DIGESTS = {
    (0, 0, 0, 0): "a89709b42b70a932ea5ab607c8898b72df6764372268962975f6d94932df762a",
    (0, 0, 0, 524288): "a82025f1f3ccecf51ecd650adf7797c471c104fcbaca4a645f11882609f28887",
    (0, 0, 70000, 0): "668cc4b08c7e7be37c23f4a4994584362bc7768a50ee314ee91f655f01cc970b",
    (0, 0, 70000, 524288): "8b7292f5c2271296e707283061a6796f202c75251d3b311b59ac38e0dc01a8e0",
    (0, 1, 0, 0): "960462df1040a373358e5d9855889035b72c28dd6233e95bcb0fc648c12c0308",
    (0, 1, 0, 524288): "12eec101647507e163dba17fa4f4573a02e66abfefdfdbca395d0b4bf6918a2b",
    (0, 1, 70000, 0): "b74c41bc92b9f82aecbd619055826f37b0411c1c60f185b5c9e92d21949d0095",
    (0, 1, 70000, 524288): "4aea4af26f29585605e2fcdeaf5a65f55c325267e2454adeea1e5afce581267f",
    (1, 0, 0, 0): "e38e7523cc44aa7289d3e910b7b90fb667fc60f43145729720d73446c3de4cc9",
    (1, 0, 0, 524288): "fb8ba755467e33bf6d25242084691fa278ebd3e7eaa60969b71a3149159efe85",
    (1, 0, 70000, 0): "c20dcd125de0be08944d33aac6c788acae2dd55f166cdca76459de70a7a741c2",
    (1, 0, 70000, 524288): "efc7e5061c3a5b65ab1ff1090abd57448eacf4db9b106871fc45cccd5546709f",
    (1, 1, 0, 0): "0635841b5789573bc3186fa26df8ae8c9609b3ab3851a03d68c51cc0f02d1503",
    (1, 1, 0, 524288): "0d05061e1bc92ee9d51651d052f74cefda7a7fe71e40a487538c5316ccb178b2",
    (1, 1, 70000, 0): "bd2f97b8ec930329a4d5eb6d42ea852afb0a2cf4ddf8118f70ead44ee2dafc99",
    (1, 1, 70000, 524288): "480c0b0235aefe6a5d8c74703d8ed900ee0db04acd353bb45ad93c4edd20aa70",
    (31, 0, 0, 0): "8edf825ff869aee097b39bde4c4f46bc98ce3098cc7aa93ad0d5fbf7503f8286",
    (31, 0, 0, 524288): "0e64cdf87561b3293f8022353307a1899b8dbfd89ff314942d6a5e0a9d71b865",
    (31, 0, 70000, 0): "6acf9cab17dbd9e72be146c590c1d9849e428634674d8670629ca29dc6f4679b",
    (31, 0, 70000, 524288): "73302c31020fd92d5eb099d652dc882924ad0530ac99e16684e88b0d983da9a7",
    (31, 1, 0, 0): "e07f3fabc22d8afe9edd2c1fbcf6bbbd8d70d5291e810d7623803c10cfd87be6",
    (31, 1, 0, 524288): "5013478ff17c0508a43d312d3308bd165a2e2b33c60201e464c2ec4507bb333e",
    (31, 1, 70000, 0): "fe8f057df681ef2acc3d674edb8e1f657f1abdc8c1145f0a8c73d034c3437465",
    (31, 1, 70000, 524288): "09a16218a3e36494a2e43c9bb4b2e65015a94f4683610174f634959e1a565517",
    (32, 0, 0, 0): "45419a20d14bb38ca7975da26c76745961242a96d0a5bfb6fb853a775d98bcff",
    (32, 0, 0, 524288): "fc69708d7a5e6749d1a106928aa764a35103598c0626cff02e47465393be1855",
    (32, 0, 70000, 0): "3d355a58ef807d16ce1425270a170dd4ff8de3683592d073cebe689ec29340cc",
    (32, 0, 70000, 524288): "8936fed9bebbb0b9a9bcb9828286cc6297d9f09329fafcd6931eb2d7b3afeb9d",
    (32, 1, 0, 0): "6c82ae86344b071219e7ff272a4d9e7897904caf6ccf424b4f50420e83ef111b",
    (32, 1, 0, 524288): "86c114911c76d14021585b2fedb920f56662041db3596cf1cbb73e36c58761bc",
    (32, 1, 70000, 0): "867f4158c7c8a5b517d0208771bf3fa0f46d7496543c740662defba93f44f50a",
    (32, 1, 70000, 524288): "f2c470706b5d128bc6f8320e66e8d6838b49631a56bc9d6bcee40bd985707da3",
    (33, 0, 0, 0): "e3f39610fc9c4b91fe7dc965f158d7fd6bc0ac9c1df22c28768c6378f6a2fe46",
    (33, 0, 0, 524288): "7fd599093cae782e10ad872d88ad786b324e112f87bfb4e5af51f6c09d0782c1",
    (33, 0, 70000, 0): "d1ba0cdd701e1d0fe83fc43262dfc30fd8fbaececd7322b17372d7f09ee576bc",
    (33, 0, 70000, 524288): "3d7b3b3cbcf3c8bb056c6ddcbdeb5e615b706528ec282ba4d08bc062bdcc5e0a",
    (33, 1, 0, 0): "d9bf78c8632235914a3d1c65b50e60becf82b4767ef9b4c8dd1439280b4af8df",
    (33, 1, 0, 524288): "d00f9928533c835355c3b8c8a683358db7f060da6d263a5ff808bb66f1ca34a1",
    (33, 1, 70000, 0): "b2375c3fd10fa0820de3a7a87e8f09f626b74f184057ca5d9ec2b8511d8d1ba8",
    (33, 1, 70000, 524288): "d6a6e825b19b9ef206f56ed92c46dc13ae18ac0ef0aff4e546643723f57f7c46",
    (64, 0, 0, 0): "09f6fb721b959c599c5524e8faf6061fd287c128fc061662782bb540289778f4",
    (64, 0, 0, 524288): "c801badbdc4d106e46def4b3c30cb50ea6a5e2e508d05b976db7a12d6247e364",
    (64, 0, 70000, 0): "2dd9e071ccc2b961c9727d3f1c2e32e34f68a19675b76c8c67c940a1d70f87ef",
    (64, 0, 70000, 524288): "8bbfd02d9ba6f054c03371486d0c26de3676750cf3bb119b09eca8fd89c0b72a",
    (64, 1, 0, 0): "21c72138e4c2c8fab64f87b004df4cdc17c32dde0749841b009418b996de4ec1",
    (64, 1, 0, 524288): "df416fc4b94bf8e93b05267d8e6f8b2b36bc2332cd7ffb1a1eba35bae54125a7",
    (64, 1, 70000, 0): "c2be977ad830298ece980f2ed162165fe99b5768fc8ac59a4a7097029503c409",
    (64, 1, 70000, 524288): "2b58eb241f0828bc6da07f59f0869baa535981e6a7dbfaefb91863c01daaa3e5",
    (1024, 0, 0, 0): "509e11e7b2a46287a4396a60a6987e305244d3948618f2a4a28031fb8afc502f",
    (1024, 0, 0, 524288): "ed3689ef2360f033579d3555a193b7eeb3cbf8409827adf9394c098cb828db3b",
    (1024, 0, 70000, 0): "d33c8b528419189bc1b7684b4b6b697e2c44982e6142ce3b654ac927cbab2134",
    (1024, 0, 70000, 524288): "ac52740a5676c9fc4c95038b721e5d8328e5fe67ceb82ad878db1ffe0ac1e2c1",
    (1024, 1, 0, 0): "a52e0efc2ff6ed3a93af2545244de79d440f7a7cb0bd31c7f1c1c1b5439de727",
    (1024, 1, 0, 524288): "07af14b88f90488ea601be29fbf4d6a97f4410abff1909d2d0d3de7409f84f38",
    (1024, 1, 70000, 0): "edf2dd5afa1819adf69c62acf3bc3e73deb2de66c355e6484349a3c144fbdc61",
    (1024, 1, 70000, 524288): "6d13a8dd4cfe3514685e05873f4bcfa22a2b7383da5d57df44b703ade16e9916",
}

#: Full wire hex of the smallest records (initiator direction, epoch 0,
#: sequence 0) so a digest mismatch has a byte-level witness.
KAT_WIRES_HEX = {
    0: "01000000000000000000000000000000000052df13bfadae25509a96528d69849270",
    1: "01000000000000000000000000000000000184bbced67c0f7c6213c78d9fa4e5807a59",
    31: (
        "01000000000000000000000000000000001f84c91d70c7d62ee747c88307aaa0"
        "37805fec28ac752f3106c6c292820bfb622b4d00da6d251bf0bf77fa86792385"
        "f6"
    ),
}


def _plaintext(size: int) -> bytes:
    return bytes(i % 251 for i in range(size))


@pytest.fixture(scope="module")
def keys():
    return derive_channel_keys(
        MASTER,
        ChannelContext(
            session_nonce=b"\x11" * 16,
            initiator_id="vk-alice",
            responder_id="vk-bob",
            pipeline_fingerprint="kat-v1",
        ),
    )


def _direction_keys(keys, direction):
    return keys.send_keys("initiator" if direction == 0 else "responder")


class TestKnownAnswers:
    @pytest.mark.parametrize("size", KAT_SIZES)
    @pytest.mark.parametrize("direction", (0, 1))
    @pytest.mark.parametrize("epoch", KAT_EPOCHS)
    @pytest.mark.parametrize("sequence", KAT_SEQUENCES)
    def test_optimized_path_matches_pinned_digest(
        self, keys, size, direction, epoch, sequence
    ):
        dk = _direction_keys(keys, direction)
        wire = seal_record(dk, epoch, direction, sequence, _plaintext(size)).encode()
        assert (
            hashlib.sha256(wire).hexdigest()
            == KAT_DIGESTS[(size, direction, epoch, sequence)]
        )

    @pytest.mark.parametrize("size", KAT_SIZES)
    @pytest.mark.parametrize("direction", (0, 1))
    @pytest.mark.parametrize("epoch", KAT_EPOCHS)
    @pytest.mark.parametrize("sequence", KAT_SEQUENCES)
    def test_reference_path_matches_pinned_digest(
        self, keys, size, direction, epoch, sequence
    ):
        dk = _direction_keys(keys, direction)
        wire = reference.seal_record(
            dk, epoch, direction, sequence, _plaintext(size)
        ).encode()
        assert (
            hashlib.sha256(wire).hexdigest()
            == KAT_DIGESTS[(size, direction, epoch, sequence)]
        )

    @pytest.mark.parametrize("size", sorted(KAT_WIRES_HEX))
    def test_tiny_records_match_pinned_bytes(self, keys, size):
        dk = _direction_keys(keys, 0)
        wire = seal_record(dk, 0, 0, 0, _plaintext(size)).encode()
        assert wire.hex() == KAT_WIRES_HEX[size]

    def test_kat_matrix_is_complete(self):
        assert len(KAT_DIGESTS) == len(KAT_SIZES) * 2 * len(KAT_EPOCHS) * len(
            KAT_SEQUENCES
        )


class TestReferenceEquivalence:
    @pytest.mark.parametrize("size", KAT_SIZES + (5000,))
    @pytest.mark.parametrize("direction", (0, 1))
    def test_seal_bytes_identical(self, keys, size, direction):
        dk = _direction_keys(keys, direction)
        pt = _plaintext(size)
        for epoch, sequence in ((0, 0), (3, 1), (70000, 2**19)):
            fast = seal_record(dk, epoch, direction, sequence, pt)
            slow = reference.seal_record(dk, epoch, direction, sequence, pt)
            assert fast == slow
            assert fast.encode() == slow.encode()

    @pytest.mark.parametrize("length", (0, 1, 31, 32, 33, 64, 1024, 5000))
    def test_keystream_identical(self, keys, length):
        dk = _direction_keys(keys, 0)
        fast = keystream_bytes(dk, 7, 0, 42, length)
        slow = reference._keystream_xor(dk.enc_key, 7, 0, 42, bytes(length))
        assert fast == slow  # XOR against zeros is the raw keystream
        assert len(fast) == length

    def test_decrypt_and_verify_identical(self, keys):
        dk = _direction_keys(keys, 0)
        pt = _plaintext(1024)
        record = parse_record(seal_record(dk, 2, 0, 9, pt).encode())
        assert verify_record(dk, record)
        assert reference.verify_record(dk, record)
        assert decrypt_record(dk, record) == pt
        assert reference.decrypt_record(dk, record) == pt

    def test_tampered_record_rejected_by_both(self, keys):
        dk = _direction_keys(keys, 0)
        wire = bytearray(seal_record(dk, 0, 0, 5, _plaintext(64)).encode())
        for bit_index in (0, 8 * 20 + 3, 8 * len(wire) - 1):
            tampered = bytearray(wire)
            tampered[bit_index // 8] ^= 1 << (bit_index % 8)
            try:
                record = parse_record(bytes(tampered))
            except Exception:
                continue  # structural damage: neither path consults a MAC
            assert not verify_record(dk, record)
            assert not reference.verify_record(dk, record)

    def test_xor_bytes_roundtrip_both_regimes(self):
        for length in (1, 255, 256, 4096):  # either side of the NumPy cutover
            data = bytes((i * 37) % 256 for i in range(length))
            stream = bytes((i * 101 + 7) % 256 for i in range(length))
            out = xor_bytes(data, stream)
            assert len(out) == length
            assert xor_bytes(out, stream) == data
            assert out == bytes(d ^ s for d, s in zip(data, stream))
