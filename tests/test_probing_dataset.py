"""Tests for dataset windowing, normalization, splits and persistence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.probing.dataset import (
    KeyGenDataset,
    build_dataset,
    split_dataset,
)

RNG = np.random.default_rng(5)


def make_sequences(n=256):
    alice = RNG.normal(-90, 4, size=n)
    bob = alice + RNG.normal(0, 1, size=n)
    return alice, bob


class TestBuildDataset:
    def test_disjoint_windows_by_default(self):
        alice, bob = make_sequences(100)
        dataset = build_dataset(alice, bob, seq_len=32)
        assert len(dataset) == 3
        np.testing.assert_array_equal(dataset.alice_raw[1], alice[32:64])

    def test_custom_stride_overlaps(self):
        alice, bob = make_sequences(64)
        dataset = build_dataset(alice, bob, seq_len=32, stride=16)
        assert len(dataset) == 3

    def test_windows_are_normalized(self):
        alice, bob = make_sequences()
        dataset = build_dataset(alice, bob, seq_len=32)
        np.testing.assert_allclose(dataset.alice.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(dataset.alice.std(axis=1), 1.0, atol=1e-6)

    def test_raw_windows_kept(self):
        alice, bob = make_sequences()
        dataset = build_dataset(alice, bob, seq_len=32)
        assert dataset.alice_raw.min() < -70  # still in dBm units

    def test_constant_window_does_not_blow_up(self):
        alice = np.full(64, -90.0)
        bob = np.full(64, -91.0)
        dataset = build_dataset(alice, bob, seq_len=32)
        assert np.all(np.isfinite(dataset.alice))

    def test_too_short_sequence_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dataset(np.zeros(10), np.zeros(10), seq_len=32)

    def test_misaligned_sequences_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dataset(np.zeros(64), np.zeros(65), seq_len=32)


class TestSplits:
    def test_partition_is_exhaustive_and_disjoint(self):
        alice, bob = make_sequences(32 * 20)
        dataset = build_dataset(alice, bob, seq_len=32)
        splits = split_dataset(dataset, seed=1)
        total = len(splits.train) + len(splits.validation) + len(splits.test)
        assert total == len(dataset)

    def test_default_fractions_roughly_70_15_15(self):
        alice, bob = make_sequences(32 * 100)
        dataset = build_dataset(alice, bob, seq_len=32)
        splits = split_dataset(dataset, seed=2)
        assert abs(len(splits.train) / len(dataset) - 0.70) < 0.05

    def test_deterministic_in_seed(self):
        alice, bob = make_sequences(32 * 10)
        dataset = build_dataset(alice, bob, seq_len=32)
        a = split_dataset(dataset, seed=3)
        b = split_dataset(dataset, seed=3)
        np.testing.assert_array_equal(a.train.alice, b.train.alice)

    def test_train_never_empty(self):
        alice, bob = make_sequences(32 * 2)
        dataset = build_dataset(alice, bob, seq_len=32)
        splits = split_dataset(dataset, seed=4)
        assert len(splits.train) >= 1

    def test_bad_fractions_rejected(self):
        alice, bob = make_sequences(64)
        dataset = build_dataset(alice, bob, seq_len=32)
        with pytest.raises(ConfigurationError):
            split_dataset(dataset, fractions=(0.5, 0.5, 0.5))


class TestDatasetOperations:
    def test_take_fraction_size(self):
        alice, bob = make_sequences(32 * 10)
        dataset = build_dataset(alice, bob, seq_len=32)
        subset = dataset.take_fraction(0.3, seed=0)
        assert len(subset) == 3

    def test_take_fraction_minimum_one(self):
        alice, bob = make_sequences(32)
        dataset = build_dataset(alice, bob, seq_len=32)
        assert len(dataset.take_fraction(0.01, seed=0)) == 1

    def test_take_fraction_invalid_rejected(self):
        alice, bob = make_sequences(64)
        dataset = build_dataset(alice, bob, seq_len=32)
        with pytest.raises(ConfigurationError):
            dataset.take_fraction(0.0)

    def test_save_load_round_trip(self, tmp_path):
        alice, bob = make_sequences()
        dataset = build_dataset(alice, bob, seq_len=32)
        path = tmp_path / "dataset.npz"
        dataset.save(path)
        loaded = KeyGenDataset.load(path)
        np.testing.assert_array_equal(loaded.alice, dataset.alice)
        np.testing.assert_array_equal(loaded.bob_raw, dataset.bob_raw)

    def test_subset_preserves_pairing(self):
        alice, bob = make_sequences()
        dataset = build_dataset(alice, bob, seq_len=32)
        subset = dataset.subset(np.array([1]))
        np.testing.assert_array_equal(subset.alice_raw[0], dataset.alice_raw[1])
        np.testing.assert_array_equal(subset.bob_raw[0], dataset.bob_raw[1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyGenDataset(
                alice=np.zeros((2, 4)),
                bob=np.zeros((2, 4)),
                alice_raw=np.zeros((2, 4)),
                bob_raw=np.zeros((3, 4)),
            )

    @given(st.integers(min_value=32, max_value=400), st.integers(0, 2**31))
    @settings(max_examples=20)
    def test_window_count_formula(self, n, seed):
        rng = np.random.default_rng(seed)
        series = rng.normal(size=n)
        dataset = build_dataset(series, series.copy(), seq_len=32)
        assert len(dataset) == 1 + (n - 32) // 32
