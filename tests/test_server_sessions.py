"""Behavioural tests for the key-establishment session server.

Each test stands up a real :class:`KeyEstablishmentServer` on a loopback
port and exercises one clause of the robustness contract: honest clients
get results, overload sheds with a structured retry-after, duplicate ids
are refused, quiet and slow-loris peers are reaped, corrupt frames abort
only their own session, a poisoned batch falls back to supervised
per-session execution, and a drain delivers in-flight work without
leaking a single session record.

No pytest-asyncio in the environment: every test wraps its scenario in
``asyncio.run``.
"""

import asyncio

import pytest

from repro.server import (
    DeviceClient,
    Endpoint,
    KeyEstablishmentServer,
    ModelRegistry,
    ServerConfig,
    run_behavior,
)

#: Short probing sessions keep each scenario well under a second.
ROUNDS = 48


def fast_config(**overrides) -> ServerConfig:
    """Loopback server knobs with test-sized liveness budgets."""
    defaults = dict(
        port=0,
        hello_timeout_s=1.0,
        idle_timeout_s=5.0,
        session_deadline_s=30.0,
        tick_interval_s=0.01,
        max_batch=8,
        queue_limit=8,
        max_sessions=32,
        retry_after_s=0.25,
        reap_interval_s=0.1,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def run_scenario(pipeline, config, scenario):
    """Start a server, run ``scenario(server, endpoint)``, always drain."""

    async def body():
        server = KeyEstablishmentServer(ModelRegistry(pipeline), config)
        await server.start()
        endpoint = Endpoint(port=server.bound_port)
        try:
            result = await scenario(server, endpoint)
        finally:
            if not server.closed:
                await server.drain(timeout=10.0)
        assert server.active_sessions == 0  # no leak, ever
        return result, server

    return asyncio.run(body())


class TestHonestPath:
    def test_honest_session_gets_result(self, tiny_pipeline):
        async def scenario(server, endpoint):
            return await run_behavior(
                endpoint, "normal", "dev-1", episode="srv-t1", rounds=ROUNDS
            )

        outcome, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert outcome.kind == "result"
        assert outcome.frame["session_id"] == "dev-1"
        assert outcome.frame["final_state"] in ("complete", "aborted")
        assert "key_digest" in outcome.frame
        assert "degraded_mode" in outcome.frame
        assert server.metrics.completed == 1
        assert server.metrics.ticks >= 1

    def test_result_never_carries_raw_key(self, tiny_pipeline):
        async def scenario(server, endpoint):
            return await run_behavior(
                endpoint, "normal", "dev-1", episode="srv-t2", rounds=ROUNDS
            )

        outcome, _ = run_scenario(tiny_pipeline, fast_config(), scenario)
        digest = outcome.frame.get("key_digest")
        if digest is not None:
            assert len(digest) == 32  # truncated sha256 hex, not key bytes
        assert "final_key" not in outcome.frame
        assert "key" not in outcome.frame

    def test_concurrent_honest_clients_coalesce(self, tiny_pipeline):
        async def scenario(server, endpoint):
            outcomes = await asyncio.gather(
                *(
                    run_behavior(
                        endpoint,
                        "normal",
                        f"dev-{i}",
                        episode=f"srv-t3-{i}",
                        rounds=ROUNDS,
                    )
                    for i in range(6)
                )
            )
            return outcomes

        outcomes, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert all(outcome.kind == "result" for outcome in outcomes)
        # Fewer ticks than sessions proves coalescing happened.
        assert server.metrics.ticks <= len(outcomes)
        assert server.metrics.tick_sessions_max >= 1

    def test_ping_and_health_are_answered(self, tiny_pipeline):
        async def scenario(server, endpoint):
            client = DeviceClient(endpoint, "dev-ping", rounds=ROUNDS)
            await client.connect()
            try:
                await client.hello()
                await client.send({"type": "ping"})
                pong = await client.recv()
                await client.send({"type": "health"})
                health = await client.recv()
                await client.send({"type": "bye"})
                return pong, health
            finally:
                await client.close()

        (pong, health), _ = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert pong["type"] == "pong"
        assert health["type"] == "health"
        assert health["active_sessions"] >= 1
        assert health["metrics"]["accepted"] >= 1


class TestBackpressure:
    def test_overload_sheds_with_retry_after(self, tiny_pipeline):
        config = fast_config(max_sessions=1)

        async def scenario(server, endpoint):
            first = DeviceClient(endpoint, "dev-a")
            await first.connect()
            try:
                welcome = await first.hello()
                assert welcome["type"] == "welcome"
                shed = await run_behavior(endpoint, "normal", "dev-b")
                return shed
            finally:
                await first.close()

        shed, server = run_scenario(tiny_pipeline, config, scenario)
        assert shed.kind == "rejected"
        assert shed.frame["reason"] == "server-overloaded"
        assert shed.frame["retry_after_s"] == pytest.approx(0.25)
        assert server.metrics.rejected_overload == 1

    def test_duplicate_session_id_is_refused(self, tiny_pipeline):
        async def scenario(server, endpoint):
            first = DeviceClient(endpoint, "dev-dup")
            await first.connect()
            try:
                await first.hello()
                second = await run_behavior(endpoint, "normal", "dev-dup")
                return second
            finally:
                await first.close()

        second, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert second.kind == "rejected"
        assert second.frame["reason"] == "duplicate-session"
        assert "retry_after_s" in second.frame
        assert server.metrics.rejected_duplicate == 1


class TestLiveness:
    def test_idle_session_is_reaped(self, tiny_pipeline):
        config = fast_config(idle_timeout_s=0.3, reap_interval_s=0.05)

        async def scenario(server, endpoint):
            client = DeviceClient(endpoint, "dev-idle", timeout_s=10.0)
            await client.connect()
            try:
                await client.hello()
                return await client.recv()  # the reaper's abort frame
            finally:
                await client.close()

        verdict, server = run_scenario(tiny_pipeline, config, scenario)
        assert verdict["type"] == "abort"
        assert verdict["reason"] == "idle-timeout"
        assert server.metrics.reaped_idle == 1

    def test_slow_loris_is_reaped_not_hung(self, tiny_pipeline):
        config = fast_config(idle_timeout_s=0.3, reap_interval_s=0.05)

        async def scenario(server, endpoint):
            return await run_behavior(
                endpoint, "slow-loris", "dev-loris", timeout_s=10.0
            )

        outcome, server = run_scenario(tiny_pipeline, config, scenario)
        assert outcome.kind == "abort"
        assert outcome.frame["reason"] == "idle-timeout"
        assert server.metrics.reaped_idle == 1

    def test_deadline_is_enforced(self, tiny_pipeline):
        # Deadline shorter than the idle budget: the session dies by
        # deadline even though the peer keeps pinging.
        config = fast_config(
            idle_timeout_s=30.0, session_deadline_s=0.4, reap_interval_s=0.05
        )

        async def scenario(server, endpoint):
            client = DeviceClient(endpoint, "dev-deadline", timeout_s=10.0)
            await client.connect()
            try:
                await client.hello()
                while True:
                    await client.send({"type": "ping"})
                    frame = await client.recv()
                    if frame is None or frame.get("type") == "abort":
                        return frame
                    await asyncio.sleep(0.1)
            finally:
                await client.close()

        verdict, server = run_scenario(tiny_pipeline, config, scenario)
        assert verdict["type"] == "abort"
        assert verdict["reason"] == "deadline-exceeded"
        assert server.metrics.reaped_deadline == 1


class TestFailureIsolation:
    def test_corrupt_frame_aborts_only_its_session(self, tiny_pipeline):
        async def scenario(server, endpoint):
            return await asyncio.gather(
                run_behavior(
                    endpoint, "normal", "dev-good", episode="srv-iso", rounds=ROUNDS
                ),
                run_behavior(endpoint, "corrupt-frame", "dev-evil"),
            )

        (good, evil), server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert good.kind == "result"
        assert evil.kind == "abort"
        assert evil.frame["reason"] == "malformed-frame"
        assert server.metrics.malformed_frames >= 1

    def test_oversized_frame_aborts_structurally(self, tiny_pipeline):
        async def scenario(server, endpoint):
            return await run_behavior(endpoint, "oversized-frame", "dev-big")

        outcome, _ = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert outcome.kind == "abort"
        assert outcome.frame["reason"] == "malformed-frame"

    def test_unknown_frame_type_aborts_taxonomized(self, tiny_pipeline):
        async def scenario(server, endpoint):
            return await run_behavior(endpoint, "unknown-frame", "dev-odd")

        outcome, _ = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert outcome.kind == "abort"
        assert outcome.frame["reason"] == "malformed-message"

    def test_poisoned_batch_falls_back_per_session(self, tiny_pipeline, monkeypatch):
        import repro.server.server as server_module

        class ExplodingRunner:
            """A batch runner whose batched path always detonates."""

            def __init__(self, *args, **kwargs):
                pass

            def run_episodes(self, labels):
                raise RuntimeError("poisoned batch tick")

        monkeypatch.setattr(server_module, "BatchedSessionRunner", ExplodingRunner)

        async def scenario(server, endpoint):
            return await asyncio.gather(
                run_behavior(
                    endpoint, "normal", "dev-f1", episode="srv-fb1", rounds=ROUNDS
                ),
                run_behavior(
                    endpoint, "normal", "dev-f2", episode="srv-fb2", rounds=ROUNDS
                ),
            )

        outcomes, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        # The supervisor isolated the batch failure and every session
        # still received a structured verdict via the per-session path.
        assert all(outcome.kind == "result" for outcome in outcomes)
        assert server.metrics.batch_fallbacks >= 1

    def test_poisoned_session_aborts_alone(self, tiny_pipeline, monkeypatch):
        import repro.server.server as server_module

        real_establish = tiny_pipeline.establish_key

        class ExplodingRunner:
            """Force the per-session fallback so one session can poison."""

            def __init__(self, *args, **kwargs):
                pass

            def run_episodes(self, labels):
                raise RuntimeError("force fallback")

        def selective_establish(episode="live", **kwargs):
            if episode == "srv-poison":
                raise RuntimeError("poisoned session")
            return real_establish(episode=episode, **kwargs)

        monkeypatch.setattr(server_module, "BatchedSessionRunner", ExplodingRunner)
        monkeypatch.setattr(tiny_pipeline, "establish_key", selective_establish)

        async def scenario(server, endpoint):
            return await asyncio.gather(
                run_behavior(
                    endpoint, "normal", "dev-ok", episode="srv-fine", rounds=ROUNDS
                ),
                run_behavior(
                    endpoint, "normal", "dev-bad", episode="srv-poison", rounds=ROUNDS
                ),
            )

        (ok, bad), server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert ok.kind == "result"
        assert bad.kind == "abort"
        assert bad.frame["reason"] == "internal-error"
        assert server.metrics.aborted.get("internal-error") == 1


class TestGracefulDrain:
    def test_drain_delivers_inflight_and_rejects_new(self, tiny_pipeline):
        async def scenario(server, endpoint):
            inflight = asyncio.create_task(
                run_behavior(
                    endpoint, "normal", "dev-in", episode="srv-drain", rounds=ROUNDS
                )
            )
            parked = DeviceClient(endpoint, "dev-parked", timeout_s=10.0)
            await parked.connect()
            await parked.hello()  # admitted but never starts
            await asyncio.sleep(0.05)
            report = await server.drain(timeout=15.0)
            late = await run_behavior(endpoint, "normal", "dev-late", timeout_s=2.0)
            inflight_outcome = await inflight
            parked_verdict = await parked.recv()
            await parked.close()
            return report, inflight_outcome, parked_verdict, late

        (report, inflight, parked, late), server = run_scenario(
            tiny_pipeline, fast_config(), scenario
        )
        assert report.leaked == 0
        # The started session completed and its result was delivered.
        assert inflight.kind == "result"
        # The parked session was aborted with the draining slug.
        assert parked["type"] == "abort"
        assert parked["reason"] == "server-draining"
        # Latecomers cannot connect at all (listener closed) -- a
        # structured client-side error, not a hang.
        assert late.kind in ("error", "rejected", "closed")
        assert server.closed

    def test_disconnect_after_start_does_not_stall_ticks(self, tiny_pipeline):
        async def scenario(server, endpoint):
            ghost = await run_behavior(
                endpoint,
                "disconnect-after-start",
                "dev-ghost",
                episode="srv-ghost",
                rounds=ROUNDS,
            )
            honest = await run_behavior(
                endpoint, "normal", "dev-honest", episode="srv-honest", rounds=ROUNDS
            )
            return ghost, honest

        (ghost, honest), server = run_scenario(
            tiny_pipeline, fast_config(), scenario
        )
        assert ghost.kind == "closed"
        assert honest.kind == "result"  # the wedge didn't stall anyone
