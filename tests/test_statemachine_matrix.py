"""Exhaustive transition-matrix proof for the session state machine.

The session server feeds :meth:`SessionStateMachine.on_event` with
events derived from the wire, from timers and from the batch executor --
i.e. from attacker-controlled and timing-dependent sources.  The safety
claim is therefore not "the happy path works" but "*every* (state, event)
pair resolves without an exception": a legal progress transition, a
taxonomized abort, or an absorbed no-op in a terminal state.  This module
enumerates the full |states| x |events| matrix and pins that claim, plus
the closedness of the abort taxonomy itself.
"""

import pytest

from repro.core.statemachine import (
    ABORT_DESYNC,
    ABORT_REASONS,
    SessionEvent,
    SessionState,
    SessionStateMachine,
)

#: Event sequences that drive a fresh machine into each state.
_PATH_TO_STATE = {
    SessionState.INIT: (),
    SessionState.EXTRACTING: (SessionEvent.START,),
    SessionState.RECONCILING: (SessionEvent.START, SessionEvent.BLOCKS_READY),
    SessionState.CONFIRMING: (
        SessionEvent.START,
        SessionEvent.BLOCKS_READY,
        SessionEvent.SYNDROMES_VERIFIED,
    ),
    SessionState.COMPLETE: (
        SessionEvent.START,
        SessionEvent.BLOCKS_READY,
        SessionEvent.SYNDROMES_VERIFIED,
        SessionEvent.CONFIRM_OK,
    ),
    SessionState.ABORTED: (SessionEvent.REPLAY,),
}

#: The one (state, successor) pair each progress event is legal in.
_LEGAL_PROGRESS = {
    SessionEvent.START: (SessionState.INIT, SessionState.EXTRACTING),
    SessionEvent.BLOCKS_READY: (SessionState.EXTRACTING, SessionState.RECONCILING),
    SessionEvent.NO_BLOCKS: (SessionState.EXTRACTING, SessionState.COMPLETE),
    SessionEvent.SYNDROMES_VERIFIED: (
        SessionState.RECONCILING,
        SessionState.CONFIRMING,
    ),
    SessionEvent.RECONCILE_EXHAUSTED: (
        SessionState.RECONCILING,
        SessionState.COMPLETE,
    ),
    SessionEvent.CONFIRM_OK: (SessionState.CONFIRMING, SessionState.COMPLETE),
}

#: Abort events and the taxonomy slug each must record.
_ABORT_SLUGS = {
    SessionEvent.REPLAY: "replay-detected",
    SessionEvent.MALFORMED: "malformed-message",
    SessionEvent.MAC_FAILURE: "mac-verification-failed",
    SessionEvent.CONFIRM_FAIL: "confirmation-failed",
    SessionEvent.DEADLINE_EXPIRED: "deadline-exceeded",
    SessionEvent.IDLE_EXPIRED: "idle-timeout",
    SessionEvent.PEER_DISCONNECTED: "client-disconnected",
    SessionEvent.FRAME_CORRUPT: "malformed-frame",
    SessionEvent.DUPLICATE_SESSION: "duplicate-session",
    SessionEvent.OVERLOADED: "server-overloaded",
    SessionEvent.DRAINING: "server-draining",
    SessionEvent.INTERNAL_ERROR: "internal-error",
    SessionEvent.SECURE_FAILURE: "secure-channel-failed",
    SessionEvent.RECOVERED: "recovered-after-crash",
}


def machine_in(state: SessionState) -> SessionStateMachine:
    """A machine driven into ``state`` through legal events only."""
    machine = SessionStateMachine()
    for event in _PATH_TO_STATE[state]:
        machine.on_event(event)
    assert machine.state is state
    return machine


class TestMatrixIsTotal:
    """Every (state, event) pair resolves; none raises."""

    @pytest.mark.parametrize("state", list(SessionState))
    @pytest.mark.parametrize("event", list(SessionEvent))
    def test_pair_never_raises(self, state, event):
        machine = machine_in(state)
        record = machine.on_event(event, "matrix probe")
        # Whatever happened, the machine is in a consistent, legal place:
        assert machine.state in SessionState
        if record is not None:
            assert record.reason in ABORT_REASONS

    @pytest.mark.parametrize("state", list(SessionState))
    @pytest.mark.parametrize("event", list(SessionEvent))
    def test_pair_outcome_is_classified(self, state, event):
        """Each pair lands in exactly one of the three legal outcomes."""
        machine = machine_in(state)
        before_record = machine.abort_record
        record = machine.on_event(event, "matrix probe")
        if state in (SessionState.COMPLETE, SessionState.ABORTED):
            # Terminal absorption: nothing changes, the original verdict
            # (None for COMPLETE, the first abort for ABORTED) is echoed.
            assert machine.state is state
            assert record is before_record
        elif event in _LEGAL_PROGRESS and _LEGAL_PROGRESS[event][0] is state:
            # Legal progress: advance to the one successor, no abort.
            assert machine.state is _LEGAL_PROGRESS[event][1]
            assert record is None
            assert machine.abort_record is None
        elif event in _LEGAL_PROGRESS:
            # Out-of-order progress event: a peer desync abort.
            assert machine.state is SessionState.ABORTED
            assert record is not None
            assert record.reason == ABORT_DESYNC
            assert record.state == state.value
        else:
            # Abort event: the taxonomized abort for that event.
            assert machine.state is SessionState.ABORTED
            assert record is not None
            assert record.reason == _ABORT_SLUGS[event]
            assert record.state == state.value


class TestTaxonomyClosed:
    """The event set and the abort taxonomy tile each other exactly."""

    def test_every_event_is_progress_or_abort(self):
        classified = set(_LEGAL_PROGRESS) | set(_ABORT_SLUGS)
        assert classified == set(SessionEvent)

    def test_abort_slugs_cover_taxonomy(self):
        # Every reason is reachable: the thirteen event-mapped slugs plus
        # the desync abort produced by out-of-order progress events.
        reachable = set(_ABORT_SLUGS.values()) | {ABORT_DESYNC}
        assert reachable == set(ABORT_REASONS)

    def test_first_abort_wins(self):
        machine = machine_in(SessionState.RECONCILING)
        first = machine.on_event(SessionEvent.MAC_FAILURE, "first")
        second = machine.on_event(SessionEvent.IDLE_EXPIRED, "late reap")
        assert second is first
        assert machine.abort_record.reason == "mac-verification-failed"

    def test_history_records_every_visit(self):
        machine = machine_in(SessionState.COMPLETE)
        assert machine.history == [
            SessionState.INIT,
            SessionState.EXTRACTING,
            SessionState.RECONCILING,
            SessionState.CONFIRMING,
            SessionState.COMPLETE,
        ]
