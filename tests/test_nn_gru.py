"""Gradient checks and learning tests for the GRU layer."""

import numpy as np

from repro.nn.layers.gru import GRU
from repro.nn.layers.dense import Dense
from repro.nn.model import Model
from repro.nn.optimizers import Adam
from tests.test_nn_gradients import check_layer

RNG = np.random.default_rng(77)


class TestGRUGradients:
    def test_return_sequences(self):
        check_layer(GRU(4, return_sequences=True, seed=0), RNG.standard_normal((3, 5, 2)))

    def test_last_state_only(self):
        check_layer(GRU(3, return_sequences=False, seed=1), RNG.standard_normal((2, 4, 2)))

    def test_wider_input(self):
        check_layer(GRU(3, return_sequences=True, seed=2), RNG.standard_normal((2, 3, 4)))


class TestGRULearning:
    def test_learns_sequence_mean(self):
        x = RNG.standard_normal((256, 6, 1))
        y = x.mean(axis=1)
        model = Model(
            [GRU(8, return_sequences=False, seed=3), Dense(1, seed=4)],
            optimizer=Adam(learning_rate=0.02),
        )
        model.fit(x, y, epochs=60, batch_size=32)
        assert model.evaluate(x, y) < 0.02

    def test_output_shapes(self):
        layer = GRU(5, seed=5)
        out = layer.forward(RNG.standard_normal((2, 7, 3)))
        assert out.shape == (2, 7, 5)

    def test_fewer_parameters_than_lstm(self):
        from repro.nn.layers.lstm import LSTM

        gru = GRU(16, seed=6)
        lstm = LSTM(16, seed=7)
        x = RNG.standard_normal((1, 4, 2))
        gru.forward(x)
        lstm.forward(x)
        gru_params = sum(p.size for p in gru.parameters.values())
        lstm_params = sum(p.size for p in lstm.parameters.values())
        assert gru_params < lstm_params
