"""Tests for the metrics package."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.metrics.agreement import (
    AgreementSummary,
    agreement_statistics,
    bit_disagreement_rate,
    key_agreement_rate,
)
from repro.metrics.correlation import (
    detrend,
    detrend_window_from_distance,
    detrended_correlation,
    pearson_correlation,
)
from repro.metrics.entropy import bit_entropy, min_entropy, shannon_entropy
from repro.metrics.generation import key_generation_rate

RNG = np.random.default_rng(0)


class TestPearson:
    def test_perfect_correlation(self):
        x = RNG.standard_normal(100)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_anticorrelation(self):
        x = RNG.standard_normal(100)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson_correlation(np.ones(10), RNG.standard_normal(10)) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson_correlation(np.zeros(4), np.zeros(5))

    @given(st.integers(min_value=2, max_value=128), st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        r = pearson_correlation(rng.standard_normal(n), rng.standard_normal(n))
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestDetrend:
    def test_removes_linear_trend(self):
        x = np.linspace(0, 10, 200) + 0.01 * RNG.standard_normal(200)
        residual = detrend(x, window=20)
        assert np.abs(residual[20:-20]).max() < 0.5

    def test_preserves_fast_fluctuations(self):
        fast = np.sin(np.arange(200) * 2.0)
        residual = detrend(fast + 100.0, window=50)
        assert np.std(residual) > 0.5

    def test_huge_window_falls_back_to_mean_removal(self):
        x = RNG.standard_normal(10) + 5
        np.testing.assert_allclose(detrend(x, window=100), x - x.mean())

    def test_detrended_correlation_sees_through_opposite_trends(self):
        base = RNG.standard_normal(300)
        up = base + np.linspace(0, 30, 300)
        down = base - np.linspace(0, 30, 300)
        assert pearson_correlation(up, down) < 0
        assert detrended_correlation(up, down, window=20) > 0.8


class TestDetrendWindow:
    def test_scales_inversely_with_speed(self):
        slow = detrend_window_from_distance(250.0, 2.0, 3.0)
        fast = detrend_window_from_distance(250.0, 20.0, 3.0)
        assert slow > fast

    def test_minimum_enforced(self):
        assert detrend_window_from_distance(1.0, 100.0, 10.0, minimum=6) == 6

    def test_static_link_gets_huge_window(self):
        assert detrend_window_from_distance(250.0, 0.0, 3.0) >= 10**6

    def test_invalid_span_rejected(self):
        with pytest.raises(ConfigurationError):
            detrend_window_from_distance(0.0, 1.0, 1.0)


class TestAgreement:
    def test_rate_and_disagreement_sum_to_one(self):
        a = RNG.integers(0, 2, 64).astype(np.uint8)
        b = RNG.integers(0, 2, 64).astype(np.uint8)
        assert key_agreement_rate(a, b) + bit_disagreement_rate(a, b) == pytest.approx(1.0)

    def test_statistics_over_batch(self):
        a = np.zeros(8, dtype=np.uint8)
        summary = agreement_statistics([a, a], [a, 1 - a])
        assert summary.mean == pytest.approx(0.5)
        assert summary.n_pairs == 2

    def test_percent_properties(self):
        summary = AgreementSummary(mean=0.9876, std=0.01, n_pairs=3)
        assert summary.mean_percent == pytest.approx(98.76)
        assert summary.std_percent == pytest.approx(1.0)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            agreement_statistics([], [])


class TestGenerationRate:
    def test_basic_rate(self):
        assert key_generation_rate(128, 64.0) == pytest.approx(2.0)

    def test_reconciliation_time_lowers_rate(self):
        assert key_generation_rate(128, 64.0, 64.0) == pytest.approx(1.0)

    def test_zero_probing_time_rejected(self):
        with pytest.raises(ConfigurationError):
            key_generation_rate(10, 0.0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            key_generation_rate(-1, 1.0)


class TestEntropy:
    def test_uniform_bits_near_one(self):
        bits = RNG.integers(0, 2, 10_000)
        assert bit_entropy(bits) > 0.999

    def test_constant_bits_zero(self):
        assert bit_entropy(np.zeros(100, dtype=int)) == 0.0

    def test_shannon_of_four_symbols(self):
        assert shannon_entropy(["a", "b", "c", "d"] * 10) == pytest.approx(2.0)

    def test_min_entropy_at_most_shannon(self):
        bits = (RNG.uniform(size=4000) < 0.7).astype(int)
        assert min_entropy(bits, block_bits=4) <= bit_entropy(bits) + 1e-9

    def test_min_entropy_of_uniform_bits_high(self):
        bits = RNG.integers(0, 2, 20_000)
        assert min_entropy(bits, block_bits=4) > 0.9

    def test_short_sequence_rejected(self):
        with pytest.raises(ConfigurationError):
            min_entropy([1, 0], block_bits=4)
