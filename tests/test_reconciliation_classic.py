"""Tests for Bloom filter, MAC, Cascade and compressed-sensing reconcilers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.reconciliation.base import NullReconciliation, ReconciliationOutcome
from repro.reconciliation.bloom import PositionPreservingBloomFilter
from repro.reconciliation.cascade import CascadeReconciliation
from repro.reconciliation.compressed_sensing import (
    CompressedSensingReconciliation,
    orthogonal_matching_pursuit,
)
from repro.reconciliation.mac import compute_mac, verify_mac
from repro.utils.bits import flip_bits, hamming_distance, random_bits


class TestBloomFilter:
    def test_round_trip(self):
        bloom = PositionPreservingBloomFilter(64, salt=b"s1")
        key = random_bits(64, 0)
        np.testing.assert_array_equal(bloom.inverse(bloom.transform(key)), key)

    def test_preserves_mismatch_count(self):
        bloom = PositionPreservingBloomFilter(64, salt=b"s1")
        a = random_bits(64, 1)
        b = flip_bits(a, [3, 10, 40])
        assert hamming_distance(bloom.transform(a), bloom.transform(b)) == 3

    def test_map_difference_matches_transform_xor(self):
        bloom = PositionPreservingBloomFilter(32, salt=b"s2")
        a = random_bits(32, 2)
        b = flip_bits(a, [1, 7])
        via_transform = bloom.transform(a) ^ bloom.transform(b)
        np.testing.assert_array_equal(bloom.map_difference(a ^ b), via_transform)

    def test_different_salts_give_different_transforms(self):
        key = random_bits(64, 3)
        t1 = PositionPreservingBloomFilter(64, salt=b"a").transform(key)
        t2 = PositionPreservingBloomFilter(64, salt=b"b").transform(key)
        assert not np.array_equal(t1, t2)

    def test_same_salt_is_deterministic(self):
        key = random_bits(64, 4)
        t1 = PositionPreservingBloomFilter(64, salt=b"x").transform(key)
        t2 = PositionPreservingBloomFilter(64, salt=b"x").transform(key)
        np.testing.assert_array_equal(t1, t2)

    def test_output_differs_from_input(self):
        key = random_bits(256, 5)
        transformed = PositionPreservingBloomFilter(256, salt=b"x").transform(key)
        assert hamming_distance(key, transformed) > 64

    def test_batch_matches_single(self):
        bloom = PositionPreservingBloomFilter(32, salt=b"q")
        keys = np.stack([random_bits(32, i) for i in range(4)])
        batch = bloom.transform_batch(keys)
        for row, key in zip(batch, keys):
            np.testing.assert_array_equal(row, bloom.transform(key))

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            PositionPreservingBloomFilter(64).transform(random_bits(32, 0))


class TestMac:
    def test_verify_accepts_valid_tag(self):
        key = random_bits(64, 0)
        tag = compute_mac(key, b"syndrome-bytes")
        assert verify_mac(key, b"syndrome-bytes", tag)

    def test_verify_rejects_tampered_message(self):
        key = random_bits(64, 0)
        tag = compute_mac(key, b"syndrome-bytes")
        assert not verify_mac(key, b"syndrome-bytez", tag)

    def test_verify_rejects_wrong_key(self):
        tag = compute_mac(random_bits(64, 0), b"m")
        assert not verify_mac(random_bits(64, 1), b"m", tag)

    def test_non_multiple_of_eight_keys_supported(self):
        tag = compute_mac(random_bits(13, 0), b"m")
        assert verify_mac(random_bits(13, 0), b"m", tag)

    def test_empty_message_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_mac(random_bits(8, 0), b"")


class TestCascade:
    @pytest.mark.parametrize("flips", [0, 1, 3, 6, 10])
    def test_corrects_exactly(self, flips):
        bob = random_bits(128, flips)
        positions = np.random.default_rng(flips).choice(128, size=flips, replace=False)
        alice = flip_bits(bob, positions)
        outcome = CascadeReconciliation(block_size=3, iterations=4).reconcile(alice, bob)
        assert outcome.success

    def test_counts_messages(self):
        bob = random_bits(64, 0)
        alice = flip_bits(bob, [5, 40])
        outcome = CascadeReconciliation().reconcile(alice, bob)
        assert outcome.messages > 2  # parity rounds + binary searches
        assert outcome.bytes_exchanged > 0

    def test_no_errors_costs_only_parity_rounds(self):
        bob = random_bits(64, 1)
        outcome = CascadeReconciliation(iterations=4).reconcile(bob.copy(), bob)
        assert outcome.success
        assert outcome.messages == 8  # 2 per iteration

    def test_bob_key_untouched(self):
        bob = random_bits(64, 2)
        alice = flip_bits(bob, [0])
        outcome = CascadeReconciliation().reconcile(alice, bob)
        np.testing.assert_array_equal(outcome.bob_key, bob)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CascadeReconciliation().reconcile(random_bits(64, 0), random_bits(32, 0))

    @given(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_always_converges_to_equaccording(self, flips, seed):
        rng = np.random.default_rng(seed)
        bob = random_bits(96, seed)
        positions = rng.choice(96, size=flips, replace=False)
        alice = flip_bits(bob, positions)
        outcome = CascadeReconciliation(block_size=3, iterations=4, seed=seed).reconcile(
            alice, bob
        )
        # With 4 iterations and <= 12.5% BDR cascade corrects essentially
        # always; allow the rare residual but require improvement.
        assert outcome.agreement >= 1.0 - flips / 96


class TestOMP:
    def test_recovers_exact_sparse_vector(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((20, 64))
        truth = np.zeros(64)
        truth[[3, 17, 42]] = [1.0, -1.0, 1.0]
        recovered, iterations = orthogonal_matching_pursuit(matrix, matrix @ truth, 10)
        np.testing.assert_allclose(recovered, truth, atol=1e-8)
        assert iterations == 3

    def test_zero_target_needs_no_iterations(self):
        matrix = np.eye(8)
        recovered, iterations = orthogonal_matching_pursuit(matrix, np.zeros(8), 4)
        assert iterations == 0
        np.testing.assert_array_equal(recovered, np.zeros(8))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            orthogonal_matching_pursuit(np.eye(4), np.zeros(3), 2)


class TestCompressedSensing:
    @pytest.mark.parametrize("flips", [0, 1, 2, 3])
    def test_corrects_sparse_mismatches(self, flips):
        bob = random_bits(64, flips + 10)
        positions = np.random.default_rng(flips).choice(64, size=flips, replace=False)
        alice = flip_bits(bob, positions)
        reconciler = CompressedSensingReconciliation(measurements=20, block_bits=64)
        assert reconciler.reconcile(alice, bob).success

    def test_multi_block_keys(self):
        bob = random_bits(128, 3)
        alice = flip_bits(bob, [5, 70])
        reconciler = CompressedSensingReconciliation(measurements=20, block_bits=64)
        outcome = reconciler.reconcile(alice, bob)
        assert outcome.success
        assert outcome.bytes_exchanged == 4 * 20 * 2

    def test_single_message(self):
        bob = random_bits(64, 4)
        outcome = CompressedSensingReconciliation().reconcile(bob.copy(), bob)
        assert outcome.messages == 1

    def test_dense_errors_degrade_gracefully(self):
        bob = random_bits(64, 5)
        positions = np.random.default_rng(5).choice(64, size=20, replace=False)
        alice = flip_bits(bob, positions)
        outcome = CompressedSensingReconciliation().reconcile(alice, bob)
        # Cannot succeed, but output must still be a valid bit array.
        assert set(np.unique(outcome.alice_key)).issubset({0, 1})

    def test_iteration_counter_exposed(self):
        bob = random_bits(64, 6)
        alice = flip_bits(bob, [1, 2, 3])
        reconciler = CompressedSensingReconciliation()
        reconciler.reconcile(alice, bob)
        assert reconciler.last_decoder_iterations >= 3

    def test_indivisible_length_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressedSensingReconciliation(block_bits=64).reconcile(
                random_bits(70, 0), random_bits(70, 0)
            )


class TestNullReconciliation:
    def test_pass_through(self):
        bob = random_bits(32, 0)
        alice = flip_bits(bob, [1])
        outcome = NullReconciliation().reconcile(alice, bob)
        assert outcome.messages == 0
        assert not outcome.success
        assert outcome.agreement == pytest.approx(31 / 32)

    def test_outcome_validation(self):
        with pytest.raises(ConfigurationError):
            ReconciliationOutcome(
                alice_key=np.zeros(4, dtype=np.uint8),
                bob_key=np.zeros(5, dtype=np.uint8),
                messages=0,
                bytes_exchanged=0,
            )
