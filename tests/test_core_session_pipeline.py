"""Tests for the key-agreement session and the end-to-end pipeline."""

import dataclasses

import numpy as np
import pytest

from repro.core.session import SyndromeMessage
from repro.core.statemachine import ABORT_REPLAY
from tests.conftest import make_tiny_pipeline


class TestPipelineConfig:
    def test_paper_scale_preset(self):
        from repro.core.pipeline import PipelineConfig

        config = PipelineConfig.paper_scale()
        assert config.hidden_units == 128
        assert config.theta == 0.9

    def test_paper_scale_accepts_overrides(self):
        from repro.core.pipeline import PipelineConfig

        config = PipelineConfig.paper_scale(final_key_bits=256)
        assert config.final_key_bits == 256
        assert config.hidden_units == 128


class TestPipelinePlumbing:
    def test_collect_trace_is_deterministic(self, tiny_pipeline):
        a = tiny_pipeline.collect_trace("det", n_rounds=8)
        b = tiny_pipeline.collect_trace("det", n_rounds=8)
        np.testing.assert_array_equal(a.alice_rssi, b.alice_rssi)

    def test_different_episodes_differ(self, tiny_pipeline):
        a = tiny_pipeline.collect_trace("ep-a", n_rounds=8)
        b = tiny_pipeline.collect_trace("ep-b", n_rounds=8)
        assert not np.allclose(a.alice_rssi, b.alice_rssi)

    def test_collect_dataset_window_length(self, tiny_pipeline):
        dataset = tiny_pipeline.collect_dataset(n_episodes=3)
        assert dataset.seq_len == tiny_pipeline.config.seq_len

    def test_splits_populated_after_training(self, tiny_pipeline):
        assert tiny_pipeline.splits is not None
        assert len(tiny_pipeline.splits.train) > 0

    def test_reconciliation_airtime_positive(self, tiny_pipeline):
        assert tiny_pipeline.reconciliation_airtime_s(3, 200) > 0
        assert tiny_pipeline.reconciliation_airtime_s(0, 0) == 0.0


class TestKeyEstablishment:
    @pytest.fixture(scope="class")
    def outcome(self, tiny_pipeline):
        return tiny_pipeline.establish_key(episode="test-live")

    def test_reconciliation_improves_agreement(self, outcome):
        assert outcome.agreement_rate >= outcome.raw_agreement_rate

    def test_agreement_is_high(self, outcome):
        assert outcome.agreement_rate > 0.9

    def test_kgr_positive_when_blocks_verified(self, outcome):
        if outcome.session.verified_blocks:
            assert outcome.key_generation_rate_bps > 0

    def test_final_keys_match_when_success(self, outcome):
        if outcome.success:
            assert outcome.session.final_key_alice == outcome.session.final_key_bob
            assert len(outcome.final_key) == tiny_pipeline_final_bytes()

    def test_session_accounting_consistent(self, outcome):
        s = outcome.session
        assert s.reconciliation_messages == s.n_blocks
        assert s.total_public_bytes >= s.reconciliation_bytes
        assert 0 <= s.kept_fraction <= 1

    def test_multi_trace_pooling(self, tiny_pipeline):
        traces = [
            tiny_pipeline.collect_trace(f"pool-{i}", n_rounds=64) for i in range(2)
        ]
        session = tiny_pipeline.build_session()
        pooled = session.run(traces)
        singles = [session.run(t) for t in traces]
        assert pooled.n_windows == sum(s.n_windows for s in singles)


def tiny_pipeline_final_bytes():
    from tests.conftest import TINY_KWARGS

    return TINY_KWARGS["final_key_bits"] // 8


class TestProtocolSecurityMechanisms:
    def test_tampered_syndrome_fails_mac(self, tiny_pipeline):
        trace = tiny_pipeline.collect_trace("tamper", n_rounds=128)
        session = tiny_pipeline.build_session()

        honest = session.run(trace)

        def corrupt(message: SyndromeMessage) -> SyndromeMessage:
            bad = message.syndrome.copy()
            bad += 5.0
            return dataclasses.replace(message, syndrome=bad)

        attacked = session.run(trace, tamper=corrupt)
        assert len(attacked.verified_blocks) == 0
        assert len(honest.verified_blocks) >= len(attacked.verified_blocks)

    def test_replayed_nonce_rejected(self, tiny_pipeline):
        trace = tiny_pipeline.collect_trace("replay", n_rounds=128)
        session = tiny_pipeline.build_session()

        def replay(message: SyndromeMessage) -> SyndromeMessage:
            return dataclasses.replace(message, session_nonce=b"old-nonce")

        result = session.run(trace, tamper=replay)
        # Attacker input never raises: the stale nonce drives the state
        # machine into a structured abort and no key is released.
        assert result.abort is not None
        assert result.abort.reason == ABORT_REPLAY
        assert result.final_state == "aborted"
        assert result.final_key_alice is None
        assert result.final_key_bob is None
        assert result.rejected_messages > 0

    def test_mac_tamper_detected_even_with_matching_syndrome(self, tiny_pipeline):
        trace = tiny_pipeline.collect_trace("mac-tamper", n_rounds=128)
        session = tiny_pipeline.build_session()

        def flip_mac(message: SyndromeMessage) -> SyndromeMessage:
            bad_mac = bytes([message.mac[0] ^ 1]) + message.mac[1:]
            return dataclasses.replace(message, mac=bad_mac)

        attacked = session.run(trace, tamper=flip_mac)
        assert len(attacked.verified_blocks) == 0

    def test_syndrome_message_payload_size(self, tiny_pipeline):
        trace = tiny_pipeline.collect_trace("size", n_rounds=128)
        session = tiny_pipeline.build_session()
        result = session.run(trace)
        if result.n_blocks:
            expected_per_block = (
                4 + 8 + 4 * tiny_pipeline.config.code_dim + 16
            )
            assert result.reconciliation_bytes == result.n_blocks * expected_per_block


class TestTrainQuality:
    def test_prediction_not_worse_than_raw_quantization(self, tiny_pipeline):
        # The headline Fig. 10 property, at tiny scale: model bits should
        # at least match quantizing Alice's raw windows directly.
        from repro.quantization.multibit import MultiBitQuantizer

        test = tiny_pipeline.splits.test
        if len(test) == 0:
            pytest.skip("tiny split has no test windows")
        model = tiny_pipeline.model
        alice = model.alice_bits(test.alice)
        bob = model.bob_bits(test.bob_raw)
        quantizer = MultiBitQuantizer(2, fixed_thresholds=True)
        direct = np.stack([quantizer.quantize(row).bits for row in test.alice_raw])
        model_kar = np.mean(alice == bob)
        direct_kar = np.mean(direct == bob)
        # At tiny training scale the model may trail raw quantization by a
        # little; paper-scale parity and gains are asserted in the Fig. 10
        # benchmark.
        assert model_kar > direct_kar - 0.10
