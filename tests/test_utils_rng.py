"""Tests for the seeded random-stream factory."""

import numpy as np

from repro.utils.rng import SeedSequenceFactory, as_generator


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(5).integers(0, 1000, size=10)
        b = as_generator(5).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_none_yields_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(42)
        a = factory.generator("fading").standard_normal(8)
        b = SeedSequenceFactory(42).generator("fading").standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        factory = SeedSequenceFactory(42)
        a = factory.generator("fading").standard_normal(8)
        b = factory.generator("noise").standard_normal(8)
        assert not np.allclose(a, b)

    def test_different_roots_different_streams(self):
        a = SeedSequenceFactory(1).generator("x").standard_normal(8)
        b = SeedSequenceFactory(2).generator("x").standard_normal(8)
        assert not np.allclose(a, b)

    def test_child_is_deterministic(self):
        a = SeedSequenceFactory(7).child("episode-0").generator("x").standard_normal(4)
        b = SeedSequenceFactory(7).child("episode-0").generator("x").standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_child_differs_from_parent(self):
        parent = SeedSequenceFactory(7)
        child = parent.child("episode-0")
        a = parent.generator("x").standard_normal(4)
        b = child.generator("x").standard_normal(4)
        assert not np.allclose(a, b)

    def test_root_seed_exposed(self):
        assert SeedSequenceFactory(9).root_seed == 9
