"""Tests for the experiment framework and the training-free experiments."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import fig02_feasibility, fig03_prssi_vs_rrssi, fig04_register_trace, fig09_arrssi_window
from repro.experiments.common import ExperimentResult, Scale, get_scale
from repro.experiments.runner import EXPERIMENTS, main


class TestExperimentResult:
    def test_add_row_requires_all_columns(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            result.add_row(a=1)

    def test_column_extraction_preserves_order(self):
        result = ExperimentResult("x", "t", columns=["a"])
        result.add_row(a=3)
        result.add_row(a=1)
        assert result.column("a") == [3, 1]

    def test_to_table_renders_header_and_rows(self):
        result = ExperimentResult("figX", "demo", columns=["name", "value"])
        result.add_row(name="row1", value=0.5)
        table = result.to_table()
        assert "figX" in table
        assert "row1" in table
        assert "0.5000" in table

    def test_to_table_with_notes(self):
        result = ExperimentResult("figX", "demo", columns=["a"], notes="caveat")
        result.add_row(a=1)
        assert "caveat" in result.to_table()


class TestScales:
    def test_quick_smaller_than_full(self):
        quick, full = get_scale(True), get_scale(False)
        assert isinstance(quick, Scale)
        assert quick.train_episodes < full.train_episodes
        assert quick.train_epochs < full.train_epochs


class TestRunnerRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 18
        for key in (
            "fig02",
            "fig12-13",
            "table2",
            "table3",
            "ablations",
            "duty-cycle",
            "robustness",
            "active-adversary",
            "payload-attacks",
        ):
            assert key in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])

    def test_runner_executes_a_fast_experiment(self, capsys):
        assert main(["fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out


class TestTrainingFreeExperiments:
    def test_fig02_shape(self):
        result = fig02_feasibility.run(quick=True, seed=3)
        panels = set(result.column("panel"))
        assert panels == {"a:data-rate", "b:speed"}
        rate_rows = [r for r in result.rows if r["panel"] == "a:data-rate"]
        assert rate_rows[0]["x"] == 23
        assert rate_rows[-1]["x"] == 1172

    def test_fig03_reports_all_scenarios(self):
        result = fig03_prssi_vs_rrssi.run(quick=True, seed=3)
        assert len(result.rows) == 4
        for row in result.rows:
            assert -1.0 <= row["prssi_correlation"] <= 1.0

    def test_fig04_statistics_finite(self):
        result = fig04_register_trace.run(quick=True, seed=3)
        assert all(np.isfinite(row["value"]) for row in result.rows)

    def test_fig09_covers_the_sweep(self):
        result = fig09_arrssi_window.run(quick=True, seed=3)
        percents = result.column("window_percent")
        assert percents == sorted(percents)
        assert 10 in percents
