"""Pinned-seed equivalence of the vectorized probing fast path.

The vectorized path in ``ProbingProtocol._run_vectorized`` must
reproduce the frozen per-round loop (``run_loop``) *bit-for-bit*: same
register-RSSI matrices, same packet RSSI, same eavesdropper traces, same
round timestamps and validity flags.  These tests build two independent
protocol instances from the same seed (separate channel objects, so the
lazy channel caches grow under each path's own query pattern) and
compare every trace field with exact equality.
"""

import numpy as np
import pytest

from repro.channel.interference import InterferenceSource
from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ScenarioName, scenario_config
from repro.faults.link import LinkFaultModel
from repro.faults.plan import FaultPlan
from repro.lora.airtime import CodingRate, LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD, MULTITECH_XDOT
from repro.lora.rssi import quantize_packet_rssi
from repro.probing.eve import EveConfig, build_eavesdropping_eve, build_imitating_eve
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory

FAST_PHY = LoRaPHYConfig(spreading_factor=7, coding_rate=CodingRate.CR_4_5)


def build_setup(
    seed,
    scenario=ScenarioName.V2I_RURAL,
    phy=FAST_PHY,
    n_eves=0,
    interference=(),
    devices=(DRAGINO_LORA_SHIELD, DRAGINO_LORA_SHIELD),
    **kwargs,
):
    """Fresh protocol + seed factory + eavesdroppers for one run.

    Every call builds independent channel/trajectory objects so the two
    execution paths cannot share lazily-grown channel state.
    """
    seeds = SeedSequenceFactory(seed)
    config = scenario_config(scenario)
    alice, bob = config.build_trajectories(seeds)
    motion = RelativeMotion(alice, bob)
    channel = config.build_channel(seeds, motion)
    eavesdroppers = []
    if n_eves >= 1:
        eavesdroppers.append(
            build_eavesdropping_eve(
                config, seeds, channel, alice, bob, EveConfig(label="eve-passive")
            )
        )
    if n_eves >= 2:
        eavesdroppers.append(
            build_imitating_eve(
                config, seeds, channel, alice, bob, EveConfig(label="eve-imitator")
            )
        )
    protocol = ProbingProtocol(
        channel=channel,
        phy=phy,
        alice_device=devices[0],
        bob_device=devices[1],
        interference=list(interference),
        **kwargs,
    )
    return protocol, seeds, eavesdroppers


def assert_traces_bit_identical(loop_trace, fast_trace):
    """Every array in the two traces must match exactly (no tolerance)."""
    np.testing.assert_array_equal(loop_trace.round_start_s, fast_trace.round_start_s)
    np.testing.assert_array_equal(loop_trace.alice_rssi, fast_trace.alice_rssi)
    np.testing.assert_array_equal(loop_trace.bob_rssi, fast_trace.bob_rssi)
    np.testing.assert_array_equal(loop_trace.alice_prssi, fast_trace.alice_prssi)
    np.testing.assert_array_equal(loop_trace.bob_prssi, fast_trace.bob_prssi)
    np.testing.assert_array_equal(loop_trace.valid, fast_trace.valid)
    np.testing.assert_array_equal(loop_trace.retries, fast_trace.retries)
    np.testing.assert_array_equal(loop_trace.dropped, fast_trace.dropped)
    assert set(loop_trace.eve) == set(fast_trace.eve)
    for label, eve_trace in loop_trace.eve.items():
        np.testing.assert_array_equal(
            eve_trace.of_alice_rssi, fast_trace.eve[label].of_alice_rssi
        )
        np.testing.assert_array_equal(
            eve_trace.of_bob_rssi, fast_trace.eve[label].of_bob_rssi
        )


def run_both_paths(seed, n_rounds=12, **setup_kwargs):
    """Run the frozen loop and the fast path from identical fresh state."""
    loop_protocol, loop_seeds, loop_eves = build_setup(seed, **setup_kwargs)
    loop_trace = loop_protocol.run_loop(n_rounds, loop_seeds, eavesdroppers=loop_eves)
    fast_protocol, fast_seeds, fast_eves = build_setup(seed, **setup_kwargs)
    fast_trace = fast_protocol._run_vectorized(
        n_rounds, fast_seeds, eavesdroppers=fast_eves
    )
    return loop_trace, fast_trace


class TestBitIdentity:
    @pytest.mark.parametrize("scenario", list(ScenarioName))
    def test_all_scenarios(self, scenario):
        loop_trace, fast_trace = run_both_paths(101, scenario=scenario)
        assert_traces_bit_identical(loop_trace, fast_trace)

    def test_with_eavesdroppers(self):
        loop_trace, fast_trace = run_both_paths(
            7, scenario=ScenarioName.V2V_URBAN, n_eves=2
        )
        assert fast_trace.eve  # the scenario really exercised the eve path
        assert_traces_bit_identical(loop_trace, fast_trace)

    def test_with_interference(self):
        jammer = InterferenceSource(
            (40.0, 5.0), eirp_dbm=0.0, mean_on_s=0.5, mean_off_s=1.0, seed=9
        )

        def make_interference():
            # A fresh source per run: its telegraph process has lazy state.
            return [
                InterferenceSource(
                    (40.0, 5.0), eirp_dbm=0.0, mean_on_s=0.5, mean_off_s=1.0, seed=9
                )
            ]

        loop_protocol, loop_seeds, _ = build_setup(
            13, scenario=ScenarioName.V2I_URBAN, interference=make_interference()
        )
        loop_trace = loop_protocol.run_loop(8, loop_seeds)
        fast_protocol, fast_seeds, _ = build_setup(
            13, scenario=ScenarioName.V2I_URBAN, interference=make_interference()
        )
        fast_trace = fast_protocol._run_vectorized(8, fast_seeds)
        assert jammer is not None
        assert_traces_bit_identical(loop_trace, fast_trace)

    def test_unsmoothed_register(self):
        # MULTITECH_XDOT uses rssi_smoothing_alpha == 1.0 (no EWMA branch).
        loop_trace, fast_trace = run_both_paths(
            3, devices=(MULTITECH_XDOT, MULTITECH_XDOT)
        )
        assert_traces_bit_identical(loop_trace, fast_trace)

    def test_asymmetric_devices_and_gap(self):
        loop_trace, fast_trace = run_both_paths(
            21,
            devices=(DRAGINO_LORA_SHIELD, MULTITECH_XDOT),
            inter_round_gap_s=0.75,
        )
        assert_traces_bit_identical(loop_trace, fast_trace)

    def test_nonzero_start_time(self):
        loop_protocol, loop_seeds, _ = build_setup(5)
        loop_trace = loop_protocol.run_loop(6, loop_seeds, start_time_s=17.3)
        fast_protocol, fast_seeds, _ = build_setup(5)
        fast_trace = fast_protocol._run_vectorized(6, fast_seeds, start_time_s=17.3)
        assert_traces_bit_identical(loop_trace, fast_trace)

    def test_paper_scale_phy(self):
        # SF12 at paper scale (fewer rounds here to keep the suite fast).
        loop_trace, fast_trace = run_both_paths(
            31, n_rounds=6, phy=LoRaPHYConfig(), scenario=ScenarioName.V2V_RURAL
        )
        assert_traces_bit_identical(loop_trace, fast_trace)


class TestDispatch:
    def test_run_uses_fast_path_when_fault_free(self):
        protocol, seeds, _ = build_setup(2)
        protocol.run_loop = None  # would raise if the dispatcher fell back
        trace = protocol.run(3, seeds)
        assert trace.n_rounds == 3

    def test_run_matches_loop_output(self):
        dispatch_protocol, dispatch_seeds, _ = build_setup(19)
        via_run = dispatch_protocol.run(5, dispatch_seeds)
        loop_protocol, loop_seeds, _ = build_setup(19)
        via_loop = loop_protocol.run_loop(5, loop_seeds)
        assert_traces_bit_identical(via_loop, via_run)

    def test_fast_path_flag_forces_loop(self):
        protocol, seeds, _ = build_setup(2, fast_path=False)
        protocol._run_vectorized = None  # would raise if the flag were ignored
        trace = protocol.run(3, seeds)
        assert trace.n_rounds == 3

    def test_fault_model_falls_back_to_loop(self):
        protocol, seeds, _ = build_setup(4)
        protocol.fault_model = LinkFaultModel(
            FaultPlan.lossy(0.3, mean_burst=2.0, snr_dependent=False), seeds
        )
        protocol._run_vectorized = None  # must not be consulted
        trace = protocol.run(4, seeds)
        assert trace.n_rounds == 4


class TestQuantizationRule:
    def test_half_ties_round_toward_plus_infinity(self):
        # Python's round() would send -86.5 to -86.0 but -87.5 to -88.0
        # (banker's).  The documented rule sends every .5 tie up.
        assert quantize_packet_rssi(-86.5) == -86.0
        assert quantize_packet_rssi(-87.5) == -87.0
        assert quantize_packet_rssi(2.5) == 3.0
        assert quantize_packet_rssi(3.5) == 4.0

    def test_matches_python_round_away_from_ties(self):
        values = np.linspace(-120.0, -40.0, 997)  # no exact .5 ties
        expected = np.array([round(v) for v in values], dtype=float)
        np.testing.assert_array_equal(quantize_packet_rssi(values), expected)

    def test_scalar_input_returns_float(self):
        result = quantize_packet_rssi(-88.2)
        assert isinstance(result, float)
        assert result == -88.0

    def test_respects_resolution(self):
        np.testing.assert_array_equal(
            quantize_packet_rssi(np.array([-88.4, -88.6]), resolution_db=0.5),
            np.array([-88.5, -88.5]),
        )
