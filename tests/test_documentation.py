"""Documentation coverage: every public item carries a docstring.

The README promises doc comments on every public item; this test makes
that promise executable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_walk_modules())


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_public_classes_and_functions_documented():
    undocumented = []
    for module_name in ALL_MODULES:
        module = importlib.import_module(module_name)
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if getattr(item, "__module__", None) != module_name:
                continue  # re-export; documented at its definition site
            if not inspect.getdoc(item):
                undocumented.append(f"{module_name}.{name}")
            elif inspect.isclass(item):
                for method_name, method in vars(item).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not inspect.getdoc(method):
                        undocumented.append(
                            f"{module_name}.{name}.{method_name}"
                        )
    assert not undocumented, "\n".join(undocumented)
