"""Server-path chaos smoke: misbehaving clients vs. a live server.

A scaled-down version of the CI sweep (``repro chaos --server``): two
dozen seeded concurrent clients -- honest, disconnecting, slow-loris,
corrupt/oversized frames, duplicate ids, silent -- against a real
loopback server, asserting every library- and server-level invariant
held, no session leaked, and the behavior mix actually exercised the
misbehaving paths (the sweep must not silently degenerate to all-honest).
"""

import pytest

from repro.faults.chaos import (
    INVARIANTS,
    PAYLOAD_INVARIANTS,
    SERVER_INVARIANTS,
    ServerChaosReport,
    random_client_behavior,
    run_server_chaos,
)

CLIENTS = 24
SEED = 3
ROUNDS = 48


@pytest.fixture(scope="module")
def sweep(tiny_pipeline) -> ServerChaosReport:
    """One shared sweep; the tests below assert different facets of it."""
    return run_server_chaos(
        tiny_pipeline, n_clients=CLIENTS, seed=SEED, n_rounds=ROUNDS
    )


class TestServerChaosSweep:
    def test_all_invariants_hold(self, sweep):
        details = [
            f"[{v.invariant}] client {v.session}: {v.detail}"
            for v in sweep.violations
        ]
        assert sweep.ok, "invariant violations:\n" + "\n".join(details)

    def test_no_session_leaks(self, sweep):
        assert sweep.leaked_sessions == 0

    def test_results_were_delivered(self, sweep):
        # Honest clients exist in every seeded mix; they must get results.
        assert sweep.results > 0
        assert sweep.metrics["completed"] == sweep.results

    def test_misbehavior_was_exercised(self, sweep):
        # The sweep is only meaningful if hostile behaviors actually ran
        # and produced taxonomized aborts (not exceptions, not hangs).
        assert len(sweep.behaviors) >= 4
        assert sum(
            count
            for name, count in sweep.behaviors.items()
            if name not in ("normal", "ping-then-normal")
        ) > 0
        assert sweep.aborts > 0

    def test_every_client_accounted_for(self, sweep):
        assert sum(sweep.client_kinds.values()) == CLIENTS
        assert sum(sweep.behaviors.values()) == CLIENTS

    def test_violation_counts_cover_both_invariant_sets(self, sweep):
        counts = sweep.violation_counts()
        assert set(counts) == set(
            INVARIANTS + PAYLOAD_INVARIANTS + SERVER_INVARIANTS
        )
        assert all(count == 0 for count in counts.values())

    def test_degraded_sessions_counted_not_silent(self, sweep):
        # The counter exists and is consistent with the metrics snapshot
        # (the invariant 'silent-degraded-session' already checked the
        # observer agreement; this pins the report plumbing).
        assert sweep.degraded_sessions == sweep.metrics["degraded_sessions"]
        assert sweep.degraded_sessions >= 0


class TestBehaviorGenerator:
    def test_behavior_draw_is_deterministic(self):
        import numpy as np

        draws_a = [
            random_client_behavior(np.random.default_rng([7, i])) for i in range(50)
        ]
        draws_b = [
            random_client_behavior(np.random.default_rng([7, i])) for i in range(50)
        ]
        assert draws_a == draws_b

    def test_behavior_mix_is_diverse(self):
        import numpy as np

        draws = [
            random_client_behavior(np.random.default_rng([7, i])) for i in range(200)
        ]
        assert len(set(draws)) >= 6
        assert draws.count("normal") > 50  # honest majority
