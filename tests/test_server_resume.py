"""Crash recovery and session resumption against a journaling server.

Each scenario runs a real server over loopback with a write-ahead
journal, kills it with the hard (non-draining) stop, starts a fresh
server on the same journal directory, and checks the recovery-facing
promises: journaled verdicts are re-delivered idempotently under the
same ``key_digest``, sessions a crash orphaned are answered with a
structured ``recovered-after-crash`` abort instead of silence, unknown
tokens are rejected structurally, and the ``status`` wire frame exposes
the recovery counters.
"""

import asyncio

import pytest

from repro.core.statemachine import ABORT_RECOVERED
from repro.server import (
    DeviceClient,
    Endpoint,
    KeyEstablishmentServer,
    ModelRegistry,
    ServerConfig,
)
from repro.server.client import fetch_status
from repro.server.framing import read_frame, write_frame

ROUNDS = 48


def journal_config(journal_dir, **overrides) -> ServerConfig:
    """Loopback journaling-server knobs with test-sized budgets."""
    defaults = dict(
        port=0,
        hello_timeout_s=1.0,
        idle_timeout_s=5.0,
        session_deadline_s=30.0,
        tick_interval_s=0.01,
        max_batch=8,
        queue_limit=8,
        max_sessions=32,
        retry_after_s=0.25,
        reap_interval_s=0.1,
        journal_dir=str(journal_dir),
        journal_fsync="always",
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


async def start_server(pipeline, config) -> KeyEstablishmentServer:
    server = KeyEstablishmentServer(ModelRegistry(pipeline), config)
    await server.start()
    return server


class TestStatusFrame:
    def test_status_frame_carries_the_full_metrics_snapshot(
        self, tiny_pipeline, tmp_path
    ):
        async def body():
            server = await start_server(
                tiny_pipeline, journal_config(tmp_path / "wal")
            )
            endpoint = Endpoint(port=server.bound_port)
            try:
                status = await fetch_status(endpoint)
            finally:
                await server.drain(timeout=10.0)
            return status, server

        status, server = asyncio.run(body())
        assert status is not None and status["type"] == "status"
        metrics = status["metrics"]
        # The recovery counters ride along on every snapshot, scraped
        # fresh per request (the probe itself was accepted: >= 1).
        for key in (
            "recoveries",
            "recovered_orphans",
            "resumed_sessions",
            "journal_records",
        ):
            assert key in metrics
        assert metrics["accepted"] >= 1
        assert metrics["journal_records"] >= 1  # the probe's admit record


class TestDisconnectedOutcome:
    def test_mid_session_close_with_a_token_is_a_disconnected_outcome(self):
        """The client half of the resumption protocol, in isolation: a
        server that vanishes mid-session after minting a token yields a
        structured ``disconnected`` outcome carrying that token -- not
        an undifferentiated error."""

        async def fake_server(reader, writer):
            hello = await read_frame(reader)
            welcome = {
                "type": "welcome",
                "session_id": hello["session_id"],
            }
            if hello["session_id"] == "dev-journaled":
                welcome["resume_token"] = "feedfacefeedface"
            await write_frame(writer, welcome)
            await read_frame(reader)  # the start frame
            writer.close()  # vanish without a terminal frame

        async def body():
            server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            endpoint = Endpoint(port=port)
            try:
                journaled = await DeviceClient(
                    endpoint, "dev-journaled", timeout_s=10.0
                ).establish()
                plain = await DeviceClient(
                    endpoint, "dev-plain", timeout_s=10.0
                ).establish()
            finally:
                server.close()
                await server.wait_closed()
            return journaled, plain

        journaled, plain = asyncio.run(body())
        assert journaled.kind == "disconnected"
        assert journaled.resume_token == "feedfacefeedface"
        assert not journaled.structured
        # Without a token there is no resumption path: the legacy kind.
        assert plain.kind == "closed"
        assert plain.resume_token == ""


class TestLiveResumption:
    def test_detached_session_is_reattached_and_served(
        self, tiny_pipeline, tmp_path
    ):
        """A client that drops after hello (its ``start`` frame eaten by
        the disconnect) reconnects with its token and still receives a
        live verdict: the re-attach path queues the session itself."""
        config = journal_config(tmp_path / "wal")

        async def body():
            server = await start_server(tiny_pipeline, config)
            endpoint = Endpoint(port=server.bound_port)
            try:
                first = DeviceClient(
                    endpoint,
                    "dev-reattach",
                    episode="srv-reattach",
                    rounds=ROUNDS,
                    timeout_s=30.0,
                )
                await first.connect()
                welcome = await first.hello()
                assert welcome["type"] == "welcome"
                token = first.resume_token
                assert token
                await first.close()
                await asyncio.sleep(0.2)  # let the server detach it
                second = DeviceClient(
                    endpoint, "dev-reattach", timeout_s=30.0
                )
                outcome = await second.resume_session(token)
            finally:
                await server.drain(timeout=10.0)
            return outcome, server

        outcome, server = asyncio.run(body())
        assert outcome.kind == "result"
        assert server.metrics.resumed_sessions == 1
        assert server.metrics.disconnects == 1
        assert server.metrics.aborted.get("peer-disconnected") is None

    def test_token_attached_to_a_live_connection_is_rejected(
        self, tiny_pipeline, tmp_path
    ):
        config = journal_config(tmp_path / "wal")

        async def body():
            server = await start_server(tiny_pipeline, config)
            endpoint = Endpoint(port=server.bound_port)
            try:
                holder = DeviceClient(endpoint, "dev-live", timeout_s=10.0)
                await holder.connect()
                await holder.hello()
                token = holder.resume_token
                thief = DeviceClient(endpoint, "dev-live", timeout_s=10.0)
                outcome = await thief.resume_session(token)
                await holder.close()
            finally:
                await server.drain(timeout=10.0)
            return outcome, server

        outcome, server = asyncio.run(body())
        assert outcome.kind == "rejected"
        assert outcome.frame["reason"] == "duplicate-session"
        assert server.metrics.rejected_duplicate == 1


class TestCrashRecovery:
    def test_journaled_result_is_redelivered_idempotently(
        self, tiny_pipeline, tmp_path
    ):
        """Establish, crash, restart, resume twice: both redeliveries
        carry the journaled verdict byte-for-byte (same ``key_digest``)
        and are marked ``resumed``."""
        journal_dir = tmp_path / "wal"

        async def body():
            server = await start_server(
                tiny_pipeline, journal_config(journal_dir)
            )
            endpoint = Endpoint(port=server.bound_port)
            original = await DeviceClient(
                endpoint,
                "dev-crash",
                episode="srv-crash",
                rounds=ROUNDS,
                timeout_s=30.0,
            ).establish()
            assert original.kind == "result"
            token = original.resume_token
            assert token
            await asyncio.sleep(0.3)  # let the reaper retire the session
            await server.stop()  # the cooperative crash: nothing flushed

            restarted = await start_server(
                tiny_pipeline, journal_config(journal_dir)
            )
            endpoint = Endpoint(port=restarted.bound_port)
            try:
                resumed = [
                    await DeviceClient(
                        endpoint, "dev-crash", timeout_s=30.0
                    ).resume_session(token)
                    for _ in range(2)
                ]
                status = await fetch_status(endpoint)
            finally:
                await restarted.drain(timeout=10.0)
            return original, resumed, restarted, status

        original, resumed, restarted, status = asyncio.run(body())
        for outcome in resumed:
            assert outcome.kind == "result"
            assert outcome.frame["resumed"] is True
            assert outcome.frame["key_digest"] == original.frame["key_digest"]
            assert outcome.frame["success"] == original.frame["success"]
        assert restarted.metrics.recoveries == 1
        assert restarted.metrics.recovered_orphans == 0
        assert restarted.metrics.resumed_sessions == 2
        assert status["metrics"]["recoveries"] == 1
        assert status["metrics"]["journal_records"] >= 1

    def test_orphaned_session_is_aborted_as_recovered_after_crash(
        self, tiny_pipeline, tmp_path
    ):
        """A session admitted but crash-interrupted before any outcome
        resumes into a structured ``recovered-after-crash`` abort."""
        journal_dir = tmp_path / "wal"

        async def body():
            server = await start_server(
                tiny_pipeline, journal_config(journal_dir)
            )
            endpoint = Endpoint(port=server.bound_port)
            client = DeviceClient(endpoint, "dev-orphan", timeout_s=10.0)
            await client.connect()
            await client.hello()
            token = client.resume_token
            assert token
            await client.close()
            await asyncio.sleep(0.2)  # the handler must notice the close
            await server.stop()

            restarted = await start_server(
                tiny_pipeline, journal_config(journal_dir)
            )
            endpoint = Endpoint(port=restarted.bound_port)
            try:
                outcome = await DeviceClient(
                    endpoint, "dev-orphan", timeout_s=10.0
                ).resume_session(token)
            finally:
                await restarted.drain(timeout=10.0)
            return outcome, restarted

        outcome, restarted = asyncio.run(body())
        assert outcome.kind == "abort"
        assert outcome.frame["reason"] == ABORT_RECOVERED
        assert outcome.frame["resumed"] is True
        assert restarted.metrics.recovered_orphans == 1
        assert restarted.metrics.aborted.get(ABORT_RECOVERED) == 1

    def test_unknown_token_is_rejected_structurally(
        self, tiny_pipeline, tmp_path
    ):
        config = journal_config(tmp_path / "wal")

        async def body():
            server = await start_server(tiny_pipeline, config)
            endpoint = Endpoint(port=server.bound_port)
            try:
                outcome = await DeviceClient(
                    endpoint, "dev-unknown", timeout_s=10.0
                ).resume_session("00" * 16)
            finally:
                await server.drain(timeout=10.0)
            return outcome

        outcome = asyncio.run(body())
        assert outcome.kind == "rejected"
        assert outcome.frame["reason"] == "unknown-resumption-token"

    def test_resumption_survives_repeated_restarts(
        self, tiny_pipeline, tmp_path
    ):
        """Two crashes in a row: the second recovery replays the first
        recovery's own records and the verdict is still redeliverable."""
        journal_dir = tmp_path / "wal"

        async def one_generation(token):
            server = await start_server(
                tiny_pipeline, journal_config(journal_dir)
            )
            endpoint = Endpoint(port=server.bound_port)
            if token is None:
                outcome = await DeviceClient(
                    endpoint,
                    "dev-again",
                    episode="srv-again",
                    rounds=ROUNDS,
                    timeout_s=30.0,
                ).establish()
            else:
                outcome = await DeviceClient(
                    endpoint, "dev-again", timeout_s=30.0
                ).resume_session(token)
            await asyncio.sleep(0.3)
            await server.stop()
            return outcome, server

        async def body():
            first, _ = await one_generation(None)
            assert first.kind == "result"
            second, gen2 = await one_generation(first.resume_token)
            third, gen3 = await one_generation(first.resume_token)
            return first, second, third, gen2, gen3

        first, second, third, gen2, gen3 = asyncio.run(body())
        for outcome in (second, third):
            assert outcome.kind == "result"
            assert outcome.frame["key_digest"] == first.frame["key_digest"]
        assert gen2.metrics.recoveries == 1
        assert gen3.metrics.recoveries == 1
        assert gen3.metrics.recovered_orphans == 0
