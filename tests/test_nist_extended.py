"""Tests for the extended NIST battery (beyond the paper's Table II)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.security.nist import (
    NistTestSuite,
    gf2_rank,
    matrix_rank_test,
    overlapping_template_test,
    random_excursions_test,
    random_excursions_variant_test,
    runs_test,
    serial_test,
    universal_test,
)
from repro.utils.bits import random_bits


def random_sequence(n=100_000, seed=0):
    return random_bits(n, seed)


class TestRuns:
    def test_passes_random(self):
        assert runs_test(random_sequence(20_000, 1)) > 0.01

    def test_rejects_alternating(self):
        assert runs_test(np.tile([0, 1], 5000)) < 0.01

    def test_rejects_blocky(self):
        sequence = np.repeat(random_bits(200, 2), 50)
        assert runs_test(sequence) < 0.01

    def test_prerequisite_shortcut_on_biased(self):
        biased = (np.random.default_rng(0).uniform(size=10_000) < 0.7).astype(np.uint8)
        assert runs_test(biased) == 0.0


class TestSerial:
    def test_passes_random(self):
        p1, p2 = serial_test(random_sequence(20_000, 3))
        assert p1 > 0.01 and p2 > 0.01

    def test_rejects_periodic(self):
        p1, _ = serial_test(np.tile([0, 0, 1, 1], 5000))
        assert p1 < 0.01

    def test_m_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            serial_test(random_sequence(1000, 4), m=1)


class TestOverlappingTemplate:
    def test_passes_random(self):
        assert overlapping_template_test(random_sequence(120_000, 5)) > 0.01

    def test_rejects_ones_heavy(self):
        rng = np.random.default_rng(1)
        sequence = (rng.uniform(size=120_000) < 0.8).astype(np.uint8)
        assert overlapping_template_test(sequence) < 0.01


class TestUniversal:
    def test_passes_random(self):
        assert universal_test(random_sequence(400_000, 6)) > 0.01

    def test_rejects_repetitive(self):
        assert universal_test(np.tile(random_bits(32, 7), 13_000)) < 0.01

    def test_invalid_block_length_rejected(self):
        with pytest.raises(ConfigurationError):
            universal_test(random_sequence(10_000, 8), block_length=20)


class TestMatrixRank:
    def test_gf2_rank_identity(self):
        assert gf2_rank(np.eye(8, dtype=np.int8)) == 8

    def test_gf2_rank_duplicated_rows(self):
        matrix = np.ones((4, 4), dtype=np.int8)
        assert gf2_rank(matrix) == 1

    def test_gf2_rank_known_case(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.int8)
        # Row3 = Row1 + Row2 over GF(2).
        assert gf2_rank(matrix) == 2

    def test_passes_random(self):
        assert matrix_rank_test(random_sequence(200_000, 9)) > 0.01

    def test_rejects_low_rank_stream(self):
        row = random_bits(32, 10)
        sequence = np.tile(row, 32 * 100)  # every matrix has rank 1
        assert matrix_rank_test(sequence) < 0.01

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            matrix_rank_test(random_sequence(2000, 11))


class TestRandomExcursions:
    def test_passes_random(self):
        p_values = random_excursions_test(random_sequence(500_000, 12))
        assert len(p_values) == 8
        assert min(p_values.values()) > 0.001

    def test_variant_passes_random(self):
        p_values = random_excursions_variant_test(random_sequence(500_000, 13))
        assert len(p_values) == 18
        assert min(p_values.values()) > 0.001

    def test_too_few_cycles_rejected(self):
        # A heavily drifting walk crosses zero rarely.
        rng = np.random.default_rng(2)
        drift = (rng.uniform(size=5000) < 0.8).astype(np.uint8)
        with pytest.raises(ConfigurationError):
            random_excursions_test(drift)


class TestExtendedSuite:
    def test_extended_includes_base_tests(self):
        results = NistTestSuite().run_extended(random_sequence(150_000, 14))
        assert "Frequency" in results
        assert "Runs" in results
        assert "Binary Matrix Rank" in results

    def test_extended_passes_on_random(self):
        results = NistTestSuite().run_extended(random_sequence(500_000, 15))
        failing = [r.name for r in results.values() if r.p_value < 0.001]
        assert not failing, failing

    def test_short_sequences_skip_inapplicable_tests(self):
        results = NistTestSuite().run_extended(random_sequence(3_000, 16))
        assert "Universal" not in results  # needs >= 4000 bits
        assert "Binary Matrix Rank" not in results  # needs >= 4096 bits
        assert "Frequency" in results
