"""Tests for feature extraction and the paper's core preliminary claims."""

import numpy as np
import pytest

from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ScenarioName, scenario_config
from repro.exceptions import ConfigurationError
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.probing.features import (
    FeatureConfig,
    adjacent_register_rssi,
    arrssi_sequences,
    eve_arrssi_sequences,
    packet_rssi_series,
)
from repro.probing.eve import build_imitating_eve
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory


def run_session(seed=0, n_rounds=40, scenario=ScenarioName.V2I_URBAN, with_eve=False):
    seeds = SeedSequenceFactory(seed)
    config = scenario_config(scenario)
    alice, bob = config.build_trajectories(seeds)
    motion = RelativeMotion(alice, bob)
    channel = config.build_channel(seeds, motion)
    protocol = ProbingProtocol(
        channel=channel,
        phy=LoRaPHYConfig(),
        alice_device=DRAGINO_LORA_SHIELD,
        bob_device=DRAGINO_LORA_SHIELD,
    )
    eavesdroppers = []
    if with_eve:
        eavesdroppers.append(
            build_imitating_eve(config, seeds, channel, alice, bob)
        )
    return protocol.run(n_rounds, seeds, eavesdroppers=eavesdroppers)


class TestFeatureConfig:
    def test_defaults_match_paper(self):
        config = FeatureConfig()
        assert config.window_fraction == pytest.approx(0.10)

    def test_window_length_at_least_one(self):
        assert FeatureConfig(window_fraction=0.001).window_length(50) == 1

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureConfig(window_fraction=1.5)

    def test_invalid_values_per_packet_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureConfig(values_per_packet=0)


class TestPacketRssi:
    def test_series_has_one_value_per_round(self):
        matrix = np.arange(12.0).reshape(3, 4) - 100.0
        series = packet_rssi_series(matrix)
        assert series.shape == (3,)

    def test_series_is_quantized(self):
        matrix = np.full((2, 4), -90.3)
        np.testing.assert_array_equal(packet_rssi_series(matrix), [-90.0, -90.0])

    def test_rejects_1d_input(self):
        with pytest.raises(ConfigurationError):
            packet_rssi_series(np.zeros(5))


class TestAdjacentRegisterRssi:
    def test_shapes(self):
        first = np.random.default_rng(0).normal(-90, 2, size=(10, 50))
        second = np.random.default_rng(1).normal(-90, 2, size=(10, 50))
        config = FeatureConfig(window_fraction=0.2, values_per_packet=4)
        a, b = adjacent_register_rssi(first, second, config)
        assert a.shape == (10, 4)
        assert b.shape == (10, 4)

    def test_window_narrower_than_blocks_degrades_gracefully(self):
        first = np.zeros((4, 50))
        second = np.zeros((4, 50))
        config = FeatureConfig(window_fraction=0.04, values_per_packet=8)
        a, _ = adjacent_register_rssi(first, second, config)
        assert a.shape[1] <= 8

    def test_first_window_is_read_boundary_outward(self):
        # The first packet's samples ramp upward; its window is the packet
        # tail read backwards, so block 0 holds the largest values.
        first = np.tile(np.arange(50.0), (1, 1))
        second = np.zeros((1, 50))
        config = FeatureConfig(window_fraction=0.2, values_per_packet=2)
        a, _ = adjacent_register_rssi(first, second, config)
        assert a[0, 0] > a[0, 1]

    def test_second_window_is_boundary_onward(self):
        first = np.zeros((1, 50))
        second = np.tile(np.arange(50.0), (1, 1))
        config = FeatureConfig(window_fraction=0.2, values_per_packet=2)
        _, b = adjacent_register_rssi(first, second, config)
        assert b[0, 0] < b[0, 1]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            adjacent_register_rssi(np.zeros((3, 5)), np.zeros((3, 6)))


class TestPaperClaims:
    """The preliminary-study findings the whole system is motivated by."""

    def test_arrssi_correlates_better_than_prssi(self):
        # Paper Fig. 3: rRSSI-derived features beat pRSSI in every scenario.
        trace = run_session(seed=1, n_rounds=60)
        prssi_alice = packet_rssi_series(trace.alice_rssi)
        prssi_bob = packet_rssi_series(trace.bob_rssi)
        prssi_corr = np.corrcoef(prssi_alice, prssi_bob)[0, 1]
        bob_ar, alice_ar = arrssi_sequences(
            trace, FeatureConfig(window_fraction=0.10, values_per_packet=1)
        )
        arrssi_corr = np.corrcoef(bob_ar, alice_ar)[0, 1]
        assert arrssi_corr > prssi_corr

    def test_arrssi_correlation_is_high(self):
        trace = run_session(seed=2, n_rounds=60)
        bob_ar, alice_ar = arrssi_sequences(
            trace, FeatureConfig(window_fraction=0.10, values_per_packet=1)
        )
        assert np.corrcoef(bob_ar, alice_ar)[0, 1] > 0.7

    def test_eve_arrssi_correlates_worse_than_bobs(self):
        # Paper Fig. 16: an imitating Eve sees a different small-scale channel.
        trace = run_session(seed=3, n_rounds=60, with_eve=True)
        config = FeatureConfig(window_fraction=0.10, values_per_packet=1)
        bob_ar, alice_ar = arrssi_sequences(trace, config)
        eve_as_bob, _ = eve_arrssi_sequences(trace, "imitator", config)
        legit = np.corrcoef(bob_ar, alice_ar)[0, 1]
        eve = np.corrcoef(eve_as_bob, alice_ar)[0, 1]
        assert legit > eve + 0.2

    def test_sequences_have_expected_length(self):
        trace = run_session(seed=4, n_rounds=20)
        config = FeatureConfig(values_per_packet=4)
        bob_ar, alice_ar = arrssi_sequences(trace, config)
        assert len(bob_ar) == len(alice_ar) == 20 * 4
