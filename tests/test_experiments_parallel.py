"""Tests for the parallel experiment runner and the on-disk pipeline cache."""

import json
import time

import pytest

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.experiments import common, runner
from repro.experiments.common import (
    ExperimentResult,
    Scale,
    clear_pipeline_cache,
    get_trained_pipeline,
    pipeline_fingerprint,
)
from repro.experiments.runner import run_selected
from tests.conftest import TINY_KWARGS

MICRO_SCALE = Scale(
    train_episodes=40,
    train_epochs=6,
    reconciler_epochs=4,
    session_rounds=64,
    n_sessions=1,
    n_seeds=1,
)


def _stub_experiment(name, delay=0.0):
    def run(quick, seed):
        if delay:
            time.sleep(delay)
        result = ExperimentResult(name, f"stub {name}", ["seed", "quick", "value"])
        result.add_row(seed=seed, quick=quick, value=hash(name) % 1000 / 1000.0)
        return result

    return run


@pytest.fixture
def stub_registry(monkeypatch):
    # Later-listed stubs sleep *longer*, so under jobs > 1 they complete
    # out of submission order -- the ordering assertion below is real.
    names = ["s1", "s2", "s3", "s4"]
    registry = {
        name: _stub_experiment(name, delay=0.05 * i)
        for i, name in enumerate(names)
    }
    monkeypatch.setattr(runner, "EXPERIMENTS", registry)
    return names


class TestParallelRunner:
    def test_parallel_payloads_match_serial(self, stub_registry):
        serial = [
            (name, result.to_payload())
            for name, result, _ in run_selected(stub_registry, True, 7, jobs=1)
        ]
        parallel = [
            (name, result.to_payload())
            for name, result, _ in run_selected(stub_registry, True, 7, jobs=4)
        ]
        assert parallel == serial

    def test_result_order_is_selection_order(self, stub_registry):
        order = [name for name, _, _ in run_selected(stub_registry, True, 0, jobs=4)]
        assert order == stub_registry

    def test_seed_and_scale_forwarded_to_workers(self, stub_registry):
        for _, result, _ in run_selected(stub_registry, False, 42, jobs=2):
            assert result.rows[0]["seed"] == 42
            assert result.rows[0]["quick"] is False

    def test_single_job_stays_serial(self, stub_registry):
        results = list(run_selected(stub_registry, True, 0, jobs=1))
        assert [name for name, _, _ in results] == stub_registry

    def test_real_training_free_experiments_match(self):
        selection = ["fig02", "fig04"]
        serial = [
            result.to_payload()
            for _, result, _ in run_selected(selection, True, 3, jobs=1)
        ]
        parallel = [
            result.to_payload()
            for _, result, _ in run_selected(selection, True, 3, jobs=2)
        ]
        assert parallel == serial

    def test_main_prints_in_selection_order(self, stub_registry, capsys):
        assert runner.main(["s2", "s1", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.index("stub s2") < out.index("stub s1")

    def test_main_exports_cache_dir(self, stub_registry, tmp_path, monkeypatch):
        monkeypatch.delenv(common.PIPELINE_CACHE_ENV, raising=False)
        target = str(tmp_path / "cache")
        assert runner.main(["s1", "--cache-dir", target]) == 0
        assert common.pipeline_cache_root() == tmp_path / "cache"

    def test_cli_forwards_jobs_and_cache_dir(self, monkeypatch):
        from repro import cli

        captured = {}

        def fake_runner_main(argv):
            captured["argv"] = argv
            return 0

        monkeypatch.setattr("repro.experiments.runner.main", fake_runner_main)
        assert cli.main(
            ["experiments", "fig04", "--jobs", "4", "--cache-dir", "/tmp/c"]
        ) == 0
        assert captured["argv"] == ["fig04", "--jobs", "4", "--cache-dir", "/tmp/c"]


class TestExperimentResultPayload:
    def test_payload_is_canonical_json(self):
        result = ExperimentResult("figX", "demo", ["b", "a"])
        result.add_row(b=2, a=1.5)
        payload = json.loads(result.to_payload())
        assert payload["columns"] == ["b", "a"]
        assert payload["rows"] == [{"a": 1.5, "b": 2}]

    def test_payload_normalizes_numpy_scalars(self):
        import numpy as np

        result = ExperimentResult("figX", "demo", ["v"])
        result.add_row(v=np.float64(0.25))
        assert json.loads(result.to_payload())["rows"] == [{"v": 0.25}]

    def test_identical_results_are_byte_identical(self):
        def build():
            result = ExperimentResult("figX", "demo", ["v"], notes="n")
            result.add_row(v=0.1 + 0.2)
            return result

        assert build().to_payload() == build().to_payload()


class TestPipelineFingerprint:
    def setup_method(self):
        self.config = PipelineConfig(
            scenario=scenario_config(ScenarioName.V2I_URBAN), **TINY_KWARGS
        )

    def test_stable_for_same_inputs(self):
        a = pipeline_fingerprint(ScenarioName.V2I_URBAN, 0, MICRO_SCALE, self.config)
        b = pipeline_fingerprint(ScenarioName.V2I_URBAN, 0, MICRO_SCALE, self.config)
        assert a == b

    def test_sensitive_to_every_training_input(self):
        base = pipeline_fingerprint(ScenarioName.V2I_URBAN, 0, MICRO_SCALE, self.config)
        assert base != pipeline_fingerprint(
            ScenarioName.V2V_URBAN, 0, MICRO_SCALE, self.config
        )
        assert base != pipeline_fingerprint(
            ScenarioName.V2I_URBAN, 1, MICRO_SCALE, self.config
        )
        assert base != pipeline_fingerprint(
            ScenarioName.V2I_URBAN, 0, common.get_scale(True), self.config
        )
        other_config = PipelineConfig(
            scenario=scenario_config(ScenarioName.V2I_URBAN),
            **{**TINY_KWARGS, "hidden_units": 8},
        )
        assert base != pipeline_fingerprint(
            ScenarioName.V2I_URBAN, 0, MICRO_SCALE, other_config
        )
        assert base != pipeline_fingerprint(
            ScenarioName.V2I_URBAN, 0, MICRO_SCALE, self.config, "variant"
        )


class TestDiskPipelineCache:
    """End-to-end disk-cache behaviour with a micro-scale pipeline."""

    @pytest.fixture(autouse=True)
    def micro_scale(self, monkeypatch):
        monkeypatch.setattr(common, "_QUICK", MICRO_SCALE)
        clear_pipeline_cache()
        yield
        clear_pipeline_cache()

    @pytest.fixture
    def tiny_config(self):
        return PipelineConfig(
            scenario=scenario_config(ScenarioName.V2I_URBAN), **TINY_KWARGS
        )

    def test_cache_round_trip_skips_retraining(self, tiny_config, tmp_path, monkeypatch):
        cache = tmp_path / "pipelines"
        trained = get_trained_pipeline(
            ScenarioName.V2I_URBAN, seed=5, config=tiny_config, cache_dir=cache
        )
        entries = list(cache.iterdir())
        assert len(entries) == 1
        assert (entries[0] / common._COMPLETE_MARKER).is_file()
        assert (entries[0] / "model.npz").is_file()
        assert (entries[0] / "reconciler.npz").is_file()

        clear_pipeline_cache()

        def fail_train(self, **kwargs):
            raise AssertionError("cache hit must not retrain")

        monkeypatch.setattr(VehicleKeyPipeline, "train", fail_train)
        restored = get_trained_pipeline(
            ScenarioName.V2I_URBAN, seed=5, config=tiny_config, cache_dir=cache
        )

        # A restored pipeline behaves identically to the trained one:
        # name-keyed seed streams make session randomness independent of
        # how the weights came to be.
        trace = trained.collect_trace("cache-check", n_rounds=64)
        original = trained.build_session().run(trace)
        reloaded = restored.build_session().run(trace)
        assert reloaded.final_key_alice == original.final_key_alice
        assert reloaded.raw_agreement.mean == original.raw_agreement.mean

    def test_incomplete_entry_is_ignored(self, tiny_config, tmp_path):
        cache = tmp_path / "pipelines"
        fingerprint = pipeline_fingerprint(
            ScenarioName.V2I_URBAN, 5, MICRO_SCALE, tiny_config
        )
        (cache / fingerprint).mkdir(parents=True)  # no artifacts, no marker
        pipeline = get_trained_pipeline(
            ScenarioName.V2I_URBAN, seed=5, config=tiny_config, cache_dir=cache
        )
        # Training ran and repaired the entry.
        assert (cache / fingerprint / common._COMPLETE_MARKER).is_file()
        assert pipeline.training_report is not None

    def test_corrupt_entry_falls_back_to_training(
        self, tiny_config, tmp_path, monkeypatch
    ):
        cache = tmp_path / "pipelines"
        get_trained_pipeline(
            ScenarioName.V2I_URBAN, seed=5, config=tiny_config, cache_dir=cache
        )
        entry = next(cache.iterdir())
        payload = (entry / "model.npz").read_bytes()
        (entry / "model.npz").write_bytes(payload[: len(payload) // 2])

        clear_pipeline_cache()
        calls = []
        original_train = VehicleKeyPipeline.train

        def counting_train(self, **kwargs):
            calls.append(1)
            return original_train(self, **kwargs)

        monkeypatch.setattr(VehicleKeyPipeline, "train", counting_train)
        get_trained_pipeline(
            ScenarioName.V2I_URBAN, seed=5, config=tiny_config, cache_dir=cache
        )
        assert calls  # corrupt artifact forced a retrain

    def test_env_var_enables_cache(self, tiny_config, tmp_path, monkeypatch):
        cache = tmp_path / "env-cache"
        monkeypatch.setenv(common.PIPELINE_CACHE_ENV, str(cache))
        get_trained_pipeline(ScenarioName.V2I_URBAN, seed=5, config=tiny_config)
        assert any(cache.iterdir())

    def test_cache_disabled_by_default(self, tiny_config, tmp_path, monkeypatch):
        monkeypatch.delenv(common.PIPELINE_CACHE_ENV, raising=False)
        get_trained_pipeline(ScenarioName.V2I_URBAN, seed=6, config=tiny_config)
        # nothing written anywhere under tmp_path
        assert not any(tmp_path.iterdir())
