"""Tests for pipeline/reconciler persistence (train once, deploy many)."""

import numpy as np
import pytest

from repro.exceptions import NotTrainedError
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.utils.bits import flip_bits, random_bits
from tests.conftest import make_tiny_pipeline


class TestReconcilerPersistence:
    @pytest.fixture(scope="class")
    def trained(self):
        reconciler = AutoencoderReconciliation(
            key_bits=32, code_dim=16, decoder_units=32, seed=3
        )
        reconciler.fit(n_samples=4000, epochs=10)
        return reconciler

    def test_round_trip_preserves_behaviour(self, trained, tmp_path):
        path = tmp_path / "reconciler.npz"
        trained.save(path)
        clone = AutoencoderReconciliation(
            key_bits=32, code_dim=16, decoder_units=32, seed=99
        )
        clone.load(path)
        bob = random_bits(32, 0)
        np.testing.assert_allclose(
            clone.bob_syndrome(bob), trained.bob_syndrome(bob)
        )
        alice = flip_bits(bob, [3])
        syndrome = trained.bob_syndrome(bob)
        np.testing.assert_array_equal(
            clone.alice_correct(alice, syndrome),
            trained.alice_correct(alice, syndrome),
        )

    def test_untrained_save_rejected(self, tmp_path):
        reconciler = AutoencoderReconciliation(key_bits=16, code_dim=8, seed=0)
        with pytest.raises(NotTrainedError):
            reconciler.save(tmp_path / "x.npz")


class TestPipelinePersistence:
    def test_round_trip_preserves_session_behaviour(self, tiny_pipeline, tmp_path):
        tiny_pipeline.save(tmp_path / "deploy")
        clone = make_tiny_pipeline(seed=555)
        clone.load(tmp_path / "deploy")

        trace = tiny_pipeline.collect_trace("persist-check", n_rounds=128)
        original = tiny_pipeline.build_session().run(trace)
        restored = clone.build_session().run(trace)
        assert restored.raw_agreement.mean == original.raw_agreement.mean
        assert restored.reconciled_agreement.mean == original.reconciled_agreement.mean
        assert restored.final_key_alice == original.final_key_alice
