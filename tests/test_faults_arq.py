"""ARQ probing, trace accounting and graceful session degradation."""

import dataclasses

import numpy as np
import pytest

from repro.core.session import SessionResult
from repro.core.statemachine import ABORT_MALFORMED
from repro.exceptions import (
    InsufficientEntropyError,
    KeyEstablishmentError,
    RetryBudgetExhausted,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.metrics.agreement import AgreementSummary
from repro.probing.trace import ProbeTrace

from tests.conftest import make_tiny_pipeline


@pytest.fixture(scope="module")
def lossy_trace():
    """A short, fault-injected trace from an untrained tiny pipeline."""
    pipeline = make_tiny_pipeline(seed=19)
    return pipeline.collect_trace(
        "lossy",
        n_rounds=32,
        fault_plan=FaultPlan.lossy(0.3, mean_burst=3.0, snr_dependent=False),
        retry_policy=RetryPolicy(),
    )


class TestArqProbing:
    def test_null_plan_is_bit_identical_to_no_plan(self):
        baseline = make_tiny_pipeline(seed=11).collect_trace("ident", n_rounds=24)
        with_null = make_tiny_pipeline(seed=11).collect_trace(
            "ident",
            n_rounds=24,
            fault_plan=FaultPlan.none(),
            retry_policy=RetryPolicy(),
        )
        np.testing.assert_array_equal(baseline.alice_rssi, with_null.alice_rssi)
        np.testing.assert_array_equal(baseline.bob_rssi, with_null.bob_rssi)
        np.testing.assert_array_equal(baseline.alice_prssi, with_null.alice_prssi)
        np.testing.assert_array_equal(baseline.round_start_s, with_null.round_start_s)
        np.testing.assert_array_equal(baseline.valid, with_null.valid)
        assert with_null.total_retries == 0
        assert with_null.n_dropped_rounds == 0

    def test_faulty_trace_is_deterministic(self, lossy_trace):
        again = make_tiny_pipeline(seed=19).collect_trace(
            "lossy",
            n_rounds=32,
            fault_plan=FaultPlan.lossy(0.3, mean_burst=3.0, snr_dependent=False),
            retry_policy=RetryPolicy(),
        )
        np.testing.assert_array_equal(lossy_trace.retries, again.retries)
        np.testing.assert_array_equal(lossy_trace.dropped, again.dropped)
        np.testing.assert_array_equal(lossy_trace.alice_rssi, again.alice_rssi)

    def test_retries_recorded_and_paid_in_time(self, lossy_trace):
        assert lossy_trace.total_retries > 0
        assert np.all(np.diff(lossy_trace.round_start_s) > 0)

    def test_dropped_rounds_are_invalid(self, lossy_trace):
        assert not lossy_trace.valid[lossy_trace.dropped].any()

    def test_heavy_loss_exhausts_retry_budget(self):
        pipeline = make_tiny_pipeline(seed=23)
        trace = pipeline.collect_trace(
            "drown",
            n_rounds=32,
            fault_plan=FaultPlan.lossy(0.9, mean_burst=2.0, snr_dependent=False),
            retry_policy=RetryPolicy(max_retries=1),
        )
        assert trace.n_dropped_rounds > 0
        assert trace.retries.max() <= 1


class TestTracePersistence:
    def test_retries_and_dropped_round_trip(self, lossy_trace, tmp_path):
        path = tmp_path / "lossy.npz"
        lossy_trace.save(path)
        loaded = ProbeTrace.load(path)
        np.testing.assert_array_equal(loaded.retries, lossy_trace.retries)
        np.testing.assert_array_equal(loaded.dropped, lossy_trace.dropped)
        assert loaded.total_retries == lossy_trace.total_retries
        assert loaded.n_dropped_rounds == lossy_trace.n_dropped_rounds

    def test_legacy_npz_without_arq_fields_loads(self, lossy_trace, tmp_path):
        path = tmp_path / "modern.npz"
        lossy_trace.save(path)
        with np.load(path) as data:
            # A true legacy file predates both the ARQ fields and the
            # artifact integrity header.
            legacy = {
                key: data[key]
                for key in data.files
                if key not in ("retries", "dropped") and not key.startswith("__")
            }
        legacy_path = tmp_path / "legacy.npz"
        np.savez_compressed(legacy_path, **legacy)
        with pytest.warns(UserWarning, match="legacy artifact"):
            loaded = ProbeTrace.load(legacy_path)
        assert loaded.total_retries == 0
        assert loaded.n_dropped_rounds == 0
        assert loaded.retries.shape == (lossy_trace.n_rounds,)

    def test_valid_only_filters_arq_fields(self, lossy_trace):
        filtered = lossy_trace.valid_only()
        assert filtered.retries.shape == (filtered.n_rounds,)
        assert filtered.n_dropped_rounds == 0  # dropped rounds are invalid


class TestSessionValidation:
    @pytest.fixture(scope="class")
    def session_and_trace(self, tiny_pipeline):
        trace = tiny_pipeline.collect_trace("validate", n_rounds=96)
        session = tiny_pipeline.build_session()
        result = session.run(trace)
        assert result.n_blocks > 0  # precondition: tamper hook actually fires
        return session, trace

    def test_negative_block_index_rejected(self, session_and_trace):
        session, trace = session_and_trace
        result = session.run(
            trace, tamper=lambda m: dataclasses.replace(m, block_index=-1)
        )
        assert result.abort is not None
        assert result.abort.reason == ABORT_MALFORMED
        assert "block index" in result.abort.detail
        assert result.final_key_alice is None

    def test_empty_nonce_rejected(self, session_and_trace):
        session, trace = session_and_trace
        result = session.run(
            trace, tamper=lambda m: dataclasses.replace(m, session_nonce=b"")
        )
        assert result.abort is not None
        assert result.abort.reason == ABORT_MALFORMED
        assert "nonce" in result.abort.detail
        assert result.final_key_alice is None


class TestBackoffJitter:
    def test_zero_jitter_is_deterministic_default(self):
        policy = RetryPolicy()
        assert policy.jitter_fraction == 0.0
        rng = np.random.default_rng(0)
        assert policy.backoff_s(1) == policy.backoff_s(1, rng=rng)

    def test_jitter_draws_from_given_stream(self):
        policy = RetryPolicy(jitter_fraction=0.5)
        a = policy.backoff_s(1, rng=np.random.default_rng(1))
        b = policy.backoff_s(1, rng=np.random.default_rng(1))
        c = policy.backoff_s(1, rng=np.random.default_rng(2))
        assert a == b  # same stream, same jitter
        assert a != c  # different stream, different jitter

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(jitter_fraction=0.3)
        nominal = RetryPolicy().backoff_s(2)
        rng = np.random.default_rng(3)
        for _ in range(64):
            jittered = policy.backoff_s(2, rng=rng)
            assert 0.7 * nominal - 1e-12 <= jittered <= 1.3 * nominal + 1e-12

    def test_duty_cycle_floor_applies_after_jitter(self):
        from repro.lora.regional import EU433

        airtime = 0.5  # EU433 floor: 0.5 * (1/0.1 - 1) = 4.5 s >> backoff
        policy = RetryPolicy(jitter_fraction=0.5, regional_plan=EU433)
        rng = np.random.default_rng(4)
        floor = EU433.min_gap_after(airtime)
        for _ in range(32):
            assert policy.backoff_s(0, airtime_s=airtime, rng=rng) >= floor

    def test_min_retry_delay_is_a_true_lower_bound(self):
        from repro.lora.regional import EU868

        policy = RetryPolicy(jitter_fraction=0.4, regional_plan=EU868)
        airtime = 0.1
        lower = policy.min_retry_delay_s(airtime)
        rng = np.random.default_rng(5)
        for retry_index in range(3):
            for _ in range(32):
                delay = policy.retry_delay_s(retry_index, airtime, rng=rng)
                assert delay >= lower - 1e-12

    def test_invalid_jitter_fraction_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=-0.1)


class TestBudgetSurfacing:
    """Consumed-vs-remaining retry and backoff budgets on trace/outcome."""

    def test_trace_surfaces_retry_budget(self, lossy_trace):
        # The lossy fixture ran with a fault plan, so the budget fields
        # are populated.
        assert lossy_trace.retry_limit == RetryPolicy().max_retries
        assert lossy_trace.max_round_retries <= lossy_trace.retry_limit
        remaining = lossy_trace.retry_budget_remaining
        assert remaining == lossy_trace.retry_limit - lossy_trace.max_round_retries
        assert lossy_trace.total_backoff_s > 0.0

    def test_fault_free_trace_has_no_budget(self):
        trace = make_tiny_pipeline(seed=29).collect_trace("clean", n_rounds=16)
        assert trace.retry_limit is None
        assert trace.retry_budget_remaining is None
        assert trace.total_backoff_s == 0.0

    def test_budget_fields_round_trip(self, lossy_trace, tmp_path):
        path = tmp_path / "budget.npz"
        lossy_trace.save(path)
        loaded = ProbeTrace.load(path)
        assert loaded.retry_limit == lossy_trace.retry_limit
        np.testing.assert_array_equal(
            loaded.backoff_time_s, lossy_trace.backoff_time_s
        )
        np.testing.assert_array_equal(
            loaded.replays_rejected, lossy_trace.replays_rejected
        )
        np.testing.assert_array_equal(loaded.injected, lossy_trace.injected)
        assert loaded.retry_budget_remaining == lossy_trace.retry_budget_remaining

    def test_outcome_surfaces_budget(self, tiny_pipeline):
        policy = RetryPolicy(max_retries=4)
        outcome = tiny_pipeline.establish_key(
            episode="budget-view",
            n_rounds=64,
            fault_plan=FaultPlan.lossy(0.3, mean_burst=2.0),
            retry_policy=policy,
        )
        assert outcome.retry_limit_per_round == 4
        assert 0 <= outcome.max_round_retries <= 4
        assert (
            outcome.retry_budget_remaining
            == outcome.retry_limit_per_round - outcome.max_round_retries
        )
        assert outcome.total_backoff_s > 0.0

    def test_fault_free_outcome_has_no_budget(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(episode="budget-clean", n_rounds=64)
        assert outcome.retry_limit_per_round is None
        assert outcome.retry_budget_remaining is None
        assert outcome.total_backoff_s == 0.0
        assert outcome.time_to_abort_s is None
        assert outcome.attack_detections == 0


class TestGracefulDegradation:
    def test_establish_key_survives_twenty_percent_loss(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(
            episode="arq-live",
            fault_plan=FaultPlan.lossy(0.2, mean_burst=2.0, message_drop_rate=0.1),
            retry_policy=RetryPolicy(),
            max_attempts=2,
        )
        # Acceptance: the session still succeeds under 20% loss ...
        assert outcome.success
        assert outcome.session.final_key_alice == outcome.session.final_key_bob
        assert outcome.total_retries > 0
        # ... and the degraded-transport accounting is consistent.
        result = outcome.session
        assert result.reconciliation_messages >= result.n_blocks
        assert 0 <= result.undelivered_blocks <= result.n_blocks
        assert len(result.verified_blocks) <= result.n_blocks - result.undelivered_blocks

    def test_null_plan_reproduces_default_outcome(self, tiny_pipeline):
        baseline = tiny_pipeline.establish_key(episode="bitident", n_rounds=128)
        with_null = tiny_pipeline.establish_key(
            episode="bitident",
            n_rounds=128,
            fault_plan=FaultPlan.none(),
            retry_policy=RetryPolicy(),
        )
        assert baseline.session.final_key_alice == with_null.session.final_key_alice
        assert baseline.session.final_key_bob == with_null.session.final_key_bob
        assert baseline.agreement_rate == with_null.agreement_rate
        assert baseline.key_generation_rate_bps == with_null.key_generation_rate_bps

    def test_short_trace_reports_insufficient_entropy(self, tiny_pipeline):
        short = tiny_pipeline.collect_trace("short", n_rounds=8)
        outcome = tiny_pipeline.establish_key(trace=short)
        assert not outcome.success
        assert outcome.failure_reason == InsufficientEntropyError.reason
        assert outcome.attempts == 1
        assert outcome.final_key is None
        with pytest.raises(InsufficientEntropyError):
            tiny_pipeline.establish_key(trace=short, raise_on_failure=True)

    def test_reprobe_exhaustion_reports_retry_budget(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(
            episode="starved", n_rounds=8, max_attempts=2
        )
        assert not outcome.success
        assert outcome.attempts == 2
        assert outcome.failure_reason == RetryBudgetExhausted.reason
        with pytest.raises(RetryBudgetExhausted):
            tiny_pipeline.establish_key(
                episode="starved", n_rounds=8, max_attempts=2, raise_on_failure=True
            )

    def test_airtime_budget_stops_reprobing(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(
            episode="capped",
            n_rounds=8,
            max_attempts=5,
            reprobe_airtime_budget_s=1e-6,
        )
        assert outcome.attempts == 1  # budget exhausted before any re-probe
        assert outcome.failure_reason == RetryBudgetExhausted.reason

    def test_key_mismatch_never_silent(self, tiny_pipeline, monkeypatch):
        trace = tiny_pipeline.collect_trace("mismatch", n_rounds=8)
        empty = AgreementSummary(mean=1.0, std=0.0, n_pairs=1)
        mismatched = SessionResult(
            raw_agreement=empty,
            reconciled_agreement=empty,
            verified_blocks=[0, 1],
            n_blocks=2,
            n_windows=4,
            kept_fraction=0.5,
            final_key_alice=b"A" * 16,
            final_key_bob=b"B" * 16,
            agreed_bits=64,
            consensus_bytes=32,
            reconciliation_bytes=128,
            reconciliation_messages=2,
        )

        class StubSession:
            def run(self, trace, tamper=None, channel=None, max_rerequests=2):
                return mismatched

        monkeypatch.setattr(tiny_pipeline, "build_session", lambda: StubSession())
        outcome = tiny_pipeline.establish_key(trace=trace)
        assert not outcome.success
        assert outcome.failure_reason == "key-mismatch"
        with pytest.raises(KeyEstablishmentError) as excinfo:
            tiny_pipeline.establish_key(trace=trace, raise_on_failure=True)
        assert excinfo.type is KeyEstablishmentError
