"""The channel simulator's statistical self-checks, run as tests."""

import pytest

from repro.channel.validation import (
    ValidationReport,
    check_friis_slope,
    check_jakes_autocorrelation,
    check_log_distance_slope,
    check_rayleigh_distribution,
    check_rayleigh_envelope,
    check_shadowing_correlation,
    check_shadowing_marginal,
    validate_all,
)


class TestIndividualChecks:
    def test_rayleigh_envelope(self):
        assert check_rayleigh_envelope(seed=0).passed

    def test_rayleigh_distribution(self):
        assert check_rayleigh_distribution(seed=1).passed

    def test_jakes_autocorrelation(self):
        assert check_jakes_autocorrelation(seed=2).passed

    def test_shadowing_marginal(self):
        assert check_shadowing_marginal(seed=3).passed

    def test_shadowing_correlation(self):
        assert check_shadowing_correlation(seed=4).passed

    def test_friis_slope(self):
        assert check_friis_slope().passed

    def test_log_distance_slope(self):
        assert check_log_distance_slope().passed


class TestValidateAll:
    def test_every_check_passes(self):
        reports = validate_all(seed=11)
        failing = [name for name, report in reports.items() if not report.passed]
        assert not failing, failing

    def test_report_rendering(self):
        report = ValidationReport("demo", statistic=1.0, expected=1.0, tolerance=0.1)
        assert report.passed
        assert "demo" in str(report)

    def test_failed_report_detected(self):
        report = ValidationReport("demo", statistic=2.0, expected=1.0, tolerance=0.1)
        assert not report.passed
