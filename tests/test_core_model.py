"""Tests for the BiLSTM prediction/quantization model."""

import numpy as np
import pytest

from repro.core.model import PredictionQuantizationModel
from repro.exceptions import ConfigurationError, NotTrainedError
from repro.probing.dataset import KeyGenDataset

RNG = np.random.default_rng(3)


def synthetic_dataset(n=80, seq_len=16, noise=0.2):
    alice = RNG.standard_normal((n, seq_len))
    bob = alice + noise * RNG.standard_normal((n, seq_len))

    def norm(x):
        return (x - x.mean(1, keepdims=True)) / x.std(1, keepdims=True)

    return KeyGenDataset(alice=norm(alice), bob=norm(bob), alice_raw=alice, bob_raw=bob)


@pytest.fixture(scope="module")
def trained_model():
    model = PredictionQuantizationModel(
        seq_len=16, hidden_units=16, key_bits=32, seed=0
    )
    model.fit(synthetic_dataset(n=160), epochs=40, batch_size=16)
    return model


class TestConstruction:
    def test_key_bits_must_match_quantizer_layout(self):
        with pytest.raises(ConfigurationError):
            PredictionQuantizationModel(seq_len=16, key_bits=48)

    def test_untrained_model_refuses_inference(self):
        model = PredictionQuantizationModel(seq_len=8, hidden_units=4, key_bits=16)
        with pytest.raises(NotTrainedError):
            model.alice_bits(np.zeros((1, 8)))

    def test_default_quantizer_is_fixed_threshold_2bit(self):
        model = PredictionQuantizationModel(seq_len=16, key_bits=32)
        assert model.bob_quantizer.bits_per_sample == 2
        assert model.bob_quantizer.fixed_thresholds

    @pytest.mark.parametrize("cell", ["bilstm", "lstm", "gru"])
    def test_recurrent_cell_options_train(self, cell):
        model = PredictionQuantizationModel(
            seq_len=16, hidden_units=6, key_bits=32, recurrent_cell=cell, seed=0
        )
        model.fit(synthetic_dataset(n=40), epochs=2, batch_size=16)
        bits = model.alice_bits(np.zeros((1, 16)))
        assert bits.shape == (1, 32)

    def test_unknown_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictionQuantizationModel(seq_len=16, key_bits=32, recurrent_cell="rnn")


class TestTraining:
    def test_loss_decreases(self, trained_model):
        losses = trained_model  # fixture trains; check via a fresh run
        model = PredictionQuantizationModel(
            seq_len=16, hidden_units=8, key_bits=32, seed=1
        )
        report = model.fit(synthetic_dataset(), epochs=10, batch_size=16)
        assert report.history.metrics["loss"][-1] < report.history.metrics["loss"][0]

    def test_learns_noisy_identity_better_than_chance(self, trained_model):
        dataset = synthetic_dataset(n=30)
        alice = trained_model.alice_bits(dataset.alice)
        bob = trained_model.bob_bits(dataset.bob_raw)
        assert np.mean(alice == bob) > 0.75

    def test_validation_loss_recorded(self):
        model = PredictionQuantizationModel(
            seq_len=16, hidden_units=4, key_bits=32, seed=2
        )
        data = synthetic_dataset(n=40)
        report = model.fit(data, validation=data, epochs=3)
        assert "val_loss" in report.history.metrics


class TestInference:
    def test_bit_output_shape_and_values(self, trained_model):
        windows = RNG.standard_normal((5, 16))
        bits = trained_model.alice_bits(windows)
        assert bits.shape == (5, 32)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_probabilities_in_unit_interval(self, trained_model):
        probs = trained_model.predict_bit_probabilities(RNG.standard_normal((3, 16)))
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predicted_sequences_shape(self, trained_model):
        assert trained_model.predict_sequences(RNG.standard_normal((4, 16))).shape == (4, 16)

    def test_bob_bits_deterministic(self, trained_model):
        window = RNG.normal(-90, 3, size=(1, 16))
        np.testing.assert_array_equal(
            trained_model.bob_bits(window), trained_model.bob_bits(window)
        )

    def test_wrong_window_length_rejected(self, trained_model):
        with pytest.raises(ConfigurationError):
            trained_model.bob_bits(np.zeros((1, 20)))


class TestPersistenceAndTransfer:
    def test_save_load_round_trip(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        clone = trained_model.clone_architecture(seed=9)
        clone.load(path)
        windows = RNG.standard_normal((4, 16))
        np.testing.assert_allclose(
            clone.predict_bit_probabilities(windows),
            trained_model.predict_bit_probabilities(windows),
        )

    def test_copy_weights_from(self, trained_model):
        clone = trained_model.clone_architecture(seed=10)
        clone.copy_weights_from(trained_model)
        windows = RNG.standard_normal((2, 16))
        np.testing.assert_allclose(
            clone.predict_sequences(windows), trained_model.predict_sequences(windows)
        )

    def test_copy_from_untrained_rejected(self):
        source = PredictionQuantizationModel(seq_len=8, hidden_units=4, key_bits=16)
        target = source.clone_architecture(seed=1)
        with pytest.raises(NotTrainedError):
            target.copy_weights_from(source)

    def test_clone_architecture_matches_hyperparameters(self, trained_model):
        clone = trained_model.clone_architecture(seed=5)
        assert clone.seq_len == trained_model.seq_len
        assert clone.key_bits == trained_model.key_bits
        assert clone.loss.theta == trained_model.loss.theta
