"""Tests for losses, optimizers, the Model container and serialization."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.activations import get_activation
from repro.nn.callbacks import EarlyStopping, History
from repro.nn.layers.dense import Dense, Flatten
from repro.nn.layers.lstm import LSTM
from repro.nn.losses import (
    BinaryCrossEntropy,
    JointPredictionQuantizationLoss,
    MeanSquaredError,
)
from repro.nn.model import Model
from repro.nn.optimizers import SGD, Adam

RNG = np.random.default_rng(7)


class TestLosses:
    def test_mse_known_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([[1.0, 2.0]]), np.array([[1.0, 4.0]])) == pytest.approx(2.0)

    def test_mse_gradient_matches_finite_difference(self):
        loss = MeanSquaredError()
        y = RNG.standard_normal((3, 4))
        p = RNG.standard_normal((3, 4))
        grad = loss.gradient(y, p)
        eps = 1e-6
        p2 = p.copy()
        p2[1, 2] += eps
        numeric = (loss.value(y, p2) - loss.value(y, p)) / eps
        assert grad[1, 2] == pytest.approx(numeric, rel=1e-4)

    def test_bce_perfect_prediction_is_near_zero(self):
        loss = BinaryCrossEntropy()
        z = np.array([[0.0, 1.0, 1.0]])
        assert loss.value(z, z.copy()) < 1e-6

    def test_bce_gradient_matches_finite_difference(self):
        loss = BinaryCrossEntropy()
        z = np.array([[0.0, 1.0], [1.0, 0.0]])
        p = np.array([[0.3, 0.8], [0.6, 0.2]])
        grad = loss.gradient(z, p)
        eps = 1e-7
        p2 = p.copy()
        p2[0, 1] += eps
        numeric = (loss.value(z, p2) - loss.value(z, p)) / eps
        assert grad[0, 1] == pytest.approx(numeric, rel=1e-3)

    def test_bce_clips_extreme_predictions(self):
        loss = BinaryCrossEntropy()
        value = loss.value(np.array([[1.0]]), np.array([[0.0]]))
        assert np.isfinite(value)

    def test_joint_loss_interpolates(self):
        y = RNG.standard_normal((2, 3))
        y_hat = RNG.standard_normal((2, 3))
        z = (RNG.uniform(size=(2, 4)) > 0.5).astype(float)
        z_hat = RNG.uniform(0.1, 0.9, size=(2, 4))
        mse_only = JointPredictionQuantizationLoss(theta=1.0)
        bce_only = JointPredictionQuantizationLoss(theta=0.0)
        mixed = JointPredictionQuantizationLoss(theta=0.5)
        total_mixed = mixed.value(y, y_hat, z, z_hat)
        expected = 0.5 * mse_only.value(y, y_hat, z, z_hat) + 0.5 * bce_only.value(
            y, y_hat, z, z_hat
        )
        assert total_mixed == pytest.approx(expected)

    def test_joint_loss_gradients_scale_with_theta(self):
        y = RNG.standard_normal((2, 3))
        y_hat = RNG.standard_normal((2, 3))
        z = np.ones((2, 4))
        z_hat = np.full((2, 4), 0.5)
        grad_y, grad_z = JointPredictionQuantizationLoss(theta=0.9).gradients(
            y, y_hat, z, z_hat
        )
        assert grad_y.shape == y_hat.shape
        assert grad_z.shape == z_hat.shape

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MeanSquaredError().value(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            JointPredictionQuantizationLoss(theta=1.5)


class TestOptimizers:
    def test_sgd_step_direction(self):
        param = np.array([1.0, 1.0])
        grad = np.array([1.0, -1.0])
        SGD(learning_rate=0.1).apply([(param, grad)])
        np.testing.assert_allclose(param, [0.9, 1.1])

    def test_sgd_momentum_accumulates(self):
        plain_param = np.array([1.0])
        momentum_param = np.array([1.0])
        grad = np.array([1.0])
        sgd = SGD(learning_rate=0.1)
        momentum = SGD(learning_rate=0.1, momentum=0.9)
        for _ in range(3):
            sgd.apply([(plain_param, grad)])
            momentum.apply([(momentum_param, grad)])
        assert momentum_param[0] < plain_param[0]

    def test_adam_first_step_magnitude(self):
        # Adam's bias-corrected first step is ~learning_rate regardless of
        # gradient scale.
        param = np.array([0.0])
        Adam(learning_rate=0.01).apply([(param, np.array([1000.0]))])
        assert param[0] == pytest.approx(-0.01, rel=1e-3)

    def test_adam_state_is_per_parameter(self):
        a, b = np.array([0.0]), np.array([0.0])
        opt = Adam(learning_rate=0.1)
        opt.apply([(a, np.array([1.0])), (b, np.array([-1.0]))])
        assert a[0] < 0 < b[0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD().apply([(np.zeros(2), np.zeros(3))])

    def test_minimizes_quadratic(self):
        param = np.array([5.0])
        opt = Adam(learning_rate=0.2)
        for _ in range(200):
            opt.apply([(param, 2 * param)])
        assert abs(param[0]) < 1e-2


class TestModel:
    def _regression_problem(self, n=256):
        x = RNG.standard_normal((n, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w + 0.3
        return x, y

    def test_learns_linear_regression(self):
        x, y = self._regression_problem()
        model = Model([Dense(1, seed=0)], optimizer=Adam(learning_rate=0.05))
        model.fit(x, y, epochs=60, batch_size=32)
        assert model.evaluate(x, y) < 1e-3

    def test_learns_nonlinear_function(self):
        x = RNG.uniform(-1, 1, size=(512, 1))
        y = np.sin(3 * x)
        model = Model(
            [Dense(32, activation="tanh", seed=1), Dense(1, seed=2)],
            optimizer=Adam(learning_rate=0.01),
        )
        model.fit(x, y, epochs=150, batch_size=64)
        assert model.evaluate(x, y) < 0.01

    def test_lstm_learns_sequence_mean(self):
        x = RNG.standard_normal((256, 6, 1))
        y = x.mean(axis=1)
        model = Model(
            [LSTM(8, return_sequences=False, seed=3), Dense(1, seed=4)],
            optimizer=Adam(learning_rate=0.02),
        )
        model.fit(x, y, epochs=60, batch_size=32)
        assert model.evaluate(x, y) < 0.02

    def test_history_records_losses(self):
        x, y = self._regression_problem(64)
        model = Model([Dense(1, seed=5)])
        history = model.fit(x, y, epochs=5, batch_size=16)
        assert len(history.epochs) == 5
        assert "loss" in history.metrics

    def test_validation_loss_recorded(self):
        x, y = self._regression_problem(64)
        model = Model([Dense(1, seed=6)])
        history = model.fit(x, y, epochs=3, validation_data=(x, y))
        assert len(history.metrics["val_loss"]) == 3

    def test_early_stopping_halts(self):
        x, y = self._regression_problem(64)
        model = Model([Dense(1, seed=7)], optimizer=SGD(learning_rate=1e-12))
        history = model.fit(
            x, y, epochs=100, early_stopping=EarlyStopping(patience=3, min_delta=1e-6)
        )
        assert len(history.epochs) < 100

    def test_training_is_deterministic(self):
        x, y = self._regression_problem(64)

        def run():
            model = Model([Dense(1, seed=8)], optimizer=Adam(learning_rate=0.01))
            model.fit(x, y, epochs=3, shuffle_seed=5)
            return model.predict(x)

        np.testing.assert_array_equal(run(), run())

    def test_save_load_round_trip(self, tmp_path):
        x, y = self._regression_problem(64)
        model = Model([Dense(4, activation="relu", seed=9), Dense(1, seed=10)])
        model.fit(x, y, epochs=2)
        before = model.predict(x)
        path = tmp_path / "weights.npz"
        model.save(path)

        clone = Model([Dense(4, activation="relu", seed=11), Dense(1, seed=12)])
        clone.forward(x[:1])  # build
        clone.load(path)
        np.testing.assert_allclose(clone.predict(x), before)

    def test_load_mismatched_architecture_rejected(self, tmp_path):
        model = Model([Dense(4, seed=0)])
        model.forward(RNG.standard_normal((2, 3)))
        path = tmp_path / "w.npz"
        model.save(path)
        other = Model([Dense(5, seed=1)])
        other.forward(RNG.standard_normal((2, 3)))
        with pytest.raises(ConfigurationError):
            other.load(path)

    def test_get_set_weights_round_trip(self):
        x, y = self._regression_problem(32)
        model = Model([Dense(1, seed=13)])
        model.fit(x, y, epochs=1)
        weights = model.get_weights()
        before = model.predict(x)
        model.fit(x, y, epochs=3)
        model.set_weights(weights)
        np.testing.assert_allclose(model.predict(x), before)

    def test_empty_model_rejected(self):
        with pytest.raises(ConfigurationError):
            Model([])


class TestCallbacksAndActivations:
    def test_history_best(self):
        history = History()
        history.record(0, loss=1.0)
        history.record(1, loss=0.5)
        history.record(2, loss=0.7)
        assert history.best("loss") == 0.5
        assert history.last("loss") == 0.7

    def test_early_stopping_tracks_best_epoch(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0, 1.0)
        assert not stopper.update(1, 0.5)
        assert not stopper.update(2, 0.6)
        assert stopper.update(3, 0.7)
        assert stopper.best_epoch == 1

    def test_unknown_activation_rejected(self):
        with pytest.raises(ConfigurationError):
            get_activation("swishh")

    def test_activation_instance_passthrough(self):
        from repro.nn.activations import Tanh

        instance = Tanh()
        assert get_activation(instance) is instance
