"""Tests for the fault-injection primitives (repro.faults)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.link import (
    DIRECTIONS,
    GilbertElliottProcess,
    LinkFaultModel,
    snr_packet_error_rate,
)
from repro.faults.messages import LossyMessageChannel
from repro.faults.plan import (
    FaultPlan,
    LossConfig,
    MessageFaultConfig,
    RegisterCorruptionConfig,
)
from repro.faults.retry import RetryPolicy
from repro.lora.link_budget import _SNR_LIMIT_DB
from repro.lora.regional import EU868, UNRESTRICTED
from repro.utils.rng import SeedSequenceFactory


class TestFaultPlan:
    def test_none_is_null(self):
        assert FaultPlan.none().is_null
        assert not FaultPlan.none().loss.active
        assert not FaultPlan.none().register.active
        assert not FaultPlan.none().messages.active

    def test_lossy_is_not_null(self):
        plan = FaultPlan.lossy(0.2, mean_burst=3.0, message_drop_rate=0.1)
        assert not plan.is_null
        assert plan.loss.active
        assert plan.messages.active
        assert not plan.register.active

    def test_snr_dependent_alone_activates_loss(self):
        config = LossConfig(rate=0.0, snr_dependent=True)
        assert config.active
        assert not FaultPlan(loss=config).is_null

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: LossConfig(rate=-0.1),
            lambda: LossConfig(rate=1.5),
            lambda: LossConfig(rate=0.1, mean_burst=0.5),
            lambda: RegisterCorruptionConfig(probability=2.0),
            lambda: RegisterCorruptionConfig(probability=0.1, burst_symbols=0),
            lambda: MessageFaultConfig(drop_rate=-0.2),
        ],
    )
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            bad()


class TestSnrPacketErrorRate:
    def test_half_at_demodulation_limit(self):
        for sf, limit in _SNR_LIMIT_DB.items():
            assert snr_packet_error_rate(limit, sf) == pytest.approx(0.5)

    def test_monotonically_decreasing_in_snr(self):
        snrs = np.linspace(-30.0, 10.0, 81)
        pers = [snr_packet_error_rate(s, 7) for s in snrs]
        assert all(a >= b for a, b in zip(pers, pers[1:]))

    def test_extremes_saturate(self):
        assert snr_packet_error_rate(-120.0, 12) == 1.0
        assert snr_packet_error_rate(60.0, 7) == 0.0

    def test_unknown_spreading_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            snr_packet_error_rate(0.0, 42)


class TestGilbertElliott:
    def test_deterministic_under_fixed_seed(self):
        # Satellite acceptance: the same SeedSequenceFactory seed must
        # reproduce the exact burst pattern.
        runs = []
        for _ in range(2):
            seeds = SeedSequenceFactory(1234)
            process = GilbertElliottProcess(0.3, 4.0, seeds.generator("fault-loss-a2b"))
            runs.append([process.step() for _ in range(500)])
        assert runs[0] == runs[1]

    def test_stationary_loss_rate(self):
        seeds = SeedSequenceFactory(7)
        process = GilbertElliottProcess(0.25, 3.0, seeds.generator("ge"))
        losses = np.array([process.step() for _ in range(20000)])
        assert losses.mean() == pytest.approx(0.25, abs=0.03)

    def test_mean_burst_controls_correlation(self):
        def mean_burst_length(mean_burst):
            seeds = SeedSequenceFactory(3)
            process = GilbertElliottProcess(0.2, mean_burst, seeds.generator("ge"))
            losses = np.array([process.step() for _ in range(20000)], dtype=int)
            edges = np.diff(np.concatenate([[0], losses, [0]]))
            starts = np.count_nonzero(edges == 1)
            return losses.sum() / max(1, starts)

        assert mean_burst_length(1.0) == pytest.approx(1.0, abs=0.15)
        assert mean_burst_length(6.0) > 2.0 * mean_burst_length(1.0)

    def test_zero_rate_never_loses(self):
        seeds = SeedSequenceFactory(0)
        process = GilbertElliottProcess(0.0, 1.0, seeds.generator("ge"))
        assert not any(process.step() for _ in range(100))


class TestLinkFaultModel:
    def test_deterministic_per_seed_and_direction(self):
        plan = FaultPlan.lossy(0.3, mean_burst=2.0)

        def pattern():
            model = LinkFaultModel(plan, SeedSequenceFactory(42))
            return {
                direction: [model.packet_lost(direction, 5.0, 7) for _ in range(200)]
                for direction in DIRECTIONS
            }

        first, second = pattern(), pattern()
        assert first == second
        assert first["a2b"] != first["b2a"]

    def test_unknown_direction_rejected(self):
        model = LinkFaultModel(FaultPlan.lossy(0.1), SeedSequenceFactory(0))
        with pytest.raises(ConfigurationError):
            model.packet_lost("eve", 0.0, 7)

    def test_snr_dependence_dominates_weak_links(self):
        plan = FaultPlan.lossy(0.0, snr_dependent=True)
        model = LinkFaultModel(plan, SeedSequenceFactory(5))
        weak = sum(model.packet_lost("a2b", -30.0, 7) for _ in range(200))
        strong = sum(model.packet_lost("b2a", 20.0, 7) for _ in range(200))
        assert weak == 200
        assert strong == 0

    def test_register_corruption_inactive_returns_same_object(self):
        model = LinkFaultModel(FaultPlan.lossy(0.1), SeedSequenceFactory(0))
        samples = np.full(16, -80.0)
        assert model.corrupt_register(samples, -137.0) is samples

    def test_register_corruption_drops_a_burst(self):
        plan = FaultPlan(
            register=RegisterCorruptionConfig(
                probability=1.0, burst_symbols=3, magnitude_db=20.0
            )
        )
        model = LinkFaultModel(plan, SeedSequenceFactory(9))
        samples = np.full(16, -80.0)
        out = model.corrupt_register(samples, -137.0)
        assert out is not samples
        assert np.count_nonzero(out < samples) == 3
        np.testing.assert_allclose(out[out < samples], -100.0)

    def test_register_corruption_clamped_at_floor(self):
        plan = FaultPlan(
            register=RegisterCorruptionConfig(probability=1.0, magnitude_db=500.0)
        )
        model = LinkFaultModel(plan, SeedSequenceFactory(2))
        out = model.corrupt_register(np.full(8, -120.0), -137.0)
        assert out.min() >= -137.0


class TestLossyMessageChannel:
    def test_reliable_when_all_rates_zero(self):
        channel = LossyMessageChannel(
            MessageFaultConfig(), SeedSequenceFactory(0).generator("m")
        )
        for i in range(10):
            assert channel.deliver(i) == [i]
        assert channel.flush() == []
        assert channel.dropped == channel.duplicated == channel.reordered == 0

    def test_deterministic_under_fixed_seed(self):
        config = MessageFaultConfig(drop_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2)

        def arrivals():
            channel = LossyMessageChannel(
                config, SeedSequenceFactory(77).generator("fault-messages")
            )
            out = [channel.deliver(i) for i in range(50)]
            out.append(channel.flush())
            return out

        assert arrivals() == arrivals()

    def test_drops_are_counted_and_missing(self):
        config = MessageFaultConfig(drop_rate=0.5)
        channel = LossyMessageChannel(config, SeedSequenceFactory(1).generator("m"))
        sent = list(range(200))
        received = [m for i in sent for m in channel.deliver(i)]
        received += channel.flush()
        assert channel.dropped == len(sent) - len(received)
        assert 0 < channel.dropped < len(sent)

    def test_duplicates_arrive_twice(self):
        config = MessageFaultConfig(duplicate_rate=1.0)
        channel = LossyMessageChannel(config, SeedSequenceFactory(1).generator("m"))
        assert channel.deliver("x") == ["x", "x"]
        assert channel.duplicated == 1

    def test_reorder_swaps_with_successor(self):
        config = MessageFaultConfig(reorder_rate=1.0)
        channel = LossyMessageChannel(config, SeedSequenceFactory(1).generator("m"))
        first = channel.deliver("a")
        second = channel.deliver("b")
        # "a" is held back; "b" triggers its release, arriving first.
        assert first == []
        assert second[0] == "b"
        assert "a" in second + channel.flush()

    def test_no_message_lost_without_drops(self):
        config = MessageFaultConfig(duplicate_rate=0.3, reorder_rate=0.3)
        channel = LossyMessageChannel(config, SeedSequenceFactory(5).generator("m"))
        received = [m for i in range(100) for m in channel.deliver(i)]
        received += channel.flush()
        assert set(received) == set(range(100))


class TestRetryPolicy:
    def test_exponential_ramp_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, max_backoff_s=0.5
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)
        assert policy.backoff_s(3) == pytest.approx(0.5)
        assert policy.backoff_s(10) == pytest.approx(0.5)

    def test_duty_cycle_floors_backoff(self):
        policy = RetryPolicy(backoff_base_s=0.01, regional_plan=EU868)
        airtime = 0.2
        # EU868's 1% duty cycle mandates 99x the airtime of silence, far
        # above the configured backoff ramp.
        assert policy.backoff_s(0, airtime) == pytest.approx(
            EU868.min_gap_after(airtime)
        )

    def test_unrestricted_plan_leaves_ramp_alone(self):
        policy = RetryPolicy(backoff_base_s=0.05, regional_plan=UNRESTRICTED)
        assert policy.backoff_s(0, 0.2) == pytest.approx(0.05)

    def test_retry_delay_adds_timeout(self):
        policy = RetryPolicy(timeout_s=0.07, backoff_base_s=0.05)
        assert policy.retry_delay_s(0) == pytest.approx(0.12)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=1.0, max_backoff_s=0.5)
