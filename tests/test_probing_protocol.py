"""Tests for the probing protocol and trace containers."""

import numpy as np
import pytest

from repro.channel.scenario import ScenarioName, scenario_config
from repro.exceptions import ConfigurationError
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD, MULTITECH_XDOT
from repro.probing.eve import EveConfig, build_eavesdropping_eve, build_imitating_eve
from repro.probing.protocol import ProbingProtocol
from repro.probing.trace import EveTrace, ProbeTrace
from repro.utils.rng import SeedSequenceFactory


def make_protocol(seed=0, scenario=ScenarioName.V2I_RURAL, phy=None, **kwargs):
    seeds = SeedSequenceFactory(seed)
    config = scenario_config(scenario)
    alice, bob = config.build_trajectories(seeds)
    from repro.channel.mobility import RelativeMotion

    motion = RelativeMotion(alice, bob)
    channel = config.build_channel(seeds, motion)
    protocol = ProbingProtocol(
        channel=channel,
        phy=phy if phy is not None else LoRaPHYConfig(),
        alice_device=DRAGINO_LORA_SHIELD,
        bob_device=DRAGINO_LORA_SHIELD,
        **kwargs,
    )
    return protocol, seeds, config, (alice, bob), channel


class TestProtocolTiming:
    def test_round_period_includes_both_airtimes(self):
        protocol, *_ = make_protocol()
        assert protocol.round_period_s() > 2 * protocol.phy.airtime_s

    def test_round_starts_spaced_by_period(self):
        protocol, seeds, *_ = make_protocol()
        trace = protocol.run(4, seeds)
        gaps = np.diff(trace.round_start_s)
        np.testing.assert_allclose(gaps, protocol.round_period_s(), rtol=1e-9)

    def test_inter_round_gap_extends_period(self):
        fast, *_ = make_protocol()
        slow, *_ = make_protocol(inter_round_gap_s=1.0)
        assert slow.round_period_s() == pytest.approx(fast.round_period_s() + 1.0)

    def test_zero_rounds_rejected(self):
        protocol, seeds, *_ = make_protocol()
        with pytest.raises(ConfigurationError):
            protocol.run(0, seeds)


class TestProtocolMeasurements:
    def test_trace_shapes(self):
        protocol, seeds, *_ = make_protocol()
        trace = protocol.run(5, seeds)
        assert trace.n_rounds == 5
        assert trace.alice_rssi.shape == (5, protocol.phy.total_symbols)
        assert trace.bob_rssi.shape == trace.alice_rssi.shape

    def test_deterministic_given_seed(self):
        protocol_a, seeds_a, *_ = make_protocol(seed=3)
        protocol_b, seeds_b, *_ = make_protocol(seed=3)
        trace_a = protocol_a.run(3, seeds_a)
        trace_b = protocol_b.run(3, seeds_b)
        np.testing.assert_array_equal(trace_a.alice_rssi, trace_b.alice_rssi)
        np.testing.assert_array_equal(trace_a.bob_rssi, trace_b.bob_rssi)

    def test_rssi_values_plausible(self):
        protocol, seeds, *_ = make_protocol()
        trace = protocol.run(3, seeds)
        assert np.all(trace.alice_rssi > -140)
        assert np.all(trace.alice_rssi < -20)

    def test_km_scale_link_stays_valid(self):
        protocol, seeds, *_ = make_protocol()
        trace = protocol.run(5, seeds)
        assert trace.n_valid_rounds == 5

    def test_duration_covers_all_rounds(self):
        protocol, seeds, *_ = make_protocol()
        trace = protocol.run(4, seeds)
        assert trace.duration_s >= 3 * protocol.round_period_s()


class TestEavesdroppers:
    def _run_with_eve(self, builder, n_rounds=3):
        protocol, seeds, config, (alice, bob), channel = make_protocol()
        eve = builder(
            config, seeds, channel, alice, bob,
        )
        trace = protocol.run(n_rounds, seeds, eavesdroppers=[eve])
        return trace, eve

    def test_eavesdropping_eve_records_both_directions(self):
        trace, eve = self._run_with_eve(build_eavesdropping_eve)
        assert eve.label in trace.eve
        eve_trace = trace.eve[eve.label]
        assert eve_trace.of_alice_rssi.shape == trace.bob_rssi.shape
        assert eve_trace.of_bob_rssi.shape == trace.alice_rssi.shape

    def test_imitating_eve_records_both_directions(self):
        trace, eve = self._run_with_eve(build_imitating_eve)
        assert trace.eve[eve.label].of_alice_rssi.shape == trace.bob_rssi.shape

    def test_eve_measurements_differ_from_legit(self):
        trace, eve = self._run_with_eve(build_imitating_eve)
        assert not np.allclose(trace.eve[eve.label].of_bob_rssi, trace.alice_rssi)

    def test_eve_config_validation(self):
        with pytest.raises(ConfigurationError):
            EveConfig(offset_m=0.0)

    def test_multiple_eavesdroppers(self):
        protocol, seeds, config, (alice, bob), channel = make_protocol()
        eve1 = build_eavesdropping_eve(
            config, seeds, channel, alice, bob, EveConfig(label="e1")
        )
        eve2 = build_imitating_eve(
            config, seeds, channel, alice, bob, EveConfig(label="e2")
        )
        trace = protocol.run(2, seeds, eavesdroppers=[eve1, eve2])
        assert set(trace.eve) == {"e1", "e2"}


class TestTraceContainers:
    def test_valid_only_filters_rounds(self):
        protocol, seeds, *_ = make_protocol()
        trace = protocol.run(4, seeds)
        trace.valid[1] = False
        clean = trace.valid_only()
        assert clean.n_rounds == 3
        np.testing.assert_array_equal(clean.alice_rssi[0], trace.alice_rssi[0])
        np.testing.assert_array_equal(clean.alice_rssi[1], trace.alice_rssi[2])

    def test_valid_only_filters_eve(self):
        protocol, seeds, config, (alice, bob), channel = make_protocol()
        eve = build_eavesdropping_eve(config, seeds, channel, alice, bob)
        trace = protocol.run(4, seeds, eavesdroppers=[eve])
        trace.valid[0] = False
        clean = trace.valid_only()
        assert clean.eve[eve.label].of_alice_rssi.shape[0] == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeTrace(
                phy=LoRaPHYConfig(),
                alice_rssi=np.zeros((3, 5)),
                bob_rssi=np.zeros((4, 5)),
                round_start_s=np.zeros(3),
                valid=np.ones(3, dtype=bool),
            )

    def test_eve_trace_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            EveTrace(of_alice_rssi=np.zeros((2, 3)), of_bob_rssi=np.zeros((2, 4)))
