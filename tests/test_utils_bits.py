"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.utils.bits import (
    bit_agreement,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    flip_bits,
    gray_code_table,
    gray_decode,
    gray_encode,
    hamming_distance,
    int_to_bits,
    parity,
    random_bits,
)


class TestBytesRoundTrip:
    def test_simple_byte(self):
        assert bits_to_bytes([1, 0, 0, 0, 0, 0, 0, 1]) == b"\x81"

    def test_unpack_known_byte(self):
        np.testing.assert_array_equal(
            bytes_to_bits(b"\x81"), [1, 0, 0, 0, 0, 0, 0, 1]
        )

    def test_rejects_non_multiple_of_eight(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes([1, 0, 1])

    def test_rejects_non_binary_values(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes([2, 0, 0, 0, 0, 0, 0, 0])

    @given(st.binary(min_size=0, max_size=64))
    def test_round_trip_is_identity(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestIntConversion:
    def test_known_value(self):
        assert bits_to_int([1, 0, 1, 1]) == 11

    def test_int_to_bits_known(self):
        np.testing.assert_array_equal(int_to_bits(11, 4), [1, 0, 1, 1])

    def test_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(-1, 4)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_round_trip(self, value):
        assert bits_to_int(int_to_bits(value, 32)) == value


class TestHammingAndAgreement:
    def test_distance_counts_differences(self):
        assert hamming_distance([0, 1, 1, 0], [1, 1, 0, 0]) == 2

    def test_identical_arrays_agree_fully(self):
        assert bit_agreement([0, 1, 1], [0, 1, 1]) == 1.0

    def test_empty_arrays_agree_by_convention(self):
        assert bit_agreement([], []) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            hamming_distance([0, 1], [0, 1, 1])

    @given(st.integers(min_value=1, max_value=256), st.integers(0, 2**32 - 1))
    def test_agreement_and_distance_are_consistent(self, n, seed):
        a = random_bits(n, seed)
        b = random_bits(n, seed + 1)
        assert bit_agreement(a, b) == pytest.approx(1.0 - hamming_distance(a, b) / n)

    def test_flip_bits_changes_exactly_those_positions(self):
        original = random_bits(32, 7)
        flipped = flip_bits(original, [0, 5, 31])
        assert hamming_distance(original, flipped) == 3
        assert flipped[0] != original[0]

    def test_flip_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            flip_bits([0, 1], [5])


class TestParity:
    def test_even_number_of_ones(self):
        assert parity([1, 1, 0]) == 0

    def test_odd_number_of_ones(self):
        assert parity([1, 1, 1]) == 1

    def test_empty(self):
        assert parity([]) == 0


class TestGrayCode:
    @given(st.integers(min_value=0, max_value=2**20))
    def test_round_trip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_adjacent_values_differ_in_one_bit(self, value):
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert bin(diff).count("1") == 1

    def test_table_rows_are_gray_adjacent(self):
        table = gray_code_table(3)
        assert table.shape == (8, 3)
        for i in range(7):
            assert hamming_distance(table[i], table[i + 1]) == 1

    def test_table_rejects_non_positive_width(self):
        with pytest.raises(ConfigurationError):
            gray_code_table(0)


class TestRandomBits:
    def test_deterministic_for_seed(self):
        np.testing.assert_array_equal(random_bits(64, 3), random_bits(64, 3))

    def test_roughly_balanced(self):
        bits = random_bits(10_000, 0)
        assert 0.45 < bits.mean() < 0.55

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            random_bits(-1)
