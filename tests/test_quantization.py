"""Tests for the three quantizers and the consensus mask."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.quantization import (
    GuardBandQuantizer,
    MeanThresholdQuantizer,
    MultiBitQuantizer,
    QuantizationResult,
    consensus_mask,
)
from repro.utils.bits import hamming_distance

RNG = np.random.default_rng(42)


class TestMeanThreshold:
    def test_known_window(self):
        result = MeanThresholdQuantizer().quantize(np.array([1.0, 2.0, 3.0, 10.0]))
        np.testing.assert_array_equal(result.bits, [0, 0, 0, 1])

    def test_keeps_all_samples(self):
        result = MeanThresholdQuantizer().quantize(RNG.normal(size=32))
        assert result.n_kept == 32
        assert result.efficiency == 1.0

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            MeanThresholdQuantizer().quantize(np.array([]))

    @given(st.integers(min_value=2, max_value=128), st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_roughly_balanced_on_gaussian(self, n, seed):
        window = np.random.default_rng(seed).normal(size=n)
        bits = MeanThresholdQuantizer().quantize(window).bits
        assert 0 <= bits.sum() <= n


class TestMultiBit:
    def test_bit_count(self):
        quantizer = MultiBitQuantizer(bits_per_sample=2)
        result = quantizer.quantize(RNG.normal(size=64))
        assert result.bits.size == 2 * 64

    def test_levels_are_equiprobable(self):
        quantizer = MultiBitQuantizer(bits_per_sample=2)
        window = RNG.normal(size=4000)
        result = quantizer.quantize(window)
        groups = result.bits.reshape(-1, 2)
        # Each Gray codeword should appear ~25% of the time.
        _, counts = np.unique(groups, axis=0, return_counts=True)
        assert counts.min() > 800

    def test_similar_windows_mostly_agree(self):
        window = RNG.normal(size=256)
        noisy = window + RNG.normal(0, 0.02, size=256)
        quantizer = MultiBitQuantizer(bits_per_sample=2)
        bits_a = quantizer.quantize(window).bits
        bits_b = quantizer.quantize(noisy).bits
        assert hamming_distance(bits_a, bits_b) < 0.1 * bits_a.size

    def test_gray_coding_limits_neighbor_bin_damage(self):
        # Adjacent bins differ by one bit: samples that hop one bin under
        # noise cost exactly one bit flip each.
        quantizer = MultiBitQuantizer(bits_per_sample=3)
        window = np.linspace(0, 1, 512)
        shifted = window + 1e-3
        bits_a = quantizer.quantize(window).bits.reshape(-1, 3)
        bits_b = quantizer.quantize(shifted).bits.reshape(-1, 3)
        per_sample = (bits_a != bits_b).sum(axis=1)
        assert per_sample.max() <= 1

    def test_guard_band_drops_boundary_samples(self):
        quantizer = MultiBitQuantizer(bits_per_sample=2, guard_band_fraction=0.3)
        result = quantizer.quantize(RNG.normal(size=512))
        assert 0.5 < result.efficiency < 1.0

    def test_guard_band_improves_agreement(self):
        window = RNG.normal(size=1024)
        noisy = window + RNG.normal(0, 0.05, size=1024)
        plain = MultiBitQuantizer(bits_per_sample=2)
        guarded = MultiBitQuantizer(bits_per_sample=2, guard_band_fraction=0.3)

        plain_a, plain_b = plain.quantize(window), plain.quantize(noisy)
        plain_rate = np.mean(plain_a.bits != plain_b.bits)

        guarded_a, guarded_b = guarded.quantize(window), guarded.quantize(noisy)
        keep = consensus_mask(guarded_a.kept, guarded_b.kept)
        bits_a = guarded.quantize_with_mask(window, keep)
        bits_b = guarded.quantize_with_mask(noisy, keep)
        guarded_rate = np.mean(bits_a != bits_b)
        assert guarded_rate < plain_rate

    def test_window_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiBitQuantizer(bits_per_sample=3).quantize(np.arange(4.0))

    def test_invalid_bits_per_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiBitQuantizer(bits_per_sample=0)


class TestGuardBand:
    def test_alpha_zero_keeps_everything(self):
        result = GuardBandQuantizer(alpha=0.0).quantize(RNG.normal(size=100))
        assert result.efficiency == 1.0

    def test_alpha_increases_drops(self):
        window = RNG.normal(size=2000)
        narrow = GuardBandQuantizer(alpha=0.4).quantize(window)
        wide = GuardBandQuantizer(alpha=1.2).quantize(window)
        assert wide.n_kept < narrow.n_kept

    def test_bits_match_sides_of_band(self):
        window = np.array([-5.0, -4.0, 0.1, 4.0, 5.0])
        result = GuardBandQuantizer(alpha=0.5).quantize(window)
        # The middle sample sits in the guard band.
        assert not result.kept[2]
        np.testing.assert_array_equal(result.bits, [0, 0, 1, 1])

    def test_paper_alpha_setting(self):
        result = GuardBandQuantizer(alpha=0.8).quantize(RNG.normal(size=1000))
        # ~31% of a Gaussian lies within +/-0.4 sigma.
        assert 0.55 < result.efficiency < 0.8


class TestConsensusAndMask:
    def test_consensus_is_intersection(self):
        a = np.array([True, True, False])
        b = np.array([True, False, False])
        np.testing.assert_array_equal(consensus_mask(a, b), [True, False, False])

    def test_quantize_with_mask_subsets_bits(self):
        quantizer = GuardBandQuantizer(alpha=0.8)
        window = RNG.normal(size=200)
        result = quantizer.quantize(window)
        # Agree on a strictly smaller mask.
        keep = result.kept.copy()
        keep[np.flatnonzero(keep)[:5]] = False
        bits = quantizer.quantize_with_mask(window, keep)
        assert bits.size == result.bits.size - 5

    def test_mask_superset_rejected(self):
        quantizer = GuardBandQuantizer(alpha=0.8)
        window = RNG.normal(size=50)
        result = quantizer.quantize(window)
        bad = np.ones_like(result.kept)
        if result.kept.all():
            pytest.skip("no dropped samples to violate")
        with pytest.raises(ConfigurationError):
            quantizer.quantize_with_mask(window, bad)

    def test_result_validation(self):
        with pytest.raises(ConfigurationError):
            QuantizationResult(
                bits=np.zeros(3, dtype=np.uint8),
                kept=np.ones(5, dtype=bool),
                bits_per_sample=1,
            )

    @given(st.integers(min_value=16, max_value=200), st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_identical_windows_agree_perfectly(self, n, seed):
        window = np.random.default_rng(seed).normal(size=n)
        quantizer = MultiBitQuantizer(bits_per_sample=2, guard_band_fraction=0.2)
        a = quantizer.quantize(window)
        b = quantizer.quantize(window.copy())
        np.testing.assert_array_equal(a.bits, b.bits)
        np.testing.assert_array_equal(a.kept, b.kept)
