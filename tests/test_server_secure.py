"""The server's encrypted data phase, end to end over loopback.

Each scenario stands up a real server and drives the secure record
protocol from a real client: echo round-trips under the derived keys,
tampering answered by taxonomized ``secure-error`` frames with nothing
released, budget and protocol violations ending in structured
``channel-closed`` frames, and admission shedding honored by the client's
seeded retry-backoff until the slot frees up.

Establishment success depends on the episode's channel realization, so
scenarios that need a live channel search a small episode space and fail
loudly if none succeeds.
"""

import asyncio

import pytest

from repro.server import (
    DeviceClient,
    Endpoint,
    KeyEstablishmentServer,
    ModelRegistry,
    ServerConfig,
    run_behavior,
)
from repro.server.client import channel_from_frame

ROUNDS = 48

#: Episodes tried per scenario before giving up on establishment (the
#: per-episode success rate at these tiny round counts is ~20%).
SEARCH = 16


def fast_config(**overrides) -> ServerConfig:
    """Loopback server knobs with test-sized liveness budgets."""
    defaults = dict(
        port=0,
        hello_timeout_s=1.0,
        idle_timeout_s=5.0,
        session_deadline_s=30.0,
        tick_interval_s=0.01,
        max_batch=8,
        queue_limit=8,
        max_sessions=32,
        retry_after_s=0.25,
        reap_interval_s=0.1,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def run_scenario(pipeline, config, scenario):
    """Start a server, run ``scenario(server, endpoint)``, always drain."""

    async def body():
        server = KeyEstablishmentServer(ModelRegistry(pipeline), config)
        await server.start()
        endpoint = Endpoint(port=server.bound_port)
        try:
            result = await scenario(server, endpoint)
        finally:
            if not server.closed:
                await server.drain(timeout=10.0)
        assert server.active_sessions == 0  # no leak, ever
        return result, server

    return asyncio.run(body())


async def open_data_session(endpoint, tag: str):
    """A connected client whose establishment produced a live channel.

    Returns ``(client, result_frame)``; searches episodes until one
    establishment succeeds (the channel frame is only attached to
    successful verdicts).
    """
    for i in range(SEARCH):
        client = DeviceClient(
            endpoint,
            f"dev-{tag}-{i}",
            episode=f"srv-{tag}-{i}",
            rounds=ROUNDS,
            timeout_s=30.0,
            data=True,
        )
        await client.connect()
        await client.hello()
        await client.send({"type": "start"})
        verdict = await client.recv()
        if (
            verdict is not None
            and verdict.get("type") == "result"
            and "channel" in verdict
        ):
            return client, verdict
        await client.close()
    pytest.fail(f"no successful establishment in {SEARCH} episodes ({tag})")


class TestSecureEcho:
    def test_echo_round_trip_through_the_behavior_client(self, tiny_pipeline):
        async def scenario(server, endpoint):
            for i in range(SEARCH):
                outcome = await run_behavior(
                    endpoint,
                    "secure-echo",
                    f"dev-echo-{i}",
                    episode=f"srv-echo-{i}",
                    rounds=ROUNDS,
                )
                assert outcome.kind in ("result", "abort")
                if server.metrics.secure_echoed >= 3:
                    return outcome
            pytest.fail("no episode produced a live channel for the echo")

        outcome, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        # The behavior client verified each echoed plaintext itself; a
        # continuity violation would have come back as a structured
        # payload-invariant error instead of a result.
        assert outcome.kind == "result"
        assert server.metrics.channels_opened >= 1
        assert server.metrics.secure_records >= 3
        assert server.metrics.secure_echoed >= 3
        snapshot = server.metrics.snapshot()
        assert snapshot["channels_opened"] == server.metrics.channels_opened
        assert snapshot["secure_echoed"] == server.metrics.secure_echoed

    def test_result_channel_frame_never_leaks_without_request(
        self, tiny_pipeline
    ):
        async def scenario(server, endpoint):
            for i in range(SEARCH):
                outcome = await run_behavior(
                    endpoint,
                    "normal",
                    f"dev-plain-{i}",
                    episode=f"srv-plain-{i}",
                    rounds=ROUNDS,
                )
                assert "channel" not in outcome.frame
            return True

        ok, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert ok
        assert server.metrics.channels_opened == 0


class TestTamperDetection:
    def test_tampered_record_gets_secure_error_and_no_plaintext(
        self, tiny_pipeline
    ):
        async def scenario(server, endpoint):
            for i in range(SEARCH):
                outcome = await run_behavior(
                    endpoint,
                    "secure-tamper",
                    f"dev-tamper-{i}",
                    episode=f"srv-tamper-{i}",
                    rounds=ROUNDS,
                )
                # The behavior client flags any plaintext release or
                # missing taxonomy itself via a payload-invariant error.
                assert outcome.kind in ("result", "abort"), outcome.detail
                if server.metrics.secure_open_failures.get("auth-failed", 0):
                    return outcome
            pytest.fail("no episode produced a live channel for the tamper")

        outcome, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert outcome.kind == "result"
        assert server.metrics.secure_open_failures["auth-failed"] >= 1
        # Tampering alone must not close the channel or crash a session.
        assert server.metrics.channels_closed == {}

    def test_decrypt_budget_closes_the_channel_structurally(self, tiny_pipeline):
        config = fast_config(secure_decrypt_budget=2)

        async def scenario(server, endpoint):
            client, _ = await open_data_session(endpoint, "budget")
            try:
                frames = []
                for junk in ("zz-not-hex", "00"):  # both open as damage
                    await client.send(
                        {
                            "type": "secure",
                            "session_id": client.session_id,
                            "record": junk,
                        }
                    )
                    frames.append(await client.recv())
                frames.append(await client.recv())  # the closing frame
                return frames
            finally:
                await client.close()

        frames, server = run_scenario(tiny_pipeline, config, scenario)
        first, second, closed = frames
        assert first["type"] == "secure-error"
        assert first["failure"] == "record-truncated"
        assert "record" not in first  # no payload of any kind on failure
        assert second["type"] == "secure-error"
        assert closed["type"] == "channel-closed"
        assert closed["reason"] == "decrypt-budget-exceeded"
        assert server.metrics.channels_closed == {"decrypt-budget-exceeded": 1}

    def test_record_past_the_nonce_bound_is_rejected(self, tiny_pipeline):
        config = fast_config(secure_max_records=4)

        async def scenario(server, endpoint):
            client, verdict = await open_data_session(endpoint, "bound")
            try:
                channel = channel_from_frame(verdict["channel"])
                assert channel.max_sequence == 4
                wire = channel.seal(b"too far ahead", force_sequence=9)
                await client.send(
                    {
                        "type": "secure",
                        "session_id": client.session_id,
                        "record": wire.hex(),
                    }
                )
                return await client.recv()
            finally:
                await client.close()

        answer, _ = run_scenario(tiny_pipeline, config, scenario)
        assert answer["type"] == "secure-error"
        assert answer["failure"] == "nonce-exhausted"


class TestProtocolDiscipline:
    def test_secure_frame_before_establishment_aborts(self, tiny_pipeline):
        async def scenario(server, endpoint):
            client = DeviceClient(endpoint, "dev-early", timeout_s=10.0)
            await client.connect()
            try:
                await client.hello()
                await client.send(
                    {
                        "type": "secure",
                        "session_id": client.session_id,
                        "record": "00",
                    }
                )
                return await client.recv()
            finally:
                await client.close()

        answer, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert answer["type"] == "abort"
        assert answer["reason"] == "secure-channel-failed"
        assert server.metrics.aborted.get("secure-channel-failed") == 1

    def test_non_secure_frame_in_data_phase_closes_as_protocol_error(
        self, tiny_pipeline
    ):
        async def scenario(server, endpoint):
            client, _ = await open_data_session(endpoint, "proto")
            try:
                await client.send({"type": "start"})  # illegal mid-data
                return await client.recv()
            finally:
                await client.close()

        answer, server = run_scenario(tiny_pipeline, fast_config(), scenario)
        assert answer["type"] == "channel-closed"
        assert answer["reason"] == "protocol-error"
        assert server.metrics.channels_closed == {"protocol-error": 1}


class TestBatchedDrain:
    def test_flooded_records_coalesce_into_batched_passes(self, tiny_pipeline):
        n_records = 12
        config = fast_config(secure_batch_max=8)

        async def scenario(server, endpoint):
            client, verdict = await open_data_session(endpoint, "flood")
            try:
                channel = channel_from_frame(verdict["channel"])
                payloads = [f"flood-{i}".encode() for i in range(n_records)]
                # All records go out back-to-back before any echo is
                # read, so the server's drain finds frames already
                # waiting in the transport.
                for record in channel.seal_records(payloads):
                    await client.send(
                        {"type": "secure", "record": record.hex()}
                    )
                for plaintext in payloads:
                    reply = await client.recv()
                    assert reply["type"] == "secure"
                    opened = channel.open(
                        bytes.fromhex(str(reply.get("record", "")))
                    )
                    assert opened.ok and opened.plaintext == plaintext
                await client.send({"type": "bye"})
            finally:
                await client.close()
            return True

        ok, server = run_scenario(tiny_pipeline, config, scenario)
        assert ok
        metrics = server.metrics
        assert metrics.secure_records == n_records
        assert metrics.secure_echoed == n_records
        # Every record went through a drain pass, and at least one pass
        # coalesced more than one record (the flood arrived before the
        # first echo was written); the cap bounds any single pass.
        assert 1 <= metrics.secure_batches < n_records
        assert 2 <= metrics.secure_batch_records_max <= 8
        snapshot = metrics.snapshot()
        assert snapshot["secure_batches"] == metrics.secure_batches
        assert (
            snapshot["secure_batch_records_max"]
            == metrics.secure_batch_records_max
        )


class TestRestartEpochFloor:
    def test_resumed_channel_rejects_every_pre_crash_record(
        self, tiny_pipeline, tmp_path
    ):
        """Crash mid-encrypted-echo, restart, resume: the re-derived
        channel lives at the journaled epoch + 1, so every record sealed
        before the crash fails authentication -- no pre-crash
        ``(epoch, direction, sequence)`` tuple ever verifies again --
        while fresh records under the bumped epoch round-trip."""
        journal_dir = tmp_path / "wal"
        config = fast_config(
            journal_dir=str(journal_dir), journal_fsync="always"
        )

        async def body():
            server = KeyEstablishmentServer(ModelRegistry(tiny_pipeline), config)
            await server.start()
            endpoint = Endpoint(port=server.bound_port)
            client, verdict = await open_data_session(endpoint, "restart")
            token = client.resume_token
            assert token
            assert verdict["channel"]["epoch"] == 0
            channel = channel_from_frame(verdict["channel"])
            payloads = [f"pre-crash-{i}".encode() for i in range(3)]
            pre_crash = list(channel.seal_records(payloads))
            for record in pre_crash:
                await client.send({"type": "secure", "record": record.hex()})
            # Read only part of the echo burst, then vanish: the crash
            # lands mid-encrypted-echo, with the channel context and the
            # verdict already journaled.
            for _ in range(2):
                reply = await client.recv()
                assert reply["type"] == "secure"
            await client.close()
            await asyncio.sleep(0.3)  # the reaper retires the detachee
            await server.stop()

            restarted = KeyEstablishmentServer(
                ModelRegistry(tiny_pipeline), config
            )
            await restarted.start()
            endpoint = Endpoint(port=restarted.bound_port)
            resumer = DeviceClient(
                endpoint, client.session_id, timeout_s=30.0, resume=token
            )
            try:
                await resumer.connect()
                welcome = await resumer.hello()
                assert welcome["type"] == "welcome"
                assert welcome["resumed"] is True
                redelivered = await resumer.recv()
                assert redelivered["type"] == "result"
                assert redelivered["resumed"] is True
                assert redelivered["key_digest"] == verdict["key_digest"]
                assert redelivered["channel"]["epoch"] == 1
                fresh_channel = channel_from_frame(redelivered["channel"])
                # Every pre-crash record replays as a structured epoch
                # mismatch: the wire epoch names keys the resumed
                # channel no longer holds, and nothing decrypts.
                for record in pre_crash:
                    await resumer.send(
                        {"type": "secure", "record": record.hex()}
                    )
                    reply = await resumer.recv()
                    assert reply["type"] == "secure-error"
                    assert reply["failure"] == "epoch-mismatch"
                    assert "record" not in reply  # no plaintext, ever
                # The bumped-epoch channel itself is live.
                await resumer.send(
                    {
                        "type": "secure",
                        "record": fresh_channel.seal(b"post-crash").hex(),
                    }
                )
                echo = await resumer.recv()
                assert echo["type"] == "secure"
                opened = fresh_channel.open(
                    bytes.fromhex(str(echo["record"]))
                )
                assert opened.ok and opened.plaintext == b"post-crash"
                await resumer.send({"type": "bye"})
            finally:
                await resumer.close()
                await restarted.drain(timeout=10.0)
            return restarted

        restarted = asyncio.run(body())
        assert restarted.metrics.recoveries == 1
        assert restarted.metrics.resumed_sessions == 1
        assert restarted.metrics.secure_open_failures["epoch-mismatch"] == 3
        # Tampered/pre-crash replays never close a healthy channel.
        assert restarted.metrics.channels_closed == {}


class TestShedThenAdmit:
    def test_shed_client_backs_off_and_is_admitted(self, tiny_pipeline):
        config = fast_config(max_sessions=1, retry_after_s=0.1)

        async def scenario(server, endpoint):
            parked = DeviceClient(endpoint, "dev-parked", timeout_s=10.0)
            await parked.connect()
            welcome = await parked.hello()  # occupies the only slot
            assert welcome["type"] == "welcome"
            retrying = asyncio.create_task(
                run_behavior(
                    endpoint,
                    "normal-retry",
                    "dev-retry",
                    episode="srv-shed",
                    rounds=ROUNDS,
                )
            )
            await asyncio.sleep(0.05)  # let the first attempt be shed
            await parked.close()  # free the slot during the backoff
            return await retrying

        outcome, server = run_scenario(tiny_pipeline, config, scenario)
        # The client was shed at least once, honored the structured
        # retry-after with its capped seeded backoff, reconnected and
        # completed a full establishment.
        assert outcome.kind == "result"
        assert outcome.retries >= 1
        assert server.metrics.rejected_overload >= 1
        assert server.metrics.completed >= 1

    def test_retries_exhausted_is_still_structured(self, tiny_pipeline):
        # The parked client never leaves: the retrying client spends its
        # budget and reports the rejection, not an exception or a hang.
        config = fast_config(max_sessions=1, retry_after_s=0.05)

        async def scenario(server, endpoint):
            parked = DeviceClient(endpoint, "dev-parked", timeout_s=10.0)
            await parked.connect()
            await parked.hello()
            try:
                return await run_behavior(
                    endpoint, "normal-retry", "dev-stubborn", timeout_s=10.0
                )
            finally:
                await parked.close()

        outcome, server = run_scenario(tiny_pipeline, config, scenario)
        assert outcome.kind == "rejected"
        assert outcome.frame["reason"] == "server-overloaded"
        assert outcome.retries == 2  # the behavior's full retry budget
        assert server.metrics.rejected_overload >= 3
