"""Unit tests for the benchmark regression gate itself.

``scripts/check_bench_regression.py`` is what keeps the perf trajectory
honest in CI, so its comparison semantics (missing entries, new entries,
regressions, improvements, ungated absolute trackers) are pinned here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def gate():
    """The regression-gate module, imported from scripts/."""
    spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_bench(path: Path, entries: dict) -> Path:
    """Write a BENCH_*.json payload in the benchmarks' schema."""
    path.write_text(json.dumps({"entries": entries}))
    return path


def run_gate(gate, tmp_path, current, baseline, tolerance=None):
    """Invoke the gate's main() on two in-memory benchmark payloads."""
    argv = [
        "--current",
        str(write_bench(tmp_path / "current.json", current)),
        "--baseline",
        str(write_bench(tmp_path / "baseline.json", baseline)),
    ]
    if tolerance is not None:
        argv += ["--tolerance", str(tolerance)]
    return gate.main(argv)


ENTRY = {"before_s": 1.0, "after_s": 0.25, "speedup": 4.0}


class TestGateSemantics:
    def test_identical_results_pass(self, gate, tmp_path):
        assert run_gate(gate, tmp_path, {"k": dict(ENTRY)}, {"k": dict(ENTRY)}) == 0

    def test_missing_entry_fails(self, gate, tmp_path):
        assert run_gate(gate, tmp_path, {}, {"k": dict(ENTRY)}) == 1

    def test_new_current_entry_is_allowed(self, gate, tmp_path):
        # A freshly added benchmark has no baseline yet; it must not block.
        current = {"k": dict(ENTRY), "brand-new": dict(ENTRY)}
        assert run_gate(gate, tmp_path, current, {"k": dict(ENTRY)}) == 0

    def test_regression_past_tolerance_fails(self, gate, tmp_path):
        slow = {"before_s": 1.0, "after_s": 0.5, "speedup": 2.0}
        assert run_gate(gate, tmp_path, {"k": slow}, {"k": dict(ENTRY)}) == 1

    def test_regression_within_tolerance_passes(self, gate, tmp_path):
        slightly_slow = {"before_s": 1.0, "after_s": 0.3, "speedup": 3.3}
        assert (
            run_gate(gate, tmp_path, {"k": slightly_slow}, {"k": dict(ENTRY)}, 0.25)
            == 0
        )

    def test_improvement_passes(self, gate, tmp_path):
        faster = {"before_s": 1.0, "after_s": 0.1, "speedup": 10.0}
        assert run_gate(gate, tmp_path, {"k": faster}, {"k": dict(ENTRY)}) == 0

    def test_absolute_tracker_never_gates(self, gate, tmp_path):
        # speedup=None entries track absolute cost; even a big slowdown
        # must not fail the gate.
        base = {"k": {"before_s": None, "after_s": 0.5, "speedup": None}}
        cur = {"k": {"before_s": None, "after_s": 50.0, "speedup": None}}
        assert run_gate(gate, tmp_path, cur, base) == 0

    def test_lost_speedup_fails(self, gate, tmp_path):
        # Baseline has a gated speedup but the current run recorded none:
        # that silently un-gates the entry, so it must fail loudly.
        cur = {"k": {"before_s": None, "after_s": 0.25, "speedup": None}}
        assert run_gate(gate, tmp_path, cur, {"k": dict(ENTRY)}) == 1

    def test_tolerance_flag_respected(self, gate, tmp_path):
        slow = {"before_s": 1.0, "after_s": 0.5, "speedup": 2.0}
        assert run_gate(gate, tmp_path, {"k": slow}, {"k": dict(ENTRY)}, 0.6) == 0
        assert run_gate(gate, tmp_path, {"k": slow}, {"k": dict(ENTRY)}, 0.4) == 1


class TestGateInputs:
    """A defective gate input must fail the gate, never skip or crash it."""

    def test_missing_current_file_fails_cleanly(self, gate, tmp_path):
        baseline = write_bench(tmp_path / "baseline.json", {"k": dict(ENTRY)})
        argv = [
            "--current", str(tmp_path / "does-not-exist.json"),
            "--baseline", str(baseline),
        ]
        assert gate.main(argv) == 1

    def test_missing_baseline_file_fails_cleanly(self, gate, tmp_path):
        # The satellite scenario: a committed BENCH_*.json was deleted, so
        # CI has no baseline to stash.  That must be a failure, not a skip.
        current = write_bench(tmp_path / "current.json", {"k": dict(ENTRY)})
        argv = [
            "--current", str(current),
            "--baseline", str(tmp_path / "deleted-baseline.json"),
        ]
        assert gate.main(argv) == 1

    def test_empty_entries_fail_not_vacuously_pass(self, gate, tmp_path):
        # Zero entries on either side means nothing was gated; the old
        # behaviour reported "passed (0 entries)".
        assert run_gate(gate, tmp_path, {}, {}) == 1
        assert run_gate(gate, tmp_path, {"k": dict(ENTRY)}, {}) == 1

    def test_malformed_json_fails_cleanly(self, gate, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        baseline = write_bench(tmp_path / "baseline.json", {"k": dict(ENTRY)})
        assert gate.main(["--current", str(bad), "--baseline", str(baseline)]) == 1

    def test_schema_mismatch_fails_cleanly(self, gate, tmp_path):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"results": []}))
        baseline = write_bench(tmp_path / "baseline.json", {"k": dict(ENTRY)})
        assert gate.main(["--current", str(wrong), "--baseline", str(baseline)]) == 1
