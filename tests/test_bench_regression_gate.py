"""Unit tests for the benchmark regression gate itself.

``scripts/check_bench_regression.py`` is what keeps the perf trajectory
honest in CI, so its comparison semantics (missing entries, new entries,
regressions, improvements, ungated absolute trackers) are pinned here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def gate():
    """The regression-gate module, imported from scripts/."""
    spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_bench(path: Path, entries: dict) -> Path:
    """Write a BENCH_*.json payload in the benchmarks' schema."""
    path.write_text(json.dumps({"entries": entries}))
    return path


def run_gate(gate, tmp_path, current, baseline, tolerance=None):
    """Invoke the gate's main() on two in-memory benchmark payloads."""
    argv = [
        "--current",
        str(write_bench(tmp_path / "current.json", current)),
        "--baseline",
        str(write_bench(tmp_path / "baseline.json", baseline)),
    ]
    if tolerance is not None:
        argv += ["--tolerance", str(tolerance)]
    return gate.main(argv)


ENTRY = {"before_s": 1.0, "after_s": 0.25, "speedup": 4.0}


class TestGateSemantics:
    def test_identical_results_pass(self, gate, tmp_path):
        assert run_gate(gate, tmp_path, {"k": dict(ENTRY)}, {"k": dict(ENTRY)}) == 0

    def test_missing_entry_fails(self, gate, tmp_path):
        assert run_gate(gate, tmp_path, {}, {"k": dict(ENTRY)}) == 1

    def test_new_current_entry_is_allowed(self, gate, tmp_path):
        # A freshly added benchmark has no baseline yet; it must not block.
        current = {"k": dict(ENTRY), "brand-new": dict(ENTRY)}
        assert run_gate(gate, tmp_path, current, {"k": dict(ENTRY)}) == 0

    def test_regression_past_tolerance_fails(self, gate, tmp_path):
        slow = {"before_s": 1.0, "after_s": 0.5, "speedup": 2.0}
        assert run_gate(gate, tmp_path, {"k": slow}, {"k": dict(ENTRY)}) == 1

    def test_regression_within_tolerance_passes(self, gate, tmp_path):
        slightly_slow = {"before_s": 1.0, "after_s": 0.3, "speedup": 3.3}
        assert (
            run_gate(gate, tmp_path, {"k": slightly_slow}, {"k": dict(ENTRY)}, 0.25)
            == 0
        )

    def test_improvement_passes(self, gate, tmp_path):
        faster = {"before_s": 1.0, "after_s": 0.1, "speedup": 10.0}
        assert run_gate(gate, tmp_path, {"k": faster}, {"k": dict(ENTRY)}) == 0

    def test_absolute_tracker_never_gates(self, gate, tmp_path):
        # speedup=None entries track absolute cost; even a big slowdown
        # must not fail the gate.
        base = {"k": {"before_s": None, "after_s": 0.5, "speedup": None}}
        cur = {"k": {"before_s": None, "after_s": 50.0, "speedup": None}}
        assert run_gate(gate, tmp_path, cur, base) == 0

    def test_lost_speedup_fails(self, gate, tmp_path):
        # Baseline has a gated speedup but the current run recorded none:
        # that silently un-gates the entry, so it must fail loudly.
        cur = {"k": {"before_s": None, "after_s": 0.25, "speedup": None}}
        assert run_gate(gate, tmp_path, cur, {"k": dict(ENTRY)}) == 1

    def test_tolerance_flag_respected(self, gate, tmp_path):
        slow = {"before_s": 1.0, "after_s": 0.5, "speedup": 2.0}
        assert run_gate(gate, tmp_path, {"k": slow}, {"k": dict(ENTRY)}, 0.6) == 0
        assert run_gate(gate, tmp_path, {"k": slow}, {"k": dict(ENTRY)}, 0.4) == 1


def phased_entry(before_s=1.0, after_s=0.25, speedup=4.0, **phases):
    """A gated entry with a per-phase breakdown (seconds)."""
    entry = {"before_s": before_s, "after_s": after_s, "speedup": speedup}
    entry["phases"] = dict(phases) if phases else {
        "probe": 0.2, "orchestrate": 0.04, "window": 0.001,
    }
    return entry


class TestPhaseGating:
    """Normalized per-phase cost gating on entries that record phases."""

    def test_identical_phases_pass(self, gate, tmp_path):
        assert run_gate(gate, tmp_path, {"k": phased_entry()}, {"k": phased_entry()}) == 0

    def test_phase_blowup_fails_despite_ok_speedup(self, gate, tmp_path):
        # Headline speedup unchanged, but orchestration tripled: the
        # per-phase gate must catch what the ratio gate cannot.
        cur = phased_entry(probe=0.2, orchestrate=0.12, window=0.001)
        assert run_gate(gate, tmp_path, {"k": cur}, {"k": phased_entry()}) == 1

    def test_phase_growth_within_tolerance_passes(self, gate, tmp_path):
        cur = phased_entry(probe=0.2, orchestrate=0.045, window=0.001)
        assert run_gate(gate, tmp_path, {"k": cur}, {"k": phased_entry()}, 0.25) == 0

    def test_subfloor_phase_is_not_gated(self, gate, tmp_path):
        # 'window' is 0.1% of before_s in the baseline -- timer noise.
        # Even a 20x blowup must not fail on its own.
        cur = phased_entry(probe=0.2, orchestrate=0.04, window=0.02)
        assert run_gate(gate, tmp_path, {"k": cur}, {"k": phased_entry()}) == 0

    def test_missing_phase_in_current_fails(self, gate, tmp_path):
        cur = phased_entry(probe=0.2, window=0.001)  # orchestrate vanished
        assert run_gate(gate, tmp_path, {"k": cur}, {"k": phased_entry()}) == 1

    def test_lost_breakdown_fails(self, gate, tmp_path):
        cur = dict(ENTRY)  # no phases at all
        assert run_gate(gate, tmp_path, {"k": cur}, {"k": phased_entry()}) == 1

    def test_baseline_without_phases_is_not_phase_gated(self, gate, tmp_path):
        cur = phased_entry(probe=5.0, orchestrate=5.0)
        assert run_gate(gate, tmp_path, {"k": cur}, {"k": dict(ENTRY)}) == 0

    def test_absolute_tracker_phases_never_gate(self, gate, tmp_path):
        base = {"k": {"before_s": None, "after_s": 0.5, "speedup": None,
                      "phases": {"probe": 0.4}}}
        cur = {"k": {"before_s": None, "after_s": 50.0, "speedup": None,
                     "phases": {"probe": 49.0}}}
        assert run_gate(gate, tmp_path, cur, base) == 0

    def test_normalization_transfers_across_machine_speed(self, gate, tmp_path):
        # A uniformly 3x slower machine scales before_s and every phase
        # alike; the normalized shares are unchanged and must pass.
        cur = phased_entry(
            before_s=3.0, after_s=0.75,
            probe=0.6, orchestrate=0.12, window=0.003,
        )
        assert run_gate(gate, tmp_path, {"k": cur}, {"k": phased_entry()}) == 0

    def test_phase_floor_flag_respected(self, gate, tmp_path):
        # Raising the floor above orchestrate's 4% share un-gates it.
        cur = phased_entry(probe=0.2, orchestrate=0.12, window=0.001)
        argv = [
            "--current",
            str(write_bench(tmp_path / "cur.json", {"k": cur})),
            "--baseline",
            str(write_bench(tmp_path / "base.json", {"k": phased_entry()})),
            "--phase-floor", "0.1",
        ]
        assert gate.main(argv) == 0


class TestGateInputs:
    """A defective gate input must fail the gate, never skip or crash it."""

    def test_missing_current_file_fails_cleanly(self, gate, tmp_path):
        baseline = write_bench(tmp_path / "baseline.json", {"k": dict(ENTRY)})
        argv = [
            "--current", str(tmp_path / "does-not-exist.json"),
            "--baseline", str(baseline),
        ]
        assert gate.main(argv) == 1

    def test_missing_baseline_file_fails_cleanly(self, gate, tmp_path):
        # The satellite scenario: a committed BENCH_*.json was deleted, so
        # CI has no baseline to stash.  That must be a failure, not a skip.
        current = write_bench(tmp_path / "current.json", {"k": dict(ENTRY)})
        argv = [
            "--current", str(current),
            "--baseline", str(tmp_path / "deleted-baseline.json"),
        ]
        assert gate.main(argv) == 1

    def test_empty_entries_fail_not_vacuously_pass(self, gate, tmp_path):
        # Zero entries on either side means nothing was gated; the old
        # behaviour reported "passed (0 entries)".
        assert run_gate(gate, tmp_path, {}, {}) == 1
        assert run_gate(gate, tmp_path, {"k": dict(ENTRY)}, {}) == 1

    def test_malformed_json_fails_cleanly(self, gate, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        baseline = write_bench(tmp_path / "baseline.json", {"k": dict(ENTRY)})
        assert gate.main(["--current", str(bad), "--baseline", str(baseline)]) == 1

    def test_schema_mismatch_fails_cleanly(self, gate, tmp_path):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"results": []}))
        baseline = write_bench(tmp_path / "baseline.json", {"k": dict(ENTRY)})
        assert gate.main(["--current", str(wrong), "--baseline", str(baseline)]) == 1
