"""Tests for mobility models, reciprocal channel and scenario presets."""

import numpy as np
import pytest

from repro.channel.mobility import (
    RelativeMotion,
    StaticTrajectory,
    StopAndGoTrajectory,
    StraightLineTrajectory,
)
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.reciprocity import ReciprocalChannel
from repro.channel.scenario import (
    ALL_SCENARIOS,
    Environment,
    LinkType,
    ScenarioName,
    scenario_config,
)
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedSequenceFactory


class TestTrajectories:
    def test_static_never_moves(self):
        node = StaticTrajectory((3.0, 4.0))
        positions = node.position_m(np.array([0.0, 10.0, 100.0]))
        np.testing.assert_array_equal(positions, [[3, 4]] * 3)
        assert np.all(node.speed_m_s(np.array([0.0, 5.0])) == 0)

    def test_straight_line_speed_and_direction(self):
        node = StraightLineTrajectory((0.0, 0.0), speed_m_s=10.0, heading_deg=90.0)
        pos = node.position_m(np.array([2.0]))
        np.testing.assert_allclose(pos, [[0.0, 20.0]], atol=1e-9)
        assert node.speed_m_s(np.array([1.0]))[0] == pytest.approx(10.0)

    def test_stop_and_go_is_deterministic(self):
        times = np.linspace(0, 300, 100)
        a = StopAndGoTrajectory((0, 0), 15.0, seed=5).position_m(times)
        b = StopAndGoTrajectory((0, 0), 15.0, seed=5).position_m(times)
        np.testing.assert_array_equal(a, b)

    def test_stop_and_go_monotone_displacement(self):
        node = StopAndGoTrajectory((0, 0), 15.0, seed=6)
        times = np.linspace(0, 600, 500)
        xs = node.position_m(times)[:, 0]
        assert np.all(np.diff(xs) >= -1e-9)

    def test_stop_and_go_speed_bounded(self):
        node = StopAndGoTrajectory((0, 0), 15.0, seed=7)
        speeds = node.speed_m_s(np.linspace(0, 600, 500))
        assert np.all(speeds <= 15.0 + 1e-9)
        assert np.all(speeds >= 0)

    def test_stop_and_go_negative_time_rejected(self):
        node = StopAndGoTrajectory((0, 0), 15.0, seed=8)
        with pytest.raises(ConfigurationError):
            node.position_m(np.array([-1.0]))


class TestRelativeMotion:
    def test_distance_between_static_nodes(self):
        motion = RelativeMotion(StaticTrajectory((0, 0)), StaticTrajectory((30, 40)))
        assert motion.distance_m(np.array([0.0]))[0] == pytest.approx(50.0)

    def test_relative_speed_of_opposing_vehicles_adds(self):
        a = StraightLineTrajectory((0, 0), 10.0, heading_deg=0.0)
        b = StraightLineTrajectory((100, 0), 5.0, heading_deg=180.0)
        motion = RelativeMotion(a, b)
        assert motion.relative_speed_m_s(np.array([1.0]))[0] == pytest.approx(15.0)

    def test_same_velocity_convoy_has_zero_relative_motion(self):
        a = StraightLineTrajectory((0, 0), 20.0)
        b = StraightLineTrajectory((50, 0), 20.0)
        motion = RelativeMotion(a, b)
        assert motion.relative_displacement_m(100.0) == pytest.approx(0.0, abs=1e-6)

    def test_displacement_integral_for_constant_speed(self):
        motion = RelativeMotion(
            StraightLineTrajectory((0, 0), 12.0), StaticTrajectory((500, 0))
        )
        assert motion.relative_displacement_m(10.0) == pytest.approx(120.0, rel=1e-3)

    def test_displacement_is_monotone(self):
        motion = RelativeMotion(
            StopAndGoTrajectory((0, 0), 15.0, seed=1), StaticTrajectory((300, 0))
        )
        values = motion.relative_displacement_m(np.linspace(0, 200, 100))
        assert np.all(np.diff(values) >= -1e-9)


class TestReciprocalChannel:
    def _channel(self, seed=0):
        seeds = SeedSequenceFactory(seed)
        config = scenario_config(ScenarioName.V2I_RURAL)
        return config.build_channel(seeds)

    def test_gain_is_reciprocal_by_construction(self):
        channel = self._channel()
        times = np.linspace(0, 10, 20)
        np.testing.assert_array_equal(channel.path_gain_db(times), channel.path_gain_db(times))

    def test_gain_is_finite_and_negative(self):
        channel = self._channel()
        gains = channel.path_gain_db(np.linspace(0, 60, 100))
        assert np.all(np.isfinite(gains))
        assert np.all(gains < 0)  # km-scale links always attenuate

    def test_large_scale_excludes_fading(self):
        channel = self._channel()
        times = np.linspace(0, 60, 200)
        total = channel.path_gain_db(times)
        large = channel.large_scale_gain_db(times)
        assert np.std(total - large) > 0.5  # fading contributes variation

    def test_scalar_time_returns_scalar(self):
        channel = self._channel()
        assert isinstance(channel.path_gain_db(1.0), float)

    def test_pathloss_only_channel(self):
        motion = RelativeMotion(
            StraightLineTrajectory((0, 0), 10.0), StaticTrajectory((1000, 0))
        )
        channel = ReciprocalChannel(motion, LogDistancePathLoss())
        gains = channel.path_gain_db(np.array([0.0, 1.0]))
        assert gains[0] < gains[1]  # moving toward Bob reduces loss


class TestScenarios:
    def test_four_presets(self):
        assert len(ALL_SCENARIOS) == 4

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_presets_build(self, name):
        config = scenario_config(name)
        seeds = SeedSequenceFactory(11)
        channel = config.build_channel(seeds)
        gains = channel.path_gain_db(np.linspace(0, 30, 50))
        assert np.all(np.isfinite(gains))

    def test_urban_is_rayleigh_rural_is_rician(self):
        assert scenario_config(ScenarioName.V2V_URBAN).rician_k == 0.0
        assert scenario_config(ScenarioName.V2V_RURAL).rician_k > 0.0

    def test_v2i_has_static_bob(self):
        config = scenario_config(ScenarioName.V2I_URBAN)
        seeds = SeedSequenceFactory(0)
        _, bob = config.build_trajectories(seeds)
        assert np.all(bob.speed_m_s(np.array([0.0, 10.0])) == 0)

    def test_v2v_bob_moves(self):
        config = scenario_config(ScenarioName.V2V_RURAL)
        seeds = SeedSequenceFactory(0)
        _, bob = config.build_trajectories(seeds)
        assert bob.speed_m_s(np.array([1.0]))[0] > 0

    def test_name_properties(self):
        assert ScenarioName.V2I_URBAN.environment is Environment.URBAN
        assert ScenarioName.V2V_RURAL.environment is Environment.RURAL
        assert ScenarioName.V2I_RURAL.link_type is LinkType.V2I
        assert ScenarioName.V2V_URBAN.link_type is LinkType.V2V

    def test_with_speeds_override(self):
        config = scenario_config(ScenarioName.V2I_URBAN).with_speeds(30.0)
        assert config.alice_speed_kmh == 30.0
        assert config.bob_speed_kmh == 0.0

    def test_v2i_with_moving_bob_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_config(ScenarioName.V2I_URBAN).with_speeds(30.0, 10.0)

    def test_scenario_wavelength_matches_434mhz(self):
        config = scenario_config(ScenarioName.V2I_URBAN)
        assert config.wavelength_m == pytest.approx(0.6912, abs=1e-3)
