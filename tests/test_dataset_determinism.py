"""KeyGenDataset generation determinism across execution strategies.

The training dataset must be a pure function of the pipeline's root
seed: the probing execution path (per-round loop vs vectorized fast
path) and the degree of collection parallelism (``jobs``) are
implementation details that may not leak a single bit into the data.
"""

import numpy as np

from tests.conftest import make_tiny_pipeline


def dataset_bytes(dataset):
    """A canonical byte serialization of every array in the dataset."""
    return (
        np.ascontiguousarray(dataset.alice).tobytes()
        + np.ascontiguousarray(dataset.bob).tobytes()
        + np.ascontiguousarray(dataset.alice_raw).tobytes()
        + np.ascontiguousarray(dataset.bob_raw).tobytes()
    )


class TestProbingPathDeterminism:
    def test_loop_and_vectorized_probing_give_identical_datasets(self):
        fast = make_tiny_pipeline(seed=23).collect_dataset(n_episodes=3)
        # Fresh pipeline, same seed, but every episode probed through the
        # frozen per-round loop.
        slow_pipeline = make_tiny_pipeline(seed=23)
        from repro.probing.dataset import KeyGenDataset, build_dataset
        from repro.probing.features import arrssi_sequences

        parts = []
        for index in range(3):
            trace = slow_pipeline.collect_trace(f"train-{index}", fast_path=False)
            bob_seq, alice_seq = arrssi_sequences(
                trace, slow_pipeline.config.feature_config
            )
            if len(alice_seq) < slow_pipeline.config.seq_len:
                continue
            parts.append(
                build_dataset(
                    alice_seq, bob_seq, seq_len=slow_pipeline.config.seq_len
                )
            )
        slow = KeyGenDataset(
            alice=np.concatenate([p.alice for p in parts]),
            bob=np.concatenate([p.bob for p in parts]),
            alice_raw=np.concatenate([p.alice_raw for p in parts]),
            bob_raw=np.concatenate([p.bob_raw for p in parts]),
        )
        assert dataset_bytes(fast) == dataset_bytes(slow)


class TestParallelCollectionDeterminism:
    def test_jobs_1_and_jobs_2_byte_identical(self):
        serial = make_tiny_pipeline(seed=29).collect_dataset(n_episodes=4, jobs=1)
        parallel = make_tiny_pipeline(seed=29).collect_dataset(n_episodes=4, jobs=2)
        assert dataset_bytes(serial) == dataset_bytes(parallel)

    def test_repeat_collection_byte_identical(self):
        first = make_tiny_pipeline(seed=31).collect_dataset(n_episodes=2)
        second = make_tiny_pipeline(seed=31).collect_dataset(n_episodes=2)
        assert dataset_bytes(first) == dataset_bytes(second)
