"""Failure-injection and edge-case tests across the stack."""

import dataclasses

import numpy as np
import pytest

from repro.channel.mobility import RelativeMotion, StaticTrajectory
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.reciprocity import ReciprocalChannel
from repro.channel.scenario import ScenarioName, scenario_config
from repro.exceptions import ConfigurationError, ReproError
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory
from tests.conftest import make_tiny_pipeline


class TestPacketLoss:
    def _long_range_protocol(self, distance_km: float):
        # A static link far beyond the SF12 budget.
        motion = RelativeMotion(
            StaticTrajectory((0, 0)), StaticTrajectory((distance_km * 1000, 0))
        )
        channel = ReciprocalChannel(motion, LogDistancePathLoss(exponent=3.5))
        return ProbingProtocol(
            channel, LoRaPHYConfig(), DRAGINO_LORA_SHIELD, DRAGINO_LORA_SHIELD
        )

    def test_out_of_range_rounds_marked_invalid(self):
        protocol = self._long_range_protocol(distance_km=500.0)
        trace = protocol.run(4, SeedSequenceFactory(0))
        assert trace.n_valid_rounds == 0

    def test_valid_only_empties_out_of_range_trace(self):
        protocol = self._long_range_protocol(distance_km=500.0)
        trace = protocol.run(4, SeedSequenceFactory(0))
        assert trace.valid_only().n_rounds == 0

    def test_in_range_link_keeps_all_rounds(self):
        protocol = self._long_range_protocol(distance_km=1.0)
        trace = protocol.run(4, SeedSequenceFactory(0))
        assert trace.n_valid_rounds == 4


class TestSessionEdgeCases:
    def test_session_on_trace_without_a_full_window(self, tiny_pipeline):
        trace = tiny_pipeline.collect_trace("tiny-trace", n_rounds=4)
        result = tiny_pipeline.build_session().run(trace)
        assert result.n_blocks == 0
        assert result.final_key_alice is None
        assert not result.keys_match

    def test_session_requires_at_least_one_trace(self, tiny_pipeline):
        with pytest.raises(ConfigurationError):
            tiny_pipeline.build_session().run([])

    def test_establish_key_reports_zero_kgr_without_blocks(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(episode="no-blocks", n_rounds=4)
        assert outcome.key_generation_rate_bps == 0.0


class TestPipelineEdgeCases:
    def test_dead_link_scenario_raises_cleanly(self):
        pipeline = make_tiny_pipeline(seed=77)
        dead = dataclasses.replace(
            scenario_config(ScenarioName.V2I_RURAL),
            initial_distance_m=500_000.0,
            pathloss_exponent=3.5,
        )
        pipeline.config = dataclasses.replace(pipeline.config, scenario=dead)
        with pytest.raises(ReproError):
            pipeline.collect_dataset(n_episodes=2)

    def test_zero_episode_collection_rejected(self, tiny_pipeline):
        with pytest.raises(ConfigurationError):
            tiny_pipeline.collect_dataset(n_episodes=0)


class TestInterferenceInjection:
    def test_jammer_near_bob_degrades_session_agreement(self, tiny_pipeline):
        from repro.channel.interference import InterferenceSource

        clean_trace = tiny_pipeline.collect_trace("jam-clean", n_rounds=192)
        jammer = InterferenceSource(
            (tiny_pipeline.config.scenario.initial_distance_m + 15.0, 0.0),
            eirp_dbm=0.0,
            mean_on_s=0.4,
            mean_off_s=1.2,
            seed=9,
        )
        jammed_trace = tiny_pipeline.collect_trace(
            "jam-clean", n_rounds=192, interference=[jammer]
        )
        session = tiny_pipeline.build_session()
        clean = session.run(clean_trace)
        jammed = session.run(jammed_trace)
        if clean.n_blocks and jammed.n_blocks:
            assert (
                jammed.raw_agreement.mean
                <= clean.raw_agreement.mean + 0.02
            )

    def test_interference_does_not_crash_feature_extraction(self, tiny_pipeline):
        from repro.channel.interference import InterferenceSource
        from repro.probing.features import FeatureConfig, arrssi_sequences

        jammer = InterferenceSource((100.0, 50.0), eirp_dbm=14.0, seed=1)
        trace = tiny_pipeline.collect_trace(
            "jam-extract", n_rounds=32, interference=[jammer]
        )
        bob_seq, alice_seq = arrssi_sequences(trace, FeatureConfig(0.1, 2))
        assert np.all(np.isfinite(bob_seq))
        assert np.all(np.isfinite(alice_seq))


class TestTopLevelApi:
    def test_lazy_exports_resolve(self):
        import repro

        assert repro.ScenarioName.V2V_URBAN.value == "v2v-urban"
        assert repro.VehicleKeyPipeline is not None

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_exception_hierarchy(self):
        from repro import (
            AuthenticationError,
            ConfigurationError,
            ProtocolError,
            ReproError,
        )

        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(AuthenticationError, ProtocolError)

    def test_version_exposed(self):
        import repro

        assert repro.__version__.count(".") == 2
