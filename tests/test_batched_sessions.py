"""The batched multi-session engine vs a sequential establish_key loop.

``BatchedSessionRunner`` amortizes trace generation and the model
forward pass across sessions; these tests pin that the amortization is
*pure* -- every per-session outcome (keys, verified blocks, agreement
numbers, byte accounting) equals what a sequential
``establish_key(episode=label)`` loop over the same labels produces.
"""

import asyncio

import numpy as np
import pytest

from repro.core.batch import BatchedSessionRunner, BatchReport, _contiguous_chunks
from repro.exceptions import ConfigurationError
from repro.faults.adversary import AdversaryPlan
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy


def sequential_outcomes(pipeline, runner, n_sessions):
    """The sequential-loop reference for a batch's episode labels."""
    return [
        pipeline.establish_key(episode=label, n_rounds=runner.n_rounds)
        for label in runner.session_labels(n_sessions)
    ]


def assert_outcomes_identical(batched, sequential):
    """Exact equality of everything a session outcome reports."""
    assert batched.session.final_key_alice == sequential.session.final_key_alice
    assert batched.session.final_key_bob == sequential.session.final_key_bob
    assert batched.session.verified_blocks == sequential.session.verified_blocks
    assert batched.session.agreed_bits == sequential.session.agreed_bits
    assert batched.session.n_blocks == sequential.session.n_blocks
    assert batched.session.n_windows == sequential.session.n_windows
    assert batched.session.kept_fraction == sequential.session.kept_fraction
    assert batched.session.consensus_bytes == sequential.session.consensus_bytes
    assert (
        batched.session.reconciliation_bytes
        == sequential.session.reconciliation_bytes
    )
    assert batched.session.raw_agreement.mean == sequential.session.raw_agreement.mean
    assert batched.failure_reason == sequential.failure_reason
    assert batched.probing_time_s == sequential.probing_time_s
    assert batched.key_generation_rate_bps == sequential.key_generation_rate_bps


class TestBatchedEngine:
    def test_matches_sequential_loop(self, tiny_pipeline):
        runner = BatchedSessionRunner(
            tiny_pipeline, n_rounds=192, episode_prefix="batch-eq"
        )
        report = runner.run(3)
        reference = sequential_outcomes(tiny_pipeline, runner, 3)
        assert report.n_sessions == 3
        for batched, sequential in zip(report.outcomes, reference):
            assert_outcomes_identical(batched, sequential)

    def test_report_accounting(self, tiny_pipeline):
        runner = BatchedSessionRunner(
            tiny_pipeline, n_rounds=128, episode_prefix="batch-acct"
        )
        report = runner.run(2)
        assert isinstance(report, BatchReport)
        assert report.elapsed_s > 0.0
        assert report.sessions_per_sec > 0.0
        assert 0 <= report.n_successful <= report.n_sessions

    def test_sessions_get_independent_episodes(self, tiny_pipeline):
        report = BatchedSessionRunner(
            tiny_pipeline, n_rounds=128, episode_prefix="batch-indep"
        ).run(2)
        first, second = (outcome.session for outcome in report.outcomes)
        if first.final_key_alice is not None and second.final_key_alice is not None:
            assert first.final_key_alice != second.final_key_alice

    def test_too_short_trace_degrades_not_crashes(self, tiny_pipeline):
        # 2 rounds cannot fill a seq_len-16 window: the session must
        # report an entropy failure, exactly like the sequential path.
        runner = BatchedSessionRunner(
            tiny_pipeline, n_rounds=2, episode_prefix="batch-short"
        )
        report = runner.run(1)
        outcome = report.outcomes[0]
        assert not outcome.success
        assert outcome.failure_reason is not None

    def test_rejects_nonpositive_sessions(self, tiny_pipeline):
        runner = BatchedSessionRunner(tiny_pipeline, n_rounds=64)
        with pytest.raises(ConfigurationError):
            runner.run(0)


class TestFaultFallback:
    """Active fault/adversary plans force per-session execution.

    The amortized fast path assumes the fault-free vectorized protocol;
    with a plan active the runner must fall back to a sequential
    ``establish_key`` loop and stay bit-identical to it.
    """

    def test_amortized_property(self, tiny_pipeline):
        assert BatchedSessionRunner(tiny_pipeline, n_rounds=32).amortized
        assert BatchedSessionRunner(
            tiny_pipeline, n_rounds=32, fault_plan=FaultPlan.none(),
            adversary_plan=AdversaryPlan.none(),
        ).amortized  # null plans keep the fast path
        assert not BatchedSessionRunner(
            tiny_pipeline, n_rounds=32, fault_plan=FaultPlan.lossy(0.2)
        ).amortized
        assert not BatchedSessionRunner(
            tiny_pipeline, n_rounds=32,
            adversary_plan=AdversaryPlan(jamming_rate=0.2),
        ).amortized

    def test_batched_equals_sequential_under_faults(self, tiny_pipeline):
        plan = FaultPlan.lossy(0.2, mean_burst=2.0, message_drop_rate=0.1)
        policy = RetryPolicy()
        runner = BatchedSessionRunner(
            tiny_pipeline, n_rounds=96, episode_prefix="batch-fault",
            fault_plan=plan, retry_policy=policy,
        )
        report = runner.run(2)
        reference = [
            tiny_pipeline.establish_key(
                episode=label, n_rounds=96, fault_plan=plan, retry_policy=policy
            )
            for label in runner.session_labels(2)
        ]
        for batched, sequential in zip(report.outcomes, reference):
            assert_outcomes_identical(batched, sequential)
            assert batched.total_retries == sequential.total_retries
            assert batched.total_backoff_s == sequential.total_backoff_s

    def test_batched_equals_sequential_under_attack(self, tiny_pipeline):
        plan = AdversaryPlan(syndrome_tamper_rate=0.5, jamming_rate=0.1)
        policy = RetryPolicy()
        runner = BatchedSessionRunner(
            tiny_pipeline, n_rounds=96, episode_prefix="batch-adv",
            adversary_plan=plan, retry_policy=policy,
        )
        report = runner.run(2)
        reference = [
            tiny_pipeline.establish_key(
                episode=label, n_rounds=96,
                adversary_plan=plan, retry_policy=policy,
            )
            for label in runner.session_labels(2)
        ]
        for batched, sequential in zip(report.outcomes, reference):
            assert_outcomes_identical(batched, sequential)
            assert batched.abort_reason == sequential.abort_reason
            assert batched.attack_detections == sequential.attack_detections
            assert batched.adversary_events == sequential.adversary_events


class TestShardedRunner:
    """Fork-sharded batches must be byte-identical to one-process runs.

    Shards inherit the trained model by copy-on-write fork (nothing is
    pickled but episode labels and outcomes), and every episode is seeded
    by name, so the worker count can never change a result -- the same
    argument that makes ``collect_dataset`` jobs-invariant.
    """

    def test_shard_sweep_matches_sequential(self, tiny_pipeline):
        # 5 sessions across 1, 2 and 3 shards (uneven remainders both
        # ways) must all equal the sequential establish_key loop.
        reports = {}
        for shards in (1, 2, 3):
            runner = BatchedSessionRunner(
                tiny_pipeline, n_rounds=128, episode_prefix="batch-shard",
                shards=shards,
            )
            reports[shards] = runner.run(5)
        reference = sequential_outcomes(
            tiny_pipeline,
            BatchedSessionRunner(
                tiny_pipeline, n_rounds=128, episode_prefix="batch-shard"
            ),
            5,
        )
        for shards, report in reports.items():
            assert report.shards == shards
            assert report.n_sessions == 5
            for batched, sequential in zip(report.outcomes, reference):
                assert_outcomes_identical(batched, sequential)

    def test_sharded_phase_accounting_survives_merge(self, tiny_pipeline):
        report = BatchedSessionRunner(
            tiny_pipeline, n_rounds=128, episode_prefix="batch-shard-phase",
            shards=2,
        ).run(4)
        assert report.shards == 2
        assert set(report.phase_s) == {
            "probe", "window", "predict", "reconcile", "amplify", "orchestrate",
        }
        assert sum(report.phase_s.values()) <= report.elapsed_s + 1e-6

    def test_shards_clamped_to_session_count(self, tiny_pipeline):
        report = BatchedSessionRunner(
            tiny_pipeline, n_rounds=64, episode_prefix="batch-clamp", shards=8
        ).run(2)
        assert report.shards == 2

    def test_sharded_equals_sequential_under_faults(self, tiny_pipeline):
        # A fault plan forces per-session execution *inside each shard*;
        # the fork boundary must not perturb the fallback either.
        plan = FaultPlan.lossy(0.2, mean_burst=2.0, message_drop_rate=0.1)
        policy = RetryPolicy()
        runner = BatchedSessionRunner(
            tiny_pipeline, n_rounds=96, episode_prefix="batch-shard-fault",
            fault_plan=plan, retry_policy=policy, shards=2,
        )
        report = runner.run(3)
        reference = [
            tiny_pipeline.establish_key(
                episode=label, n_rounds=96, fault_plan=plan, retry_policy=policy
            )
            for label in runner.session_labels(3)
        ]
        assert report.shards == 2
        for batched, sequential in zip(report.outcomes, reference):
            assert_outcomes_identical(batched, sequential)
            assert batched.total_retries == sequential.total_retries

    def test_sharded_equals_sequential_under_attack(self, tiny_pipeline):
        plan = AdversaryPlan(syndrome_tamper_rate=0.5, jamming_rate=0.1)
        policy = RetryPolicy()
        runner = BatchedSessionRunner(
            tiny_pipeline, n_rounds=96, episode_prefix="batch-shard-adv",
            adversary_plan=plan, retry_policy=policy, shards=2,
        )
        report = runner.run(3)
        reference = [
            tiny_pipeline.establish_key(
                episode=label, n_rounds=96,
                adversary_plan=plan, retry_policy=policy,
            )
            for label in runner.session_labels(3)
        ]
        for batched, sequential in zip(report.outcomes, reference):
            assert_outcomes_identical(batched, sequential)
            assert batched.abort_reason == sequential.abort_reason
            assert batched.attack_detections == sequential.attack_detections

    def test_rejects_nonpositive_shards(self, tiny_pipeline):
        with pytest.raises(ConfigurationError):
            BatchedSessionRunner(tiny_pipeline, n_rounds=64, shards=0)

    def test_contiguous_chunks_cover_exactly(self):
        labels = [f"s-{i}" for i in range(7)]
        for n_chunks in (1, 2, 3, 7):
            chunks = _contiguous_chunks(labels, n_chunks)
            assert len(chunks) == n_chunks
            assert [label for chunk in chunks for label in chunk] == labels
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1


class TestShardedServerTick:
    """A sharded batch tick serves the same keys and counts itself."""

    ROUNDS = 48

    def run_clients(self, pipeline, shards, n_clients=6):
        from repro.server import (
            Endpoint,
            KeyEstablishmentServer,
            ModelRegistry,
            ServerConfig,
            run_behavior,
        )

        config = ServerConfig(
            port=0,
            hello_timeout_s=2.0,
            idle_timeout_s=10.0,
            session_deadline_s=60.0,
            # A slow first tick so every client is queued before it fires
            # and the batch really spans multiple shards.
            tick_interval_s=0.2,
            max_batch=8,
            queue_limit=8,
            max_sessions=32,
            retry_after_s=0.25,
            reap_interval_s=0.1,
            shards=shards,
        )

        async def body():
            server = KeyEstablishmentServer(ModelRegistry(pipeline), config)
            await server.start()
            endpoint = Endpoint(port=server.bound_port)
            try:
                outcomes = await asyncio.gather(
                    *(
                        run_behavior(
                            endpoint,
                            "normal",
                            f"dev-{i}",
                            episode=f"srv-shard-{i}",
                            rounds=self.ROUNDS,
                        )
                        for i in range(n_clients)
                    )
                )
            finally:
                if not server.closed:
                    await server.drain(timeout=10.0)
            assert server.active_sessions == 0
            return outcomes, server

        return asyncio.run(body())

    def test_sharded_tick_parity_and_metrics(self, tiny_pipeline):
        sharded, sharded_server = self.run_clients(tiny_pipeline, shards=2)
        plain, _ = self.run_clients(tiny_pipeline, shards=1)
        assert all(outcome.kind == "result" for outcome in sharded)
        digests = {
            outcome.frame["session_id"]: outcome.frame.get("key_digest")
            for outcome in sharded
        }
        for outcome in plain:
            # Same episode label => same key digest, sharded or not.
            assert outcome.frame.get("key_digest") == digests[
                outcome.frame["session_id"]
            ]
        metrics = sharded_server.metrics
        assert metrics.tick_sessions_max >= 2  # the batch really coalesced
        assert metrics.sharded_batches >= 1
        assert metrics.shards_used_max == 2
        assert metrics.batch_fallbacks == 0
        snapshot = metrics.snapshot()
        assert snapshot["sharded_batches"] == metrics.sharded_batches
        assert snapshot["shards_used_max"] == 2


class TestPrecomputedProbabilities:
    def test_session_rejects_mismatched_probabilities(self, tiny_pipeline):
        session = tiny_pipeline.build_session()
        trace = tiny_pipeline.collect_trace("precomp-bad", n_rounds=192)
        bad = [np.full((1, tiny_pipeline.config.key_bits), 0.5)]
        with pytest.raises(ConfigurationError):
            session.run(trace, alice_probabilities=bad)


class TestCliBatch:
    def test_sessions_flag_runs_batched_engine(self, tiny_pipeline, monkeypatch):
        from repro import cli

        class _StubPipeline:
            """Stands in for the freshly-trained CLI pipeline."""

            @staticmethod
            def for_scenario(name, seed=0):
                return tiny_pipeline

        monkeypatch.setattr(
            "repro.core.pipeline.VehicleKeyPipeline", _StubPipeline
        )
        monkeypatch.setattr(tiny_pipeline, "load", lambda directory: tiny_pipeline)
        code = cli.main(
            ["establish", "--sessions", "2", "--load-dir", "unused"]
        )
        assert code in (0, 1)  # ran to completion either way

    def test_sessions_default_is_single_session(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["establish"])
        assert args.sessions == 1
