"""Tests for the regional duty-cycle model."""

import pytest

from repro.exceptions import ConfigurationError
from repro.lora.regional import (
    ALL_PLANS,
    EU433,
    EU868,
    US915,
    UNRESTRICTED,
    DutyCycleBudget,
    RegionalPlan,
    paced_duration_s,
)


class TestPlans:
    def test_four_plans(self):
        assert len(ALL_PLANS) == 4

    def test_eu433_gap(self):
        # 10% duty: 1 s of airtime demands 9 s of silence.
        assert EU433.min_gap_after(1.0) == pytest.approx(9.0)

    def test_eu868_gap(self):
        assert EU868.min_gap_after(1.0) == pytest.approx(99.0)

    def test_unrestricted_gap_is_zero(self):
        assert UNRESTRICTED.min_gap_after(5.0) == 0.0

    def test_us915_dwell_limit(self):
        assert US915.allows_airtime(0.3)
        assert not US915.allows_airtime(1.5)

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            RegionalPlan(name="bad", duty_cycle=0.0)


class TestBudget:
    def test_first_transmission_unconstrained(self):
        budget = DutyCycleBudget(EU433)
        assert budget.earliest_start(10.0, 1.0) == 10.0

    def test_pacing_after_transmission(self):
        budget = DutyCycleBudget(EU433)
        budget.record(0.0, 1.0)
        # Next transmission must wait until 0 + 1 + 9 = 10.
        assert budget.earliest_start(2.0, 1.0) == pytest.approx(10.0)

    def test_late_request_not_delayed(self):
        budget = DutyCycleBudget(EU433)
        budget.record(0.0, 1.0)
        assert budget.earliest_start(100.0, 1.0) == 100.0

    def test_airtime_accounting_window(self):
        budget = DutyCycleBudget(EU433)
        budget.record(0.0, 1.0)
        budget.record(3500.0, 2.0)
        assert budget.airtime_used_s(3600.0) == pytest.approx(3.0)
        # The first transmission ages out of the 1-hour window.
        assert budget.airtime_used_s(7000.0) == pytest.approx(2.0)

    def test_dwell_violation_rejected(self):
        budget = DutyCycleBudget(US915)
        with pytest.raises(ConfigurationError):
            budget.earliest_start(0.0, 1.0)

    def test_unrestricted_never_delays(self):
        budget = DutyCycleBudget(UNRESTRICTED)
        budget.record(0.0, 5.0)
        assert budget.earliest_start(0.0, 5.0) == 0.0


class TestPacedDuration:
    def test_single_message_pays_no_gap(self):
        assert paced_duration_s(1, 1.0, EU433) == pytest.approx(1.0)

    def test_many_messages_dominated_by_gaps(self):
        ten = paced_duration_s(10, 1.0, EU433)
        assert ten == pytest.approx(10 * 1.0 + 9 * 9.0)

    def test_zero_messages(self):
        assert paced_duration_s(0, 1.0, EU868) == 0.0

    def test_unrestricted_is_pure_airtime(self):
        assert paced_duration_s(7, 0.5, UNRESTRICTED) == pytest.approx(3.5)

    def test_tighter_duty_cycle_is_slower(self):
        assert paced_duration_s(5, 1.0, EU868) > paced_duration_s(5, 1.0, EU433)
