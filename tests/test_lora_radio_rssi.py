"""Tests for transceiver models, link budget and RSSI sampling."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.link_budget import LinkBudget, noise_floor_dbm, sensitivity_dbm
from repro.lora.radio import (
    ALL_DEVICES,
    DRAGINO_LORA_SHIELD,
    MULTITECH_MDOT,
    MULTITECH_XDOT,
    TransceiverModel,
    device_by_name,
)
from repro.lora.rssi import RegisterRssiSampler, packet_rssi


class TestDevices:
    def test_three_paper_devices_exist(self):
        assert len(ALL_DEVICES) == 3
        assert {d.chip for d in ALL_DEVICES} == {"SX1272", "SX1278"}

    def test_lookup_by_name(self):
        assert device_by_name("MultiTech xDot") is MULTITECH_XDOT
        assert device_by_name("MultiTech mDot") is MULTITECH_MDOT
        assert device_by_name("Dragino LoRa Shield") is DRAGINO_LORA_SHIELD

    def test_lookup_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            device_by_name("nonexistent radio")

    def test_invalid_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            TransceiverModel(name="x", chip="SX1278", rssi_noise_std_db=-1.0)


class TestLinkBudget:
    def test_noise_floor_125khz(self):
        # -174 + 10*log10(125e3) + 6 = -117.03 dBm.
        assert noise_floor_dbm(125_000.0) == pytest.approx(-117.0, abs=0.1)

    def test_sensitivity_improves_with_sf(self):
        assert sensitivity_dbm(12, 125_000.0) < sensitivity_dbm(7, 125_000.0)

    def test_sf12_sensitivity_matches_datasheet_ballpark(self):
        assert sensitivity_dbm(12, 125_000.0) == pytest.approx(-137.0, abs=1.0)

    def test_received_power_tracks_gain(self):
        budget = LinkBudget(tx_power_dbm=14.0)
        assert budget.received_power_dbm(-100.0) > budget.received_power_dbm(-110.0)

    def test_decodable_near_and_not_far(self):
        budget = LinkBudget()
        phy = LoRaPHYConfig()
        assert budget.is_decodable(-80.0, phy)
        assert not budget.is_decodable(-170.0, phy)

    def test_max_path_loss_is_long_range(self):
        # SF12 LoRa should tolerate >140 dB path loss (the km-scale claim).
        assert LinkBudget().max_path_loss_db(LoRaPHYConfig()) > 140.0

    def test_invalid_sf_rejected(self):
        with pytest.raises(ConfigurationError):
            sensitivity_dbm(13, 125_000.0)


class TestPacketRssi:
    def test_average_is_quantized(self):
        assert packet_rssi(np.array([-80.2, -80.3, -80.4])) == pytest.approx(-80.0)
        assert packet_rssi(np.array([-80.7, -80.8, -80.9])) == pytest.approx(-81.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            packet_rssi(np.array([]))


class TestRegisterRssiSampler:
    def _sampler(self, device=DRAGINO_LORA_SHIELD):
        return RegisterRssiSampler(phy=LoRaPHYConfig(), device=device)

    def test_one_sample_per_symbol(self):
        sampler = self._sampler()
        assert sampler.n_samples == sampler.phy.total_symbols

    def test_sample_times_span_reception(self):
        sampler = self._sampler()
        times = sampler.sample_times(10.0)
        assert times[0] > 10.0
        assert times[-1] == pytest.approx(10.0 + sampler.n_samples * sampler.phy.symbol_time_s)

    def test_quantized_to_resolution(self):
        sampler = self._sampler()
        samples = sampler.sample(lambda t: np.full_like(t, -90.3), 0.0, seed=1)
        steps = samples / sampler.device.rssi_resolution_db
        np.testing.assert_allclose(steps, np.round(steps))

    def test_floor_is_enforced(self):
        sampler = self._sampler()
        samples = sampler.sample(lambda t: np.full_like(t, -500.0), 0.0, seed=1)
        assert np.all(samples >= sampler.device.rssi_floor_dbm)

    def test_offset_shifts_mean(self):
        offset_device = TransceiverModel(
            name="offset", chip="SX1278", rssi_offset_db=5.0, rssi_noise_std_db=0.0
        )
        clean_device = TransceiverModel(
            name="clean", chip="SX1278", rssi_offset_db=0.0, rssi_noise_std_db=0.0
        )
        power = lambda t: np.full_like(t, -90.0)
        shifted = self._sampler(offset_device).sample(power, 0.0, seed=1)
        clean = self._sampler(clean_device).sample(power, 0.0, seed=1)
        assert np.mean(shifted) - np.mean(clean) == pytest.approx(5.0, abs=0.01)

    def test_deterministic_given_seed(self):
        sampler = self._sampler()
        power = lambda t: -90.0 + 0.5 * np.sin(t)
        a = sampler.sample(power, 0.0, seed=9)
        b = sampler.sample(power, 0.0, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_wrong_shape_power_function_rejected(self):
        sampler = self._sampler()
        with pytest.raises(ConfigurationError):
            sampler.sample(lambda t: np.array([-90.0]), 0.0, seed=1)
