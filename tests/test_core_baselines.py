"""Tests for the comparison-system interface and the three baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    GaoSystem,
    HanSystem,
    LoRaKeySystem,
    VehicleKeySystem,
)
from repro.core.baselines.common import SystemRunResult, two_sided_quantize
from repro.lora.airtime import LoRaPHYConfig
from repro.metrics.agreement import AgreementSummary
from repro.quantization.guard_band import GuardBandQuantizer


@pytest.fixture(scope="module")
def traces(tiny_pipeline):
    return [
        tiny_pipeline.collect_trace(f"baseline-{i}", n_rounds=256) for i in range(3)
    ]


class TestTwoSidedQuantize:
    def test_equal_length_streams(self):
        rng = np.random.default_rng(0)
        series = rng.normal(-90, 4, size=256)
        noisy = series + rng.normal(0, 0.5, size=256)
        alice, bob, mask_bytes = two_sided_quantize(
            series, noisy, GuardBandQuantizer(alpha=0.8), window=32
        )
        assert alice.shape == bob.shape
        assert mask_bytes == 2 * 4 * (256 // 32)

    def test_consensus_improves_agreement(self):
        rng = np.random.default_rng(1)
        series = rng.normal(-90, 4, size=512)
        noisy = series + rng.normal(0, 2.0, size=512)
        quantizer = GuardBandQuantizer(alpha=1.2)
        alice, bob, _ = two_sided_quantize(series, noisy, quantizer, window=32)
        plain = GuardBandQuantizer(alpha=0.0)
        alice_plain, bob_plain, _ = two_sided_quantize(series, noisy, plain, window=32)
        assert np.mean(alice == bob) > np.mean(alice_plain == bob_plain)


class TestBaselineRuns:
    @pytest.mark.parametrize(
        "system_factory", [LoRaKeySystem, HanSystem, GaoSystem]
    )
    def test_baseline_produces_result(self, traces, system_factory):
        result = system_factory().run(traces)
        assert isinstance(result, SystemRunResult)
        assert result.probing_time_s > 0
        assert 0.0 <= result.reconciled_agreement.mean <= 1.0

    def test_lora_key_reconciles_with_one_message_per_run(self, traces):
        result = LoRaKeySystem().run(traces[0])
        # 2 mask messages plus one CS syndrome per block.
        assert result.reconciliation_messages == 2 + result.n_blocks

    def test_han_uses_many_messages(self, traces):
        lora = LoRaKeySystem().run(traces)
        han = HanSystem().run(traces)
        if han.n_blocks and lora.n_blocks:
            assert (
                han.reconciliation_messages / han.n_blocks
                > lora.reconciliation_messages / lora.n_blocks
            )

    def test_gao_produces_fewest_bits(self, traces):
        gao = GaoSystem().run(traces)
        han = HanSystem().run(traces)
        assert gao.n_blocks <= han.n_blocks

    def test_kgr_accounting(self, traces):
        phy = LoRaPHYConfig()
        result = HanSystem().run(traces)
        if result.n_blocks:
            assert result.kgr_bps(phy) > 0
            assert result.reconciliation_airtime_s(phy) > 0

    def test_single_trace_equivalent_to_list_of_one(self, traces):
        a = LoRaKeySystem().run(traces[0])
        b = LoRaKeySystem().run([traces[0]])
        assert a.n_blocks == b.n_blocks
        assert a.raw_agreement.mean == b.raw_agreement.mean


class TestVehicleKeySystem:
    def test_wraps_pipeline(self, tiny_pipeline, traces):
        system = VehicleKeySystem(tiny_pipeline)
        result = system.run(traces)
        assert result.system == "Vehicle-Key"
        assert result.n_blocks > 0

    def test_vehicle_key_competitive_with_baselines(self, tiny_pipeline, traces):
        # At tiny training scale Vehicle-Key only needs to be in the same
        # band as the baselines; the paper-scale dominance is asserted by
        # the Fig. 12 benchmark.  The band is wide because the verified
        # CS decoder reconciles these low-error tiny traces perfectly
        # (the baselines sit at 1.0), while the tiny pipeline is
        # deliberately undertrained.
        vk = VehicleKeySystem(tiny_pipeline).run(traces)
        lora = LoRaKeySystem().run(traces)
        han = HanSystem().run(traces)
        assert vk.reconciled_agreement.mean > lora.reconciled_agreement.mean - 0.15
        assert vk.reconciled_agreement.mean > han.reconciled_agreement.mean - 0.15


class TestSystemRunResult:
    def _result(self, **overrides):
        base = dict(
            system="x",
            raw_agreement=AgreementSummary(0.9, 0.01, 4),
            reconciled_agreement=AgreementSummary(0.95, 0.01, 4),
            matched_blocks=3,
            n_blocks=4,
            block_bits=64,
            probing_time_s=100.0,
            reconciliation_messages=4,
            public_bytes=400,
        )
        base.update(overrides)
        return SystemRunResult(**base)

    def test_agreed_bits_follow_agreement(self):
        result = self._result()
        assert result.agreed_bits == round(4 * 64 * 0.95)

    def test_zero_messages_zero_airtime(self):
        result = self._result(reconciliation_messages=0, public_bytes=0)
        assert result.reconciliation_airtime_s(LoRaPHYConfig()) == 0.0

    def test_kgr_decreases_with_airtime(self):
        phy = LoRaPHYConfig()
        light = self._result(reconciliation_messages=1, public_bytes=10)
        heavy = self._result(reconciliation_messages=100, public_bytes=1000)
        assert light.kgr_bps(phy) > heavy.kgr_bps(phy)
