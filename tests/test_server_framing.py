"""Unit tests for the server's length-prefixed JSON framing layer.

The framing layer is the first thing attacker bytes touch, so its
failure taxonomy must be closed: every way a peer can damage a frame
(lie about the length, stall mid-frame, send non-JSON) maps to a typed
:class:`FrameError` with one of the three reason slugs, and a clean
close at a frame boundary is distinguishable (``None``) from a
truncation mid-frame (an error).
"""

import asyncio

import pytest

from repro.server.framing import (
    FRAME_CORRUPT,
    FRAME_OVERSIZED,
    FRAME_TRUNCATED,
    FrameError,
    decode_body,
    encode_frame,
    read_frame,
)


def read_from_bytes(data: bytes, eof: bool = True, **kwargs):
    """Feed raw bytes to a StreamReader and read one frame from it."""

    async def body():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return await read_frame(reader, **kwargs)

    return asyncio.run(body())


class TestRoundTrip:
    def test_encode_decode_roundtrip(self):
        payload = {"type": "hello", "session_id": "dev-1", "rounds": 96}
        assert read_from_bytes(encode_frame(payload)) == payload

    def test_multiple_frames_in_sequence(self):
        async def body():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"n": 1}) + encode_frame({"n": 2}))
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader)

        first, second = asyncio.run(body())
        assert (first, second) == ({"n": 1}, {"n": 2})

    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None


class TestFailureTaxonomy:
    def test_oversized_declared_length(self):
        header = (2**31).to_bytes(4, "big")
        with pytest.raises(FrameError) as info:
            read_from_bytes(header)
        assert info.value.reason == FRAME_OVERSIZED

    def test_custom_limit_is_enforced(self):
        frame = encode_frame({"type": "x", "pad": "y" * 256})
        with pytest.raises(FrameError) as info:
            read_from_bytes(frame, max_bytes=64)
        assert info.value.reason == FRAME_OVERSIZED

    def test_truncated_header(self):
        with pytest.raises(FrameError) as info:
            read_from_bytes(b"\x00\x00")
        assert info.value.reason == FRAME_TRUNCATED

    def test_truncated_body(self):
        frame = encode_frame({"type": "hello"})
        with pytest.raises(FrameError) as info:
            read_from_bytes(frame[:-3])
        assert info.value.reason == FRAME_TRUNCATED

    def test_corrupt_payload(self):
        body = b"\x00\xffdefinitely-not-json"
        with pytest.raises(FrameError) as info:
            read_from_bytes(len(body).to_bytes(4, "big") + body)
        assert info.value.reason == FRAME_CORRUPT

    def test_non_object_payload(self):
        body = b"[1, 2, 3]"
        with pytest.raises(FrameError) as info:
            read_from_bytes(len(body).to_bytes(4, "big") + body)
        assert info.value.reason == FRAME_CORRUPT

    def test_decode_body_requires_object(self):
        with pytest.raises(FrameError):
            decode_body(b'"just a string"')
