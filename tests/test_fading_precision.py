"""The mixed-precision trig kernel's accuracy and batching contracts.

The sum-of-sinusoids evaluation defaults to ``trig_precision="mixed"``:
angles accumulate and range-reduce mod 2*pi in float64, then cos/sin run
in float32 where SIMD transcendentals apply.  These tests pin the two
promises that make that safe:

- **Accuracy**: the mixed-mode gain never deviates from the exact
  float64 evaluation by more than ~5e-3 dB.  Away from fades the error
  is ~1e-4 dB; the bound is set by deep fades, where the dB scale
  amplifies a ~1e-6 linear error against a near-zero gain.  Either way
  it stays two orders of magnitude under the 0.5 dB RSSI register
  resolution, so no downstream quantization, thresholding or key bit
  can flip outside an already knife-edge tie.
- **Batched bit-identity**: :func:`batched_spatial_gain_db` stacks S
  realizations into one trig pass; each output row must equal the
  per-realization :meth:`SpatialJakesFading.gain_db` *bit for bit*, for
  any time-axis chunking.
"""

import numpy as np
import pytest

from repro.channel.fading import (
    SpatialJakesFading,
    TemporalJakesFading,
    batched_spatial_gain_db,
)
from repro.exceptions import ConfigurationError

# Generous versus the measured worst case (~1e-3 dB, in a deep fade
# over 0-600 m) and still 100x below the 0.5 dB register resolution.
MAX_ABS_DB_ERROR = 5e-3


def spatial_pair(seed, **kwargs):
    """The same realization under both precision modes."""
    mixed = SpatialJakesFading(0.6912, seed=seed, trig_precision="mixed", **kwargs)
    exact = SpatialJakesFading(0.6912, seed=seed, trig_precision="float64", **kwargs)
    return mixed, exact


class TestAccuracyContract:
    def test_spatial_rayleigh(self):
        mixed, exact = spatial_pair(3)
        s = np.linspace(0.0, 600.0, 40_001)
        error = np.abs(mixed.gain_db(s) - exact.gain_db(s))
        assert float(error.max()) < MAX_ABS_DB_ERROR

    def test_spatial_rician(self):
        mixed, exact = spatial_pair(7, rician_k=4.0)
        s = np.linspace(0.0, 600.0, 40_001)
        error = np.abs(mixed.gain_db(s) - exact.gain_db(s))
        assert float(error.max()) < MAX_ABS_DB_ERROR

    def test_temporal(self):
        mixed = TemporalJakesFading(80.0, seed=5, trig_precision="mixed")
        exact = TemporalJakesFading(80.0, seed=5, trig_precision="float64")
        t = np.linspace(0.0, 30.0, 20_001)
        error = np.abs(mixed.gain_db(t) - exact.gain_db(t))
        assert float(error.max()) < MAX_ABS_DB_ERROR

    def test_large_displacement_range_reduction(self):
        # Kilometric displacements are where naive float32 angles break
        # down; float64 range reduction must keep them accurate.
        mixed, exact = spatial_pair(11)
        s = np.linspace(5_000.0, 5_100.0, 10_001)
        error = np.abs(mixed.gain_db(s) - exact.gain_db(s))
        assert float(error.max()) < MAX_ABS_DB_ERROR

    def test_mixed_is_the_default(self):
        assert SpatialJakesFading(0.6912, seed=0).trig_precision == "mixed"
        assert TemporalJakesFading(10.0, seed=0).trig_precision == "mixed"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SpatialJakesFading(0.6912, seed=0, trig_precision="float32")
        with pytest.raises(ConfigurationError):
            TemporalJakesFading(10.0, seed=0, trig_precision="exact")


class TestBatchedBitIdentity:
    def assert_rows_bit_identical(self, models, disp, **kwargs):
        batched = batched_spatial_gain_db(models, disp, **kwargs)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(batched[i], model.gain_db(disp[i]))

    def test_rayleigh_mixed(self):
        models = [SpatialJakesFading(0.6912, seed=s) for s in range(4)]
        rng = np.random.default_rng(0)
        disp = rng.uniform(0.0, 400.0, size=(4, 257))
        self.assert_rows_bit_identical(models, disp)

    def test_rician_float64(self):
        models = [
            SpatialJakesFading(
                0.6912, rician_k=6.0, seed=s, trig_precision="float64"
            )
            for s in range(3)
        ]
        rng = np.random.default_rng(1)
        disp = rng.uniform(0.0, 400.0, size=(3, 101))
        self.assert_rows_bit_identical(models, disp)

    def test_chunking_never_perturbs_rows(self):
        # A chunk size far below one row forces many time-axis chunks;
        # the output must not change by a single bit.
        models = [SpatialJakesFading(0.6912, rician_k=2.0, seed=s) for s in range(3)]
        rng = np.random.default_rng(2)
        disp = rng.uniform(0.0, 400.0, size=(3, 211))
        unchunked = batched_spatial_gain_db(models, disp)
        chunked = batched_spatial_gain_db(models, disp, chunk_elems=1)
        np.testing.assert_array_equal(unchunked, chunked)
        self.assert_rows_bit_identical(models, disp, chunk_elems=777)

    def test_heterogeneous_wavelengths_allowed(self):
        models = [
            SpatialJakesFading(0.6912, seed=0),
            SpatialJakesFading(0.3456, seed=1),
        ]
        disp = np.linspace(0.0, 50.0, 64).reshape(1, -1).repeat(2, axis=0)
        self.assert_rows_bit_identical(models, disp)

    def test_single_realization_group(self):
        models = [SpatialJakesFading(0.6912, seed=9)]
        disp = np.linspace(0.0, 120.0, 333)[np.newaxis, :]
        self.assert_rows_bit_identical(models, disp)

    def test_rejects_heterogeneous_realizations(self):
        disp = np.zeros((2, 8))
        with pytest.raises(ConfigurationError):
            batched_spatial_gain_db(
                [
                    SpatialJakesFading(0.6912, n_paths=64, seed=0),
                    SpatialJakesFading(0.6912, n_paths=32, seed=1),
                ],
                disp,
            )
        with pytest.raises(ConfigurationError):
            batched_spatial_gain_db(
                [
                    SpatialJakesFading(0.6912, rician_k=0.0, seed=0),
                    SpatialJakesFading(0.6912, rician_k=3.0, seed=1),
                ],
                disp,
            )
        with pytest.raises(ConfigurationError):
            batched_spatial_gain_db(
                [
                    SpatialJakesFading(0.6912, seed=0, trig_precision="mixed"),
                    SpatialJakesFading(0.6912, seed=1, trig_precision="float64"),
                ],
                disp,
            )

    def test_rejects_bad_shapes(self):
        models = [SpatialJakesFading(0.6912, seed=0)]
        with pytest.raises(ConfigurationError):
            batched_spatial_gain_db(models, np.zeros(8))  # 1-D
        with pytest.raises(ConfigurationError):
            batched_spatial_gain_db(models, np.zeros((2, 8)))  # row mismatch
        with pytest.raises(ConfigurationError):
            batched_spatial_gain_db([], np.zeros((0, 8)))
