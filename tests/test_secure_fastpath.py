"""Batched data plane, record memo, and cached-key fast paths.

The perf rewrite added three kinds of shortcut -- batched
``seal_records``/``open_records``, the :class:`RecordMemo` shared-link
fast path, and per-key caches (primed MAC key, keystream midstates) --
each promising *exactly* the sequential, uncached behaviour.  These tests
hold every shortcut to that promise: wire bytes, outcomes, counters,
window state and ledger totals must match the one-record-at-a-time path,
and every deviation a memo could be fooled by (tampering, replay,
foreign records, truncation) must fall back to full verification.
"""

import copy
import hashlib
import hmac as hmac_mod
import pickle

import pytest

from repro.reconciliation.mac import (
    MAC_BYTES,
    PrecomputedMacKey,
    compute_mac,
    mac_key_bytes,
)
from repro.secure import (
    ManagedSecureLink,
    NonceExhaustedError,
    NonceLedger,
    RecordMemo,
    RekeyPolicy,
    SecureLink,
)
from repro.secure.channel import SecureChannel
from repro.secure.kdf import ChannelContext, derive_channel_keys
from repro.utils.bits import bytes_to_bits

MASTER = b"\x77" * 32
ROUNDS = 64
SEARCH = 8

#: A burst mixing the interesting payload shapes.
BURST = [
    b"",
    b"x",
    bytes(31),
    bytes(range(32)),
    b"y" * 33,
    b"z" * 64,
    bytes(i % 251 for i in range(1024)),
]


@pytest.fixture()
def keys():
    return derive_channel_keys(
        MASTER, ChannelContext(session_nonce=b"\x22" * 16)
    )


@pytest.fixture(scope="module")
def established(tiny_pipeline):
    """One confirmed session result to derive epoch-0 keys from."""
    for i in range(SEARCH):
        outcome = tiny_pipeline.establish_key(
            episode=f"fastpath-base-{i}", n_rounds=ROUNDS
        )
        if outcome.success:
            return outcome.session
    pytest.fail(f"no successful establishment in {SEARCH} episodes")


def _state(channel: SecureChannel):
    return (
        channel.send_sequence,
        channel.sealed,
        channel.opened,
        dict(channel.open_failures),
        channel._window.highest,
        channel._window._bitmap,
    )


class TestBatchedParity:
    def test_seal_records_matches_sequential_seals(self, keys):
        batched = SecureChannel(keys, "initiator")
        sequential = SecureChannel(keys, "initiator")
        wires = batched.seal_records(BURST)
        expected = [sequential.seal(payload) for payload in BURST]
        assert wires == expected
        assert _state(batched) == _state(sequential)

    def test_open_records_matches_sequential_opens(self, keys):
        sender = SecureChannel(keys, "initiator")
        wires = sender.seal_records(BURST)
        wires[3] = wires[3][:-1] + bytes([wires[3][-1] ^ 1])  # tamper one
        batched = SecureChannel(keys, "responder")
        sequential = SecureChannel(keys, "responder")
        got = batched.open_records(wires)
        expected = [sequential.open(wire) for wire in wires]
        assert [(o.ok, o.plaintext, o.failure) for o in got] == [
            (o.ok, o.plaintext, o.failure) for o in expected
        ]
        assert _state(batched) == _state(sequential)

    def test_batched_ledger_totals_match_sequential(self, keys):
        ledger_a, ledger_b = NonceLedger(), NonceLedger()
        batched = SecureLink(keys, ledger=ledger_a)
        sequential = SecureLink(keys, ledger=ledger_b)
        for outcome in batched.responder.open_records(
            batched.initiator.seal_records(BURST)
        ):
            assert outcome.ok
        for payload in BURST:
            assert sequential.responder.open(sequential.initiator.seal(payload)).ok
        assert ledger_a.total_seals == ledger_b.total_seals
        assert ledger_a.total_accepts == ledger_b.total_accepts
        assert ledger_a.ok and ledger_b.ok

    def test_seal_records_exhaustion_carries_the_partial_burst(self, keys):
        batched = SecureChannel(keys, "initiator", max_sequence=4)
        sequential = SecureChannel(keys, "initiator", max_sequence=4)
        payloads = [f"m{i}".encode() for i in range(8)]
        with pytest.raises(NonceExhaustedError) as excinfo:
            batched.seal_records(payloads)
        expected = [sequential.seal(p) for p in payloads[:5]]
        with pytest.raises(NonceExhaustedError):
            sequential.seal(payloads[5])
        assert excinfo.value.sealed == expected
        assert batched.send_sequence == sequential.send_sequence == 5
        assert batched.sealed == sequential.sealed == 5

    def test_open_records_stops_at_the_failure_budget(self, keys):
        sender = SecureChannel(keys, "initiator")
        wires = sender.seal_records([f"m{i}".encode() for i in range(6)])
        for index in (1, 3, 4):  # tamper three of six
            wires[index] = wires[index][:-1] + bytes([wires[index][-1] ^ 1])
        receiver = SecureChannel(keys, "responder")
        outcomes = receiver.open_records(wires, max_failures=2)
        # Stops right after the second failure (index 3); record 4 unseen.
        assert len(outcomes) == 4
        assert [o.ok for o in outcomes] == [True, False, True, False]


class TestRecordMemo:
    def test_clean_delivery_hits_the_memo_with_identical_outcome(self, keys):
        shared = SecureLink(keys, share_records=True)
        plain = SecureLink(keys, share_records=False)
        payload = bytes(range(64))
        fast = shared.responder.open(shared.initiator.seal(payload))
        slow = plain.responder.open(plain.initiator.seal(payload))
        assert shared.memo.hits == 1
        assert plain.memo is None
        assert (fast.ok, fast.plaintext, fast.failure) == (
            slow.ok,
            slow.plaintext,
            slow.failure,
        )
        assert fast.record == slow.record

    def test_memoed_burst_matches_cryptographic_path(self, keys):
        shared = SecureLink(keys, share_records=True)
        plain = SecureLink(keys, share_records=False)
        fast = shared.responder.open_records(shared.initiator.seal_records(BURST))
        slow = plain.responder.open_records(plain.initiator.seal_records(BURST))
        assert [(o.ok, o.plaintext, o.record) for o in fast] == [
            (o.ok, o.plaintext, o.record) for o in slow
        ]
        assert shared.memo.hits == len(BURST)
        assert _state(shared.responder) == _state(plain.responder)

    def test_tampered_copy_falls_back_and_original_still_opens(self, keys):
        link = SecureLink(keys, share_records=True)
        wire = link.initiator.seal(b"precious")
        tampered = wire[:-1] + bytes([wire[-1] ^ 1])
        bad = link.responder.open(tampered)
        assert not bad.ok and bad.failure == "auth-failed"
        assert bad.plaintext is None
        good = link.responder.open(wire)  # the unmodified original, late
        assert good.ok and good.plaintext == b"precious"

    def test_replayed_record_rejected_despite_memo(self, keys):
        link = SecureLink(keys, share_records=True)
        wire = link.initiator.seal(b"once")
        assert link.responder.open(wire).ok
        replay = link.responder.open(wire)
        assert not replay.ok and replay.failure == "nonce-replayed"
        assert replay.plaintext is None

    def test_foreign_record_never_matches(self, keys):
        foreign_keys = derive_channel_keys(
            b"\x13" * 32, ChannelContext(session_nonce=b"\x33" * 16)
        )
        link = SecureLink(keys, share_records=True)
        foreign = SecureLink(foreign_keys, share_records=True)
        wire = foreign.initiator.seal(b"not yours")
        outcome = link.responder.open(wire)
        assert not outcome.ok and outcome.failure == "auth-failed"
        assert outcome.plaintext is None

    def test_truncated_record_skips_the_memo(self, keys):
        link = SecureLink(keys, share_records=True)
        wire = link.initiator.seal(b"short me")
        outcome = link.responder.open(wire[: len(wire) - 2])
        assert not outcome.ok and outcome.failure == "record-truncated"

    def test_capacity_bounds_memory_fifo(self):
        memo = RecordMemo(capacity=2)
        for sequence in range(3):
            memo.put("k", 0, 0, sequence, b"wire%d" % sequence, b"pt")
        assert len(memo) == 2
        assert memo.match("k", 0, 0, 0, b"wire0") is None  # evicted
        assert memo.match("k", 0, 0, 2, b"wire2") == b"pt"
        assert memo.misses == 1 and memo.hits == 1

    def test_memo_entry_survives_a_mismatched_probe(self):
        memo = RecordMemo()
        memo.put("k", 0, 0, 7, b"original", b"pt")
        assert memo.match("k", 0, 0, 7, b"tampered!") is None
        assert memo.match("k", 0, 0, 7, b"original") == b"pt"


class TestCachedKeys:
    def test_precomputed_mac_matches_compute_mac(self, keys):
        dk = keys.send_keys("initiator")
        key_bits = bytes_to_bits(dk.mac_key)
        for message in (b"\x00", bytes(64), bytes(range(256)) * 4 + b"!"):
            tag = dk.mac().tag(message)
            assert tag == compute_mac(key_bits, message)
            assert dk.mac().verify(message, tag)
            assert not dk.mac().verify(message, bytes(MAC_BYTES))

    def test_midstates_match_hmac_for_long_keys(self):
        long_key = b"\x5c" * 100  # > the 64-byte HMAC block: hashed first
        primed = PrecomputedMacKey(long_key)
        message = b"long-key message"
        expected = hmac_mod.new(long_key, message, hashlib.sha256).digest()
        assert primed.tag(message) == expected[:MAC_BYTES]

    def test_mac_key_bytes_round_trip(self, keys):
        dk = keys.send_keys("responder")
        assert mac_key_bytes(bytes_to_bits(dk.mac_key)) == dk.mac_key

    def test_direction_keys_pickle_and_deepcopy_round_trip(self, keys):
        dk = keys.send_keys("initiator")
        dk.mac()  # populate both caches before serializing
        dk.keystream_states()
        for clone in (pickle.loads(pickle.dumps(dk)), copy.deepcopy(dk)):
            assert clone == dk
            assert clone.key_id == dk.key_id
            message = b"after the round trip"
            assert clone.mac().tag(message) == dk.mac().tag(message)


class TestLedgerMemory:
    def test_contiguous_sessions_hold_one_run(self):
        ledger = NonceLedger()
        for sequence in range(5000):
            assert ledger.record_seal("k", 0, sequence)
            assert ledger.record_accept("k", 0, sequence)
        assert ledger.total_seals == ledger.total_accepts == 5000
        assert ledger.seal_runs == 1  # O(gaps), not O(records)
        assert ledger.accept_runs == 1
        assert ledger.ok

    def test_batched_run_witnessing_is_one_run(self):
        ledger = NonceLedger()
        assert ledger.record_seal_run("k", 0, 0, 100_000)
        assert ledger.record_seal_run("k", 0, 100_000, 50_000)  # tail-extends
        assert ledger.total_seals == 150_000
        assert ledger.seal_runs == 1
        assert ledger.ok

    def test_gaps_cost_one_run_each_and_coalesce_when_filled(self):
        ledger = NonceLedger()
        for sequence in (0, 1, 2, 4, 5, 10):
            assert ledger.record_seal("k", 0, sequence)
        assert ledger.seal_runs == 3  # [0,2] [4,5] [10,10]
        assert ledger.record_seal("k", 0, 3)  # fills the first gap
        assert ledger.seal_runs == 2  # [0,5] [10,10]

    def test_duplicates_are_reuses_in_both_paths(self):
        ledger = NonceLedger()
        ledger.record_seal("k", 0, 7)
        assert not ledger.record_seal("k", 0, 7)
        assert not ledger.record_seal_run("k", 0, 5, 5)  # 7 collides
        assert [r.sequence for r in ledger.reuses] == [7, 7]
        assert not ledger.ok


class TestManagedLinkBatched:
    def _paired_links(self, tiny_pipeline, established, tag, policy_kwargs):
        """Two managed links whose rekeys replay the same episodes."""
        return [
            ManagedSecureLink(
                tiny_pipeline,
                established,
                episode=f"fastpath-{tag}",
                policy=RekeyPolicy(**policy_kwargs),
                n_rounds=ROUNDS,
            )
            for _ in range(2)
        ]

    def test_batched_seal_deliver_match_sequential_across_rekeys(
        self, tiny_pipeline, established
    ):
        # 5 payloads over a 3-record epoch: exactly one rekey fires
        # mid-burst, and grace_opens=4 covers the 3 old-epoch records
        # still in flight when the burst is delivered afterwards.
        payloads = [f"burst-{i}".encode() for i in range(5)]
        for attempt in range(SEARCH):
            batched, sequential = self._paired_links(
                tiny_pipeline,
                established,
                f"parity-{attempt}",
                dict(max_records_per_epoch=3, grace_opens=4),
            )
            fast_wires = batched.seal_records("initiator", payloads)
            slow_wires = [
                sequential.seal("initiator", p) for p in payloads
            ]
            if batched.closed or sequential.closed:
                continue  # this episode's rekey failed; try another
            assert fast_wires == slow_wires
            assert batched.epoch == sequential.epoch == 1
            assert batched.rekeys_completed == sequential.rekeys_completed == 1
            fast = batched.deliver_records("responder", fast_wires)
            slow = [sequential.deliver("responder", w) for w in slow_wires]
            assert [(o.ok, o.plaintext) for o in fast] == [
                (o.ok, o.plaintext) for o in slow
            ]
            assert all(o.ok for o in fast)
            return
        pytest.fail(f"no episode with successful rekeys in {SEARCH} attempts")

    def test_deliver_records_burns_budget_like_sequential(
        self, tiny_pipeline, established
    ):
        for attempt in range(SEARCH):
            batched, sequential = self._paired_links(
                tiny_pipeline,
                established,
                f"budget-{attempt}",
                dict(decrypt_failure_budget=3),
            )
            garbage = [b"not a record %d" % i for i in range(5)]
            fast = batched.deliver_records("responder", garbage)
            slow = []
            for blob in garbage:
                outcome = sequential.deliver("responder", blob)
                if outcome is None:
                    break
                slow.append(outcome)
            if batched.closed != sequential.closed:
                continue  # a rekey attempt diverged; try another episode
            assert [(o.ok, o.failure) for o in fast] == [
                (o.ok, o.failure) for o in slow
            ]
            assert (
                batched.rekeys_completed == sequential.rekeys_completed
            )
            return
        pytest.fail(f"no deterministic budget episode in {SEARCH} attempts")
