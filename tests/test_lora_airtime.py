"""Tests for the LoRa airtime and bit-rate model against paper figures."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.lora.airtime import (
    CodingRate,
    LoRaPHYConfig,
    STANDARD_BANDWIDTHS_HZ,
    standard_data_rate_sweep,
)


class TestBitRate:
    def test_paper_default_is_183_bps(self):
        # BW=125 kHz, SF=12, CR=4/8 -> 183 bps (paper Sec. II-A).
        cfg = LoRaPHYConfig()
        assert cfg.bit_rate_bps == pytest.approx(183.1, abs=0.1)

    def test_sweep_low_endpoint_near_23_bps(self):
        cfg = LoRaPHYConfig(
            spreading_factor=12, bandwidth_hz=15_625.0, coding_rate=CodingRate.CR_4_8
        )
        assert cfg.bit_rate_bps == pytest.approx(22.9, abs=0.1)

    def test_sweep_high_endpoint_near_1172_bps(self):
        cfg = LoRaPHYConfig(
            spreading_factor=12, bandwidth_hz=500_000.0, coding_rate=CodingRate.CR_4_5
        )
        assert cfg.bit_rate_bps == pytest.approx(1171.9, abs=0.1)

    @given(
        sf=st.integers(min_value=6, max_value=12),
        bw=st.sampled_from(STANDARD_BANDWIDTHS_HZ),
        cr=st.sampled_from(list(CodingRate)),
    )
    def test_bit_rate_positive_and_monotone_in_cr(self, sf, bw, cr):
        cfg = LoRaPHYConfig(spreading_factor=sf, bandwidth_hz=bw, coding_rate=cr)
        assert cfg.bit_rate_bps > 0
        best = LoRaPHYConfig(
            spreading_factor=sf, bandwidth_hz=bw, coding_rate=CodingRate.CR_4_5
        )
        assert best.bit_rate_bps >= cfg.bit_rate_bps


class TestAirtime:
    def test_symbol_time_sf12_125k(self):
        assert LoRaPHYConfig().symbol_time_s == pytest.approx(4096 / 125_000)

    def test_naive_airtime_matches_paper_example(self):
        # Paper Sec. II-A: 16-byte packet at 183 bps -> ~700 ms.
        cfg = LoRaPHYConfig()
        assert cfg.naive_airtime_s == pytest.approx(0.70, abs=0.01)

    def test_semtech_airtime_exceeds_preamble(self):
        cfg = LoRaPHYConfig()
        assert cfg.airtime_s > cfg.preamble_time_s

    def test_minimum_payload_is_eight_symbols(self):
        # LoRa packets carry at least 8 payload symbols (paper Sec. II-A).
        tiny = LoRaPHYConfig(payload_bytes=1, spreading_factor=12)
        assert tiny.n_payload_symbols >= 8

    def test_airtime_decreases_with_bandwidth(self):
        slow = LoRaPHYConfig(bandwidth_hz=125_000.0)
        fast = LoRaPHYConfig(bandwidth_hz=500_000.0)
        assert fast.airtime_s < slow.airtime_s

    @given(payload=st.integers(min_value=1, max_value=255))
    def test_airtime_nondecreasing_in_payload(self, payload):
        smaller = LoRaPHYConfig(payload_bytes=payload)
        larger = LoRaPHYConfig(payload_bytes=payload + 1)
        assert larger.airtime_s >= smaller.airtime_s

    def test_ldro_engages_for_slow_symbols(self):
        slow = LoRaPHYConfig(spreading_factor=12, bandwidth_hz=125_000.0)
        fast = LoRaPHYConfig(spreading_factor=7, bandwidth_hz=125_000.0)
        assert slow.low_data_rate_optimize is True
        assert fast.low_data_rate_optimize is False

    def test_total_symbols_counts_preamble(self):
        cfg = LoRaPHYConfig()
        assert cfg.total_symbols == 13 + cfg.n_payload_symbols  # ceil(8 + 4.25)


class TestValidation:
    def test_rejects_bad_spreading_factor(self):
        with pytest.raises(ConfigurationError):
            LoRaPHYConfig(spreading_factor=5)

    def test_rejects_nonstandard_bandwidth(self):
        with pytest.raises(ConfigurationError):
            LoRaPHYConfig(bandwidth_hz=100_000.0)

    def test_rejects_zero_payload(self):
        with pytest.raises(ConfigurationError):
            LoRaPHYConfig(payload_bytes=0)


class TestDataRateSweep:
    def test_sorted_ascending(self):
        rates = [cfg.bit_rate_bps for cfg in standard_data_rate_sweep()]
        assert rates == sorted(rates)

    def test_covers_paper_range(self):
        rates = [cfg.bit_rate_bps for cfg in standard_data_rate_sweep()]
        assert rates[0] == pytest.approx(23, abs=0.5)
        assert rates[-1] == pytest.approx(1172, abs=0.5)

    def test_includes_paper_default_rate(self):
        rates = [cfg.bit_rate_bps for cfg in standard_data_rate_sweep()]
        assert any(abs(r - 183.1) < 0.5 for r in rates)

    def test_with_payload_changes_only_payload(self):
        cfg = LoRaPHYConfig().with_payload(32)
        assert cfg.payload_bytes == 32
        assert cfg.spreading_factor == 12

    def test_describe_mentions_rate(self):
        assert "bps" in LoRaPHYConfig().describe()
