"""Tests for the autoencoder-based reconciliation (the paper's method).

Training is expensive, so a module-scoped fixture trains one small model
shared across tests.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotTrainedError
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.utils.bits import flip_bits, random_bits


@pytest.fixture(scope="module")
def trained_ae():
    ae = AutoencoderReconciliation(
        key_bits=64, code_dim=32, decoder_units=128, seed=7
    )
    ae.fit(n_samples=12000, epochs=35, mismatch_rate_range=(0.0, 0.08))
    return ae


def mismatch_pair(flips, seed=0, n=64):
    bob = random_bits(n, seed)
    positions = np.random.default_rng(seed + 999).choice(n, size=flips, replace=False)
    return flip_bits(bob, positions), bob


class TestTrainingContract:
    def test_untrained_model_refuses_to_reconcile(self):
        ae = AutoencoderReconciliation(key_bits=16, seed=0)
        with pytest.raises(NotTrainedError):
            ae.reconcile(random_bits(16, 0), random_bits(16, 1))

    def test_untrained_model_refuses_syndrome(self):
        ae = AutoencoderReconciliation(key_bits=16, seed=0)
        with pytest.raises(NotTrainedError):
            ae.bob_syndrome(random_bits(16, 0))

    def test_loss_decreases(self, trained_ae):
        pass  # training happened in the fixture; assertions below use it

    def test_invalid_mismatch_range_rejected(self):
        ae = AutoencoderReconciliation(key_bits=16, seed=0)
        with pytest.raises(ConfigurationError):
            ae.fit(n_samples=10, epochs=1, mismatch_rate_range=(0.2, 0.1))


class TestCorrection:
    def test_corrects_single_flip(self, trained_ae):
        alice, bob = mismatch_pair(1, seed=1)
        assert trained_ae.reconcile(alice, bob).success

    def test_corrects_small_mismatches_usually(self, trained_ae):
        successes = 0
        for seed in range(20):
            alice, bob = mismatch_pair(2, seed=seed)
            successes += trained_ae.reconcile(alice, bob).success
        assert successes >= 16

    def test_improves_agreement_on_moderate_mismatches(self, trained_ae):
        agreements = []
        for seed in range(10):
            alice, bob = mismatch_pair(4, seed=seed)
            agreements.append(trained_ae.reconcile(alice, bob).agreement)
        assert np.mean(agreements) > 1.0 - 4 / 64  # better than doing nothing

    def test_identical_keys_stay_identical(self, trained_ae):
        bob = random_bits(64, 5)
        outcome = trained_ae.reconcile(bob.copy(), bob)
        assert outcome.success

    def test_single_message_and_syndrome_size(self, trained_ae):
        alice, bob = mismatch_pair(1, seed=2)
        outcome = trained_ae.reconcile(alice, bob)
        assert outcome.messages == 1
        assert outcome.bytes_exchanged == 4 * 32 + 16  # code floats + MAC

    def test_protocol_split_matches_reconcile(self, trained_ae):
        alice, bob = mismatch_pair(2, seed=3)
        syndrome = trained_ae.bob_syndrome(bob)
        corrected = trained_ae.alice_correct(alice, syndrome)
        outcome = trained_ae.reconcile(alice, bob)
        np.testing.assert_array_equal(corrected, outcome.alice_key)

    def test_syndrome_is_not_the_key(self, trained_ae):
        # The transmitted vector is 32 floats, not 64 bits, and feeding a
        # wrong key into alice_correct must not recover Bob's key.
        alice, bob = mismatch_pair(2, seed=4)
        syndrome = trained_ae.bob_syndrome(bob)
        assert syndrome.shape == (32,)
        eve_key = random_bits(64, 1234)
        eve_result = trained_ae.alice_correct(eve_key, syndrome)
        eve_agreement = np.mean(eve_result == bob)
        assert eve_agreement < 0.8

    def test_mismatch_probabilities_exposed(self, trained_ae):
        alice, bob = mismatch_pair(1, seed=6)
        probabilities = trained_ae.decode_mismatch_probabilities(
            alice, trained_ae.bob_syndrome(bob)
        )
        assert probabilities.shape == (64,)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_wrong_key_length_rejected(self, trained_ae):
        with pytest.raises(ConfigurationError):
            trained_ae.bob_syndrome(random_bits(32, 0))
