"""Payload-phase chaos: the secure channel under the invariant harness.

The headline test is the negative control the acceptance criteria demand:
a sweep over a deliberately broken channel (receive-side replay window
disabled via the test hook) must demonstrably trip the
``no-nonce-reuse-ever`` invariant -- and *only* that invariant.  A harness
whose alarms cannot fire proves nothing.
"""

import pytest

from repro.faults.chaos import (
    PAYLOAD_INVARIANTS,
    ChaosReport,
    run_chaos,
)
from repro.secure.records import OPEN_FAILURES
from repro.secure.rekey import CLOSE_REASONS

SESSIONS = 16
ROUNDS = 48

#: Seed whose sweep is known to exercise record-replay attacks against
#: secured sessions (the broken-window negative control needs them).
BROKEN_SEED = 3


@pytest.fixture(scope="module")
def sweep(tiny_pipeline) -> ChaosReport:
    """One healthy data-phase sweep shared by the positive tests."""
    return run_chaos(tiny_pipeline, SESSIONS, seed=1, n_rounds=ROUNDS)


class TestHealthyDataPhase:
    def test_sweep_is_clean_and_actually_secured_sessions(self, sweep):
        details = [f"[{v.invariant}] {v.detail}" for v in sweep.violations]
        assert sweep.ok, "violations:\n" + "\n".join(details)
        assert sweep.secured_sessions > 0
        assert sweep.records_delivered > 0

    def test_no_nonce_was_ever_reused(self, sweep):
        assert sweep.nonce_reuses == 0
        assert sweep.violation_counts()["no-nonce-reuse-ever"] == 0

    def test_payload_failures_stay_in_the_closed_taxonomy(self, sweep):
        assert set(sweep.payload_failures) <= set(OPEN_FAILURES)

    def test_channel_closes_are_taxonomized(self, sweep):
        assert set(sweep.close_reasons) <= set(CLOSE_REASONS)
        assert sweep.channels_closed == sum(sweep.close_reasons.values())
        assert sweep.rekeys_completed >= 0

    def test_payload_invariants_are_the_declared_four(self, sweep):
        counts = sweep.violation_counts()
        assert set(PAYLOAD_INVARIANTS) <= set(counts)
        assert PAYLOAD_INVARIANTS == (
            "no-decrypt-under-mismatched-keys",
            "no-nonce-reuse-ever",
            "no-plaintext-on-auth-failure",
            "rekey-preserves-continuity",
        )


class TestDataPhaseToggle:
    def test_disabled_data_phase_runs_no_payload_traffic(self, tiny_pipeline):
        report = run_chaos(
            tiny_pipeline, 4, seed=2, n_rounds=ROUNDS, data_phase=False
        )
        assert report.ok
        assert report.secured_sessions == 0
        assert report.records_delivered == 0
        assert report.nonce_reuses == 0
        assert report.channels_closed == 0


class TestBrokenChannelTripsTheAlarm:
    def test_disabled_replay_window_trips_only_nonce_reuse(self, tiny_pipeline):
        report = run_chaos(
            tiny_pipeline,
            SESSIONS,
            seed=BROKEN_SEED,
            n_rounds=ROUNDS,
            replay_window_enabled=False,
        )
        assert not report.ok
        reuse = [
            v for v in report.violations if v.invariant == "no-nonce-reuse-ever"
        ]
        other = [
            v for v in report.violations if v.invariant != "no-nonce-reuse-ever"
        ]
        # The broken window is caught -- and blamed precisely: nothing
        # else about the channel misbehaves.
        assert len(reuse) >= 1
        assert other == []
        assert report.nonce_reuses == len(reuse)
        # Every reuse the ledger saw is an accept-side duplicate (the
        # sender's monotonic counter is untouched by the hook).
        assert all("accept" in v.detail for v in reuse)


class TestReportPlumbing:
    def test_merge_folds_payload_fields(self):
        a = ChaosReport(
            n_sessions=1,
            seed=0,
            secured_sessions=1,
            records_delivered=5,
            payload_failures={"auth-failed": 1},
            rekeys_completed=1,
            channels_closed=1,
            close_reasons={"rekey-establish-failed": 1},
            nonce_reuses=0,
        )
        b = ChaosReport(
            n_sessions=1,
            seed=1,
            secured_sessions=1,
            records_delivered=3,
            payload_failures={"auth-failed": 2, "nonce-replayed": 1},
            rekeys_completed=0,
            channels_closed=1,
            close_reasons={"rekey-attempts-exhausted": 1},
            nonce_reuses=2,
        )
        merged = a.merge(b)
        assert merged.secured_sessions == 2
        assert merged.records_delivered == 8
        assert merged.payload_failures == {"auth-failed": 3, "nonce-replayed": 1}
        assert merged.rekeys_completed == 1
        assert merged.channels_closed == 2
        assert merged.close_reasons == {
            "rekey-establish-failed": 1,
            "rekey-attempts-exhausted": 1,
        }
        assert merged.nonce_reuses == 2
