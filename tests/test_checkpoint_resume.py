"""Crash-safe training: checkpoint/resume determinism and the divergence watchdog."""

import numpy as np
import pytest

from repro.core.model import CHECKPOINT_FILENAME, PredictionQuantizationModel
from repro.exceptions import ArtifactMismatchError, TrainingDivergedError
from repro.nn.callbacks import EarlyStopping
from repro.probing.dataset import KeyGenDataset

SEQ = 8
KEY_BITS = 16


def make_dataset(n=32, seed=0) -> KeyGenDataset:
    rng = np.random.default_rng(seed)
    alice_raw = rng.normal(-80.0, 5.0, size=(n, SEQ))
    bob_raw = alice_raw + rng.normal(0.0, 1.0, size=(n, SEQ))

    def norm(rows):
        mean = rows.mean(axis=1, keepdims=True)
        std = np.maximum(rows.std(axis=1, keepdims=True), 1e-6)
        return (rows - mean) / std

    return KeyGenDataset(
        alice=norm(alice_raw),
        bob=norm(bob_raw),
        alice_raw=alice_raw,
        bob_raw=bob_raw,
    )


def make_model(seed=1) -> PredictionQuantizationModel:
    return PredictionQuantizationModel(
        seq_len=SEQ, hidden_units=4, key_bits=KEY_BITS, seed=seed
    )


def weights_of(model):
    return [layer.get_weights() for layer in model.layers]


def assert_weights_equal(a, b):
    for layer_a, layer_b in zip(a, b):
        assert set(layer_a) == set(layer_b)
        for key in layer_a:
            np.testing.assert_array_equal(layer_a[key], layer_b[key])


class TestResumeDeterminism:
    EPOCHS = 5
    CRASH_AFTER = 2

    @pytest.fixture(scope="class")
    def straight_run(self):
        model = make_model()
        report = model.fit(make_dataset(), epochs=self.EPOCHS, batch_size=8)
        return model, report

    def test_kill_and_resume_reproduces_weights_bit_for_bit(
        self, straight_run, tmp_path
    ):
        model_straight, report_straight = straight_run
        dataset = make_dataset()

        crashed = make_model()
        crashed.fit(
            dataset,
            epochs=self.CRASH_AFTER,
            batch_size=8,
            checkpoint_dir=tmp_path,
        )

        resumed = make_model()
        report = resumed.fit(
            dataset,
            epochs=self.EPOCHS,
            batch_size=8,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert report.resumed_from_epoch == self.CRASH_AFTER
        assert_weights_equal(weights_of(model_straight), weights_of(resumed))

    def test_resumed_history_matches_straight_run(self, straight_run, tmp_path):
        _, report_straight = straight_run
        dataset = make_dataset()
        make_model().fit(
            dataset, epochs=self.CRASH_AFTER, batch_size=8, checkpoint_dir=tmp_path
        )
        resumed = make_model()
        report = resumed.fit(
            dataset,
            epochs=self.EPOCHS,
            batch_size=8,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert report.history.epochs == report_straight.history.epochs
        assert report.history.metrics["loss"] == report_straight.history.metrics["loss"]

    def test_resume_with_early_stopping_and_validation(self, tmp_path):
        dataset = make_dataset()
        validation = make_dataset(n=16, seed=9)

        straight = make_model()
        straight.fit(
            dataset,
            validation,
            epochs=self.EPOCHS,
            batch_size=8,
            early_stopping=EarlyStopping(patience=3),
        )

        make_model().fit(
            dataset,
            validation,
            epochs=self.CRASH_AFTER,
            batch_size=8,
            early_stopping=EarlyStopping(patience=3),
            checkpoint_dir=tmp_path,
        )
        resumed = make_model()
        resumed.fit(
            dataset,
            validation,
            epochs=self.EPOCHS,
            batch_size=8,
            early_stopping=EarlyStopping(patience=3),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert_weights_equal(weights_of(straight), weights_of(resumed))

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        model = make_model()
        report = model.fit(
            make_dataset(),
            epochs=2,
            batch_size=8,
            checkpoint_dir=tmp_path / "empty",
            resume=True,
        )
        assert report.resumed_from_epoch is None
        assert report.epochs_run == 2

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(Exception, match="checkpoint_dir"):
            make_model().fit(make_dataset(), epochs=1, resume=True)

    def test_wrong_architecture_checkpoint_rejected(self, tmp_path):
        make_model().fit(
            make_dataset(), epochs=1, batch_size=8, checkpoint_dir=tmp_path
        )
        other = PredictionQuantizationModel(
            seq_len=SEQ, hidden_units=6, key_bits=KEY_BITS, seed=1
        )
        with pytest.raises(ArtifactMismatchError, match="hidden_units"):
            other.fit(
                make_dataset(),
                epochs=2,
                batch_size=8,
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_checkpoint_file_lands_in_checkpoint_dir(self, tmp_path):
        make_model().fit(
            make_dataset(), epochs=1, batch_size=8, checkpoint_dir=tmp_path
        )
        assert (tmp_path / CHECKPOINT_FILENAME).exists()


class TestEarlyStoppingReset:
    def test_reused_instance_does_not_stop_immediately(self):
        stopper = EarlyStopping(patience=2)
        # First run drives best_value very low and exhausts patience.
        assert stopper.update(0, 0.001) is False
        assert stopper.update(1, 0.5) is False
        assert stopper.update(2, 0.5) is True
        # A reused instance would stop the next run instantly; fit() resets.
        model = make_model()
        report = model.fit(
            make_dataset(),
            validation=make_dataset(n=16, seed=9),
            epochs=3,
            batch_size=8,
            early_stopping=stopper,
        )
        assert report.epochs_run == 3

    def test_reset_clears_state(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0, 0.1)
        stopper.reset()
        assert stopper.best_value is None
        assert stopper.best_epoch == -1

    def test_nn_model_fit_also_resets(self):
        from repro.nn.layers.dense import Dense
        from repro.nn.model import Model

        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 4))
        y = x @ rng.normal(size=(4, 1))
        stopper = EarlyStopping(patience=2)
        stopper.update(0, 1e-9)  # poisoned state from a previous run
        stopper.update(1, 1.0)
        model = Model([Dense(1, seed=0)])
        history = model.fit(
            x, y, epochs=3, validation_data=(x, y), early_stopping=stopper
        )
        assert len(history.epochs) == 3


class TestDivergenceWatchdog:
    def test_nan_batch_triggers_rollback_not_weight_poisoning(self, monkeypatch):
        model = make_model()
        dataset = make_dataset()
        real_value = model.loss.value
        calls = {"n": 0}

        def poisoned(y_true, y_hat, z_true, z_hat):
            calls["n"] += 1
            if calls["n"] == 6:  # a mid-training batch goes NaN once
                return float("nan")
            return real_value(y_true, y_hat, z_true, z_hat)

        monkeypatch.setattr(model.loss, "value", poisoned)
        report = model.fit(dataset, epochs=3, batch_size=8)
        assert report.divergence_rollbacks == 1
        for layer_weights in weights_of(model):
            for value in layer_weights.values():
                assert np.isfinite(value).all()

    def test_rollback_reduces_learning_rate_and_retries(self, monkeypatch):
        model = make_model()
        real_value = model.loss.value
        calls = {"n": 0}

        def poisoned(y_true, y_hat, z_true, z_hat):
            calls["n"] += 1
            if calls["n"] in (2, 7):  # diverge twice, then recover
                return float("inf")
            return real_value(y_true, y_hat, z_true, z_hat)

        monkeypatch.setattr(model.loss, "value", poisoned)
        report = model.fit(
            make_dataset(), epochs=3, batch_size=8,
            max_divergence_retries=2,
        )
        assert report.divergence_rollbacks == 2
        assert report.epochs_run == 3

    def test_retry_budget_exhaustion_raises(self, monkeypatch):
        model = make_model()
        monkeypatch.setattr(
            model.loss, "value", lambda *args, **kwargs: float("nan")
        )
        with pytest.raises(TrainingDivergedError, match="retry"):
            model.fit(make_dataset(), epochs=3, batch_size=8,
                      max_divergence_retries=1)

    def test_gradient_clipping_keeps_training_finite(self):
        model = make_model()
        report = model.fit(
            make_dataset(), epochs=2, batch_size=8, clip_grad_norm=0.5
        )
        assert np.isfinite(report.history.last("loss"))
        for layer_weights in weights_of(model):
            for value in layer_weights.values():
                assert np.isfinite(value).all()


class TestDefaultPathUnchanged:
    def test_checkpointing_does_not_change_training_results(self, tmp_path):
        plain = make_model()
        plain.fit(make_dataset(), epochs=3, batch_size=8)
        checkpointed = make_model()
        checkpointed.fit(
            make_dataset(), epochs=3, batch_size=8, checkpoint_dir=tmp_path
        )
        assert_weights_equal(weights_of(plain), weights_of(checkpointed))
