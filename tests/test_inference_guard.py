"""OOD-guarded inference: detection, fallback extraction, outcome visibility."""

import dataclasses

import numpy as np
import pytest

from repro.core.guard import GuardVerdict, InferenceGuard, WindowStatistics
from repro.exceptions import ConfigurationError
from repro.probing.dataset import build_dataset
from repro.probing.features import arrssi_sequences


@pytest.fixture(scope="module")
def training_windows():
    rng = np.random.default_rng(0)
    return rng.normal(-82.0, 4.0, size=(64, 16))


@pytest.fixture(scope="module")
def stats(training_windows):
    return WindowStatistics.from_windows(training_windows)


@pytest.fixture(scope="module")
def guard(stats):
    return InferenceGuard(stats)


class TestWindowStatistics:
    def test_captures_training_envelope(self, stats, training_windows):
        assert stats.seq_len == 16
        assert stats.n_windows == 64
        assert stats.min_value == training_windows.min()
        assert stats.max_value == training_windows.max()

    def test_dict_round_trip(self, stats):
        assert WindowStatistics.from_dict(stats.to_dict()) == stats


class TestGuardVerdicts:
    def test_in_distribution_windows_pass(self, guard, training_windows):
        verdict = guard.check(training_windows)
        assert verdict.ok
        assert verdict.n_ood == 0
        assert verdict.window_ok.all()
        assert verdict.reasons == ()

    def test_mean_shift_flagged(self, guard, training_windows):
        verdict = guard.check(training_windows + 150.0)
        assert not verdict.ok
        assert "mean-shift" in verdict.reasons
        assert verdict.ood_fraction == 1.0

    def test_scale_shift_flagged(self, guard, stats, training_windows):
        center = stats.mean_of_means
        blown_up = center + (training_windows - center) * 40.0
        verdict = guard.check(blown_up)
        assert not verdict.ok
        assert "scale-shift" in verdict.reasons

    def test_non_finite_windows_flagged(self, guard, training_windows):
        windows = training_windows.copy()
        windows[3, 5] = np.nan
        windows[7, 0] = np.inf
        verdict = guard.check(windows)
        assert "non-finite" in verdict.reasons
        assert not verdict.window_ok[3]
        assert not verdict.window_ok[7]
        assert verdict.window_ok.sum() == len(windows) - 2
        assert verdict.ok  # 2/64 is under the default 25% batch threshold

    def test_small_ood_fraction_tolerated(self, guard, training_windows):
        windows = training_windows.copy()
        windows[:4] += 150.0  # 4/64 OOD < 25%
        verdict = guard.check(windows)
        assert verdict.ok
        assert verdict.n_ood == 4

    def test_wrong_window_length_is_a_caller_bug(self, guard):
        with pytest.raises(ConfigurationError):
            guard.check(np.zeros((3, 7)))

    def test_empty_batch_is_ok(self, guard):
        verdict = guard.check(np.zeros((0, 16)))
        assert verdict.ok
        assert verdict.ood_fraction == 0.0
        assert isinstance(verdict, GuardVerdict)


class TestModelIntegration:
    def test_untrained_model_has_no_guard(self):
        from repro.core.model import PredictionQuantizationModel

        model = PredictionQuantizationModel(
            seq_len=8, hidden_units=4, key_bits=16, seed=0
        )
        assert model.inference_guard() is None

    def test_trained_pipeline_model_carries_stats(self, tiny_pipeline):
        stats = tiny_pipeline.model.training_stats
        assert stats is not None
        assert stats.seq_len == tiny_pipeline.config.seq_len
        assert tiny_pipeline.model.inference_guard() is not None


class TestSessionFallback:
    @pytest.fixture(scope="class")
    def live_trace(self, tiny_pipeline):
        return tiny_pipeline.collect_trace("guard-live", n_rounds=192)

    def test_in_distribution_session_is_not_degraded(
        self, tiny_pipeline, live_trace
    ):
        result = tiny_pipeline.build_session().run(live_trace)
        assert result.degraded_mode is None
        assert result.ood_windows == 0

    def test_ood_trace_falls_back_to_quantizer_visibly(
        self, tiny_pipeline, live_trace
    ):
        # Alice's radio starts reporting absurd RSSI (e.g. register
        # corruption or a different gain table): every window is far from
        # the training distribution.
        shifted = dataclasses.replace(
            live_trace,
            alice_rssi=live_trace.alice_rssi + 150.0,
            alice_prssi=None,
        )
        result = tiny_pipeline.build_session().run(shifted)
        assert result.degraded_mode == "ood-quantizer-fallback"
        assert result.ood_windows > 0
        # The conventional quantizer path still produces key material
        # (fixed-threshold quantization is shift-invariant, and the
        # underlying reciprocity is intact).
        assert result.n_blocks > 0
        assert result.raw_agreement.mean > 0.5

    def test_fallback_never_reports_silent_success(
        self, tiny_pipeline, live_trace
    ):
        shifted = dataclasses.replace(
            live_trace,
            alice_rssi=live_trace.alice_rssi + 150.0,
            alice_prssi=None,
        )
        outcome = tiny_pipeline.establish_key(trace=shifted, episode="guard-ood")
        assert outcome.degraded_mode == "ood-quantizer-fallback"
        assert outcome.ood_windows > 0

    def test_degraded_extraction_skips_non_finite_windows(self, tiny_pipeline):
        session = tiny_pipeline.build_session()
        seq_len = tiny_pipeline.config.seq_len
        rng = np.random.default_rng(8)
        alice = rng.normal(-80.0, 4.0, size=4 * seq_len)
        bob = alice + rng.normal(0.0, 0.5, size=alice.size)
        dataset = build_dataset(alice, bob, seq_len=seq_len)
        dataset.alice_raw[1, 3] = np.nan
        verdict = session.inference_guard.check(dataset.alice_raw)
        detail = session._extract_detail_degraded(dataset, verdict)
        assert detail.degraded
        assert not detail.masks[1].any()  # the NaN window contributed nothing
        assert np.isin(detail.alice_bits, (0, 1)).all()


class TestPipelineOutcomeFields:
    def test_outcome_exposes_degraded_properties(self, tiny_pipeline):
        outcome = tiny_pipeline.establish_key(episode="guard-clean")
        assert outcome.degraded_mode is None
        assert outcome.ood_windows == 0
