"""Tests for the asymmetric interference model."""

import numpy as np
import pytest

from repro.channel.interference import InterferenceSource, combine_power_dbm
from repro.channel.mobility import RelativeMotion, StaticTrajectory, StraightLineTrajectory
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.reciprocity import ReciprocalChannel
from repro.exceptions import ConfigurationError
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD
from repro.probing.protocol import ProbingProtocol
from repro.utils.rng import SeedSequenceFactory


class TestCombinePower:
    def test_equal_powers_add_3db(self):
        assert combine_power_dbm(-90.0, -90.0) == pytest.approx(-87.0, abs=0.05)

    def test_silent_interference_is_identity(self):
        assert combine_power_dbm(-90.0, -np.inf) == pytest.approx(-90.0)

    def test_dominant_interference_wins(self):
        assert combine_power_dbm(-120.0, -60.0) == pytest.approx(-60.0, abs=0.01)


class TestInterferenceSource:
    def test_activity_is_deterministic(self):
        times = np.linspace(0, 100, 200)
        a = InterferenceSource((0, 0), seed=5).active(times)
        b = InterferenceSource((0, 0), seed=5).active(times)
        np.testing.assert_array_equal(a, b)

    def test_duty_fraction_tracks_means(self):
        source = InterferenceSource((0, 0), mean_on_s=1.0, mean_off_s=9.0, seed=1)
        activity = source.active(np.linspace(0, 5000, 20000))
        assert 0.05 < activity.mean() < 0.16

    def test_power_decays_with_distance(self):
        source = InterferenceSource((0, 0), mean_on_s=1e6, mean_off_s=1e-6, seed=2)
        times = np.array([1.0, 1.0])
        positions = np.array([[100.0, 0.0], [1000.0, 0.0]])
        near, far = source.power_dbm(times, positions)
        assert near > far

    def test_off_means_minus_infinity(self):
        source = InterferenceSource((0, 0), mean_on_s=1e-6, mean_off_s=1e9, seed=3)
        power = source.power_dbm(np.array([50.0]), np.array([[10.0, 0.0]]))
        assert power[0] == -np.inf

    def test_mismatched_positions_rejected(self):
        source = InterferenceSource((0, 0), seed=4)
        with pytest.raises(ConfigurationError):
            source.power_dbm(np.array([1.0, 2.0]), np.array([[0.0, 0.0]]))


class TestProtocolIntegration:
    def _protocol(self, interference):
        motion = RelativeMotion(
            StraightLineTrajectory((0, 0), 10.0), StaticTrajectory((800, 0))
        )
        channel = ReciprocalChannel(motion, LogDistancePathLoss(exponent=2.2))
        return ProbingProtocol(
            channel,
            LoRaPHYConfig(),
            DRAGINO_LORA_SHIELD,
            DRAGINO_LORA_SHIELD,
            interference=interference,
        )

    def test_interference_near_one_end_is_asymmetric(self):
        # A strong, always-on jammer parked next to Bob corrupts Bob's
        # readings but barely touches Alice's.
        jammer = InterferenceSource(
            (810.0, 0.0), eirp_dbm=5.0, mean_on_s=1e6, mean_off_s=1e-6, seed=0
        )
        clean = self._protocol([]).run(6, SeedSequenceFactory(3))
        jammed = self._protocol([jammer]).run(6, SeedSequenceFactory(3))
        bob_shift = np.mean(jammed.bob_rssi) - np.mean(clean.bob_rssi)
        alice_shift = np.mean(jammed.alice_rssi) - np.mean(clean.alice_rssi)
        assert bob_shift > alice_shift + 3.0

    def test_interference_degrades_reciprocity(self):
        jammer = InterferenceSource(
            (790.0, 0.0), eirp_dbm=0.0, mean_on_s=0.3, mean_off_s=1.0, seed=1
        )
        clean = self._protocol([]).run(40, SeedSequenceFactory(4))
        jammed = self._protocol([jammer]).run(40, SeedSequenceFactory(4))

        def correlation(trace):
            a = trace.alice_rssi.mean(axis=1)
            b = trace.bob_rssi.mean(axis=1)
            return np.corrcoef(np.diff(a), np.diff(b))[0, 1]

        assert correlation(jammed) < correlation(clean)
