"""Tests for the EXPERIMENTS.md report generator."""

from pathlib import Path

from repro.experiments.common import ExperimentResult
from repro.experiments.report import PAPER_CLAIMS, generate, render_markdown
from repro.experiments.runner import EXPERIMENTS


def demo_result(experiment_id="fig04"):
    result = ExperimentResult(experiment_id, "demo title", columns=["k", "v"])
    result.add_row(k="a", v=1.25)
    return result


class TestRenderMarkdown:
    def test_contains_paper_claim_and_table(self):
        text = render_markdown({"fig04": demo_result()}, {"fig04": 1.0}, quick=True)
        assert "## fig04: demo title" in text
        assert PAPER_CLAIMS["fig04"] in text
        assert "1.2500" in text
        assert "regenerated in 1.0 s" in text

    def test_quick_mode_labelled(self):
        text = render_markdown({}, {}, quick=True)
        assert "**quick**" in text

    def test_unknown_experiment_gets_placeholder_claim(self):
        text = render_markdown(
            {"figXX": demo_result("figXX")}, {"figXX": 0.0}, quick=False
        )
        assert "(no claim recorded)" in text

    def test_zero_elapsed_omits_timing_line(self):
        text = render_markdown({"fig04": demo_result()}, {"fig04": 0.0}, quick=True)
        assert "regenerated in" not in text


class TestClaimsCoverage:
    def test_every_registered_experiment_has_a_claim(self):
        missing = [name for name in EXPERIMENTS if name not in PAPER_CLAIMS]
        assert not missing, missing


class TestGenerate:
    def test_writes_file_for_fast_experiment(self, tmp_path):
        out = tmp_path / "report.md"
        results = generate(out, quick=True, experiment_ids=["fig04"])
        assert out.exists()
        assert "fig04" in results
        assert "fig04" in out.read_text()
