"""V2V scenario: a convoy pair keys up while a third car imitates.

Reproduces the paper's imitating-attack story (Sec. V-H2) as a runnable
scenario: two vehicles on a rural road establish keys; a third vehicle
tails the leader along the identical route, records every packet and
mounts the full stolen-pipeline attack.  Also checks the generated key
stream with the NIST battery, as the paper's Table II does.

Run:  python examples/v2v_convoy_attack.py
"""

import numpy as np

from repro import ScenarioName, VehicleKeyPipeline
from repro.experiments.table2_nist import generate_key_stream
from repro.security.attacks import run_attack
from repro.security.nist import run_nist_suite


def main() -> None:
    print("V2V rural convoy with an imitating attacker")
    print("=" * 52)

    pipeline = VehicleKeyPipeline.for_scenario(ScenarioName.V2V_RURAL, seed=29)
    print("training (V2V-Rural episodes) ...")
    pipeline.train(n_episodes=150, epochs=80, reconciler_epochs=30)

    print("\nrunning the imitating attack (Eve tails Alice 10 m behind) ...")
    report = run_attack(pipeline, "imitator", n_traces=2, n_rounds=256)
    print(f"  legitimate agreement  : {report.legitimate_agreement:.2%}")
    print(f"  imitator agreement    : {report.eve_agreement:.2%}")
    print(f"  imitator raw agreement: {report.eve_raw_agreement:.2%}")
    print(
        "  Eve copies the route, so her large-scale channel correlates "
        f"(r = {report.eve_feature_correlation:.2f}),"
    )
    print("  but the multipath she cannot copy keeps her out of key range.")

    print("\nNIST randomness of the produced key material ...")
    stream = generate_key_stream(pipeline, n_sessions=8, session_rounds=256)
    print(f"  key stream: {stream.size} bits from privacy-amplified sessions")
    p_values = run_nist_suite(stream)
    for name, p_value in p_values.items():
        verdict = "pass" if p_value >= 0.01 else "FAIL"
        print(f"  {name:26s} p = {p_value:.4f}  [{verdict}]")
    passed = sum(p >= 0.01 for p in p_values.values())
    print(f"  {passed}/8 tests passed (paper: 8/8)")


if __name__ == "__main__":
    main()
