"""Adaptive probing: get the key as soon as the channel allows.

A deployed IoV node does not know its channel's key rate in advance.
This example uses :func:`repro.core.establish_key_adaptive` to probe in
short bursts and stop the moment a full 128-bit key is verified,
comparing against the fixed-length session on the same scenario.

Run:  python examples/adaptive_probing.py
"""

from repro import ScenarioName, VehicleKeyPipeline
from repro.core import establish_key_adaptive


def main() -> None:
    print("adaptive key establishment (V2I urban)")
    print("=" * 48)

    pipeline = VehicleKeyPipeline.for_scenario(ScenarioName.V2I_URBAN, seed=41)
    print("training ...")
    pipeline.train(n_episodes=150, epochs=80, reconciler_epochs=30)

    print("\nfixed-length session (512 rounds):")
    fixed = pipeline.establish_key(episode="fixed")
    print(f"  probing time : {fixed.probing_time_s:8.1f} s")
    print(f"  verified bits: {fixed.session.agreed_bits}")
    print(f"  success      : {fixed.success}")

    print("\nadaptive session (96-round bursts, stop at 128 verified bits):")
    adaptive = establish_key_adaptive(pipeline, burst_rounds=96, max_bursts=8)
    print(f"  bursts used  : {adaptive.bursts_used}")
    print(f"  rounds used  : {adaptive.rounds_used}")
    print(f"  probing time : {adaptive.probing_time_s:8.1f} s")
    print(f"  bit history  : {adaptive.burst_history}")
    print(f"  success      : {adaptive.success}")
    if adaptive.success:
        print(f"  key          : {adaptive.final_key.hex()}")
        saved = fixed.probing_time_s - adaptive.probing_time_s
        if saved > 0:
            print(f"\nadaptive probing saved {saved:.0f} s of airtime on this channel")


if __name__ == "__main__":
    main()
