"""Reconciliation playground: Cascade vs compressed sensing vs the
autoencoder, on controlled mismatches.

A fast, training-light example of the substrate the paper's Sec. IV-C
builds on: how each reconciliation method trades correction power,
communication and computation as the bit-disagreement rate grows.

Run:  python examples/reconciliation_comparison.py  (about a minute)
"""

import time

import numpy as np

from repro.reconciliation import (
    AutoencoderReconciliation,
    CascadeReconciliation,
    CompressedSensingReconciliation,
)
from repro.utils.bits import flip_bits, random_bits


def evaluate(reconciler, flips: int, trials: int = 40):
    agreements, messages, total_bytes = [], [], []
    start = time.perf_counter()
    for trial in range(trials):
        bob = random_bits(64, trial)
        positions = np.random.default_rng(trial).choice(64, size=flips, replace=False)
        outcome = reconciler.reconcile(flip_bits(bob, positions), bob)
        agreements.append(outcome.agreement)
        messages.append(outcome.messages)
        total_bytes.append(outcome.bytes_exchanged)
    elapsed_ms = 1e3 * (time.perf_counter() - start) / trials
    return (
        float(np.mean(agreements)),
        float(np.mean(messages)),
        float(np.mean(total_bytes)),
        elapsed_ms,
    )


def main() -> None:
    print("reconciliation methods on 64-bit keys")
    print("=" * 70)

    print("training the autoencoder reconciler ...")
    autoencoder = AutoencoderReconciliation(
        key_bits=64, code_dim=48, decoder_units=192, seed=0
    )
    autoencoder.fit(n_samples=25000, epochs=40)

    methods = [
        ("Cascade (k=3, 4 iter)", CascadeReconciliation(block_size=3, iterations=4)),
        ("CS (20x64, OMP)", CompressedSensingReconciliation(measurements=20)),
        ("Autoencoder (AE-192)", autoencoder),
    ]

    header = f"{'method':24s} {'flips':>5s} {'agree':>7s} {'msgs':>6s} {'bytes':>6s} {'ms':>7s}"
    print("\n" + header)
    print("-" * len(header))
    for flips in (1, 3, 6, 10):
        for name, method in methods:
            agree, msgs, payload, ms = evaluate(method, flips)
            print(
                f"{name:24s} {flips:5d} {agree:7.3f} {msgs:6.1f} "
                f"{payload:6.0f} {ms:7.2f}"
            )
        print()

    print("reading the table:")
    print(" - Cascade corrects everything but needs many message round trips")
    print("   (each one a LoRa packet of ~1 s airtime).")
    print(" - CS sends one syndrome but fails beyond its sparsity budget and")
    print("   its OMP decoding is the slowest compute.")
    print(" - The autoencoder sends one syndrome, decodes in one matrix pass,")
    print("   and corrects the realistic (<10%) disagreement range.")


if __name__ == "__main__":
    main()
