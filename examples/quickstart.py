"""Quickstart: establish a 128-bit key between two simulated vehicles.

Trains the Vehicle-Key pipeline on simulated V2V-Urban probing episodes,
then runs a live key-agreement session and prints every stage's numbers.

Run:  python examples/quickstart.py  (about 2-3 minutes)
"""

import time

from repro import ScenarioName, VehicleKeyPipeline


def main() -> None:
    print("Vehicle-Key quickstart (V2V urban)")
    print("=" * 50)

    pipeline = VehicleKeyPipeline.for_scenario(ScenarioName.V2V_URBAN, seed=7)

    print("training the BiLSTM prediction/quantization model and the")
    print("autoencoder reconciliation on simulated probing episodes ...")
    start = time.time()
    pipeline.train(n_episodes=150, epochs=80, reconciler_epochs=30)
    print(f"  trained in {time.time() - start:.0f} s")

    print("\nestablishing a key over a fresh probing session ...")
    outcome = pipeline.establish_key(episode="quickstart")
    session = outcome.session

    print(f"  probing airtime            : {outcome.probing_time_s:8.1f} s")
    print(f"  arRSSI windows             : {session.n_windows}")
    print(f"  consensus kept fraction    : {session.kept_fraction:8.2%}")
    print(f"  agreement before reconcile : {outcome.raw_agreement_rate:8.2%}")
    print(f"  agreement after reconcile  : {outcome.agreement_rate:8.2%}")
    print(
        f"  verified key blocks        : "
        f"{len(session.verified_blocks)}/{session.n_blocks}"
    )
    print(f"  key generation rate        : {outcome.key_generation_rate_bps:8.3f} bit/s")

    if outcome.success:
        print(f"\nSUCCESS: both vehicles hold the same 128-bit key")
        print(f"  key = {outcome.final_key.hex()}")
    else:
        print("\nsession fell short of verified bits; probe longer or pool")
        print("multiple sessions (see examples/v2i_roadside_unit.py)")


if __name__ == "__main__":
    main()
