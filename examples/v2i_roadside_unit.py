"""V2I scenario: a vehicle keys up with a roadside unit, with an
eavesdropper parked nearby.

Demonstrates the workload from the paper's introduction: a car passing
urban infrastructure establishes a fresh AES key over LoRa while a
passive attacker records everything -- probes, consensus masks and the
reconciliation syndromes -- and still cannot assemble the key.  Shows
multi-session pooling (several probing bursts contribute to one key) and
uses the established key to authenticate a telemetry message.

Run:  python examples/v2i_roadside_unit.py
"""

import hashlib
import hmac

from repro import ScenarioName, VehicleKeyPipeline
from repro.probing.eve import EveConfig, build_eavesdropping_eve
from repro.security.attacks import run_attack


def main() -> None:
    print("V2I urban: vehicle <-> roadside unit with a parked eavesdropper")
    print("=" * 64)

    pipeline = VehicleKeyPipeline.for_scenario(ScenarioName.V2I_URBAN, seed=13)
    print("training (V2I-Urban episodes) ...")
    pipeline.train(n_episodes=150, epochs=80, reconciler_epochs=30)

    # --- pool several short probing bursts into one key.
    print("\nprobing in three short bursts while the vehicle passes ...")
    traces = [
        pipeline.collect_trace(f"burst-{index}", n_rounds=192) for index in range(3)
    ]
    session = pipeline.build_session()
    result = session.run(traces)
    print(f"  windows={result.n_windows} blocks={result.n_blocks} "
          f"verified={len(result.verified_blocks)}")
    print(f"  agreement after reconciliation: {result.reconciled_agreement.mean:.2%}")

    if not result.keys_match:
        print("  (not enough verified bits this run -- try more bursts)")
        return
    key = result.final_key_alice
    print(f"  shared 128-bit key: {key.hex()}")

    # --- use the key: authenticate a telemetry frame to the RSU.
    frame = b"speed=52;lane=2;ts=1718000000"
    tag = hmac.new(key, frame, hashlib.sha256).digest()[:8]
    print(f"\nvehicle -> RSU: {frame.decode()} | mac={tag.hex()}")
    rsu_ok = hmac.compare_digest(
        hmac.new(result.final_key_bob, frame, hashlib.sha256).digest()[:8], tag
    )
    print(f"RSU verifies the frame: {'ACCEPT' if rsu_ok else 'REJECT'}")

    # --- the parked eavesdropper's best shot.
    print("\nevaluating the parked eavesdropper (knows the whole protocol) ...")
    report = run_attack(pipeline, "eavesdropper", n_traces=1, n_rounds=256)
    print(f"  legitimate agreement : {report.legitimate_agreement:.2%}")
    print(f"  eavesdropper agreement: {report.eve_agreement:.2%} (chance is 50%)")
    print(
        "  probability of guessing a 128-bit key at that bit accuracy: "
        f"~{report.eve_agreement ** 128:.1e}"
    )


if __name__ == "__main__":
    main()
